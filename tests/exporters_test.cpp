//===- tests/exporters_test.cpp - Exporter round-trip tests ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"
#include "convert/Exporters.h"

#include "TestHelpers.h"
#include "analysis/MetricEngine.h"

#include <gtest/gtest.h>

using namespace ev;
using namespace ev::convert;

namespace {

NodeId findByName(const Profile &P, std::string_view Name) {
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    if (P.nameOf(Id) == Name)
      return Id;
  return InvalidNode;
}

} // namespace

TEST(CollapsedExport, RoundTripConservesTotals) {
  Profile P = test::makeFixedProfile();
  std::string Text = toCollapsed(P, 0);
  Result<Profile> Back = fromCollapsed(Text);
  ASSERT_TRUE(Back.ok()) << Back.error();
  // Collapsed carries integer counts; the fixed profile is integral.
  EXPECT_DOUBLE_EQ(metricTotal(*Back, 0), metricTotal(P, 0));
  EXPECT_EQ(Back->nodeCount(), P.nodeCount());
}

TEST(CollapsedExport, CarriesModuleAnnotations) {
  Profile P = test::makeFixedProfile();
  std::string Text = toCollapsed(P, 0);
  EXPECT_NE(Text.find("memcpy (libc.so)"), std::string::npos);
  EXPECT_NE(Text.find("main (app)"), std::string::npos);
}

TEST(CollapsedExport, DetectedAsCollapsed) {
  Profile P = test::makeFixedProfile();
  EXPECT_EQ(detectFormat(toCollapsed(P, 0)), Format::Collapsed);
}

TEST(SpeedscopeExport, RoundTripConservesTotals) {
  Profile P = test::makeFixedProfile();
  std::string Json = toSpeedscope(P, 0);
  EXPECT_EQ(detectFormat(Json), Format::Speedscope);
  Result<Profile> Back = fromSpeedscope(Json);
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_DOUBLE_EQ(metricTotal(*Back, 0), metricTotal(P, 0));
  EXPECT_EQ(Back->nodeCount(), P.nodeCount());
  // Source attribution survives.
  NodeId Kernel = findByName(*Back, "kernel");
  ASSERT_NE(Kernel, InvalidNode);
  EXPECT_EQ(Back->text(Back->frameOf(Kernel).Loc.File), "comp.cc");
  EXPECT_EQ(Back->frameOf(Kernel).Loc.Line, 30u);
}

TEST(ChromeExport, RoundTripConservesTotals) {
  Profile P = test::makeFixedProfile(); // "time" is in nanoseconds.
  std::string Json = toChromeTrace(P, 0);
  EXPECT_EQ(detectFormat(Json), Format::ChromeTrace);
  Result<Profile> Back = fromChromeTrace(Json);
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_NEAR(metricTotal(*Back, 0), metricTotal(P, 0), 1e-6);
  // Nesting survives: kernel under compute.
  NodeId Kernel = findByName(*Back, "kernel");
  ASSERT_NE(Kernel, InvalidNode);
  EXPECT_EQ(Back->nameOf(Back->node(Kernel).Parent), "compute");
}

TEST(PprofExport, RoundTripConservesEverything) {
  Profile P = test::makeFixedProfile();
  std::string Bytes = toPprof(P);
  EXPECT_EQ(detectFormat(Bytes), Format::Pprof);
  Result<Profile> Back = fromPprof(Bytes);
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_DOUBLE_EQ(metricTotal(*Back, 0), metricTotal(P, 0));
  EXPECT_EQ(Back->nodeCount(), P.nodeCount());
  EXPECT_EQ(Back->metrics()[0].Name, "time");
  NodeId Kernel = findByName(*Back, "kernel");
  ASSERT_NE(Kernel, InvalidNode);
  EXPECT_EQ(Back->nameOf(Back->node(Kernel).Parent), "compute");
  EXPECT_EQ(Back->frameOf(Kernel).Loc.Line, 30u);
  EXPECT_EQ(Back->text(Back->frameOf(Kernel).Loc.Module), "app");
}

TEST(PprofExport, MultiMetricSampleTypes) {
  Profile P = test::makeRandomProfile(3);
  pprof::PprofProfile Model = toPprofModel(P);
  ASSERT_EQ(Model.SampleTypes.size(), 2u);
  EXPECT_EQ(Model.text(Model.SampleTypes[0].Type), "time");
  EXPECT_EQ(Model.text(Model.SampleTypes[1].Type), "bytes");
  for (const pprof::Sample &S : Model.Samples)
    EXPECT_EQ(S.Values.size(), 2u);
}

class ExportRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExportRoundTrip, PprofPreservesRandomProfiles) {
  Profile P = test::makeRandomProfile(GetParam());
  Result<Profile> Back = fromPprof(toPprof(P));
  ASSERT_TRUE(Back.ok()) << Back.error();
  // pprof carries samples, so contexts whose whole subtree recorded no
  // values do not survive the trip; everything valued must.
  EXPECT_LE(Back->nodeCount(), P.nodeCount());
  size_t ValuedNodes = 0;
  for (NodeId Id = 1; Id < P.nodeCount(); ++Id)
    for (const MetricValue &MV : P.node(Id).Metrics)
      if (MV.Value != 0.0) {
        ++ValuedNodes;
        break;
      }
  EXPECT_GE(Back->nodeCount(), ValuedNodes); // Paths at least cover these.
  for (MetricId M = 0; M < P.metrics().size(); ++M)
    EXPECT_NEAR(metricTotal(*Back, M), metricTotal(P, M),
                1.0 * static_cast<double>(P.nodeCount()));
  EXPECT_TRUE(Back->verify().ok());
}

TEST_P(ExportRoundTrip, SpeedscopePreservesRandomProfiles) {
  Profile P = test::makeRandomProfile(GetParam());
  Result<Profile> Back = fromSpeedscope(toSpeedscope(P, 0));
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_NEAR(metricTotal(*Back, 0), metricTotal(P, 0), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExportRoundTrip,
                         ::testing::Values(7, 19, 37, 71));
