//===- workload/SyntheticProfile.h - Size-scaled synthetic profiles -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of "industrial production software" profiles for
/// the response-time experiment (paper Fig. 5, Appendix A2). The paper
/// gleans PProf profiles from production Go services sized ~1MB to ~1GB;
/// those are proprietary, so this generator synthesizes pprof files with
/// matching structural statistics: deep stacks (10..60 frames), heavy
/// prefix sharing (services have a few dispatch roots), Zipf-distributed
/// function popularity, and Go-style symbol names whose length drives
/// string-table weight.
///
/// generatePprofBytes() targets a serialized size in bytes so benchmark
/// tiers are directly comparable with the paper's MB-scale x-axis.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_WORKLOAD_SYNTHETICPROFILE_H
#define EASYVIEW_WORKLOAD_SYNTHETICPROFILE_H

#include "profile/Profile.h"
#include "proto/PprofFormat.h"

#include <cstdint>
#include <string>

namespace ev {
namespace workload {

struct SyntheticOptions {
  uint64_t Seed = 1;
  /// Target serialized pprof size. The generator stops adding samples once
  /// its running size estimate reaches the target (actual size lands
  /// within ~10%).
  size_t TargetBytes = 1 << 20;
  unsigned MinStackDepth = 8;
  unsigned MaxStackDepth = 48;
  /// Distinct functions = max(64, TargetBytes / BytesPerFunction).
  size_t BytesPerFunction = 4096;
};

/// Builds the pprof object model for the synthetic service profile.
pprof::PprofProfile generatePprofModel(const SyntheticOptions &Options);

/// Serializes generatePprofModel() to profile.proto bytes.
std::string generatePprofBytes(const SyntheticOptions &Options);

/// Convenience: synthetic profile already in the generic representation
/// (via the pprof converter, exactly the path the viewer takes).
Profile generateSyntheticProfile(const SyntheticOptions &Options);

} // namespace workload
} // namespace ev

#endif // EASYVIEW_WORKLOAD_SYNTHETICPROFILE_H
