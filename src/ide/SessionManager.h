//===- ide/SessionManager.h - Concurrent multi-session PVP service --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent service layer over PvpServer: N independent PVP sessions
/// (one per connected editor pane) multiplexed onto a shared TaskQueue,
/// over a shared refcounted ProfileStore and a shard-locked ViewCache.
///
/// Scheduling is a classic strand model. Each session keeps a FIFO queue
/// of pending requests plus a Running flag; at most one request per
/// session executes at any moment, so the single-threaded PvpServer needs
/// no internal locking, and per-session request order — hence every
/// response byte — is identical to running that session's traffic against
/// a standalone sequential server. Distinct sessions run genuinely in
/// parallel: the strand reposts itself to the shared TaskQueue after every
/// request instead of draining its whole queue in one task, so a session
/// with a deep backlog cannot starve its neighbors.
///
/// Cancellation is cooperative and follows LSP's `$/cancelRequest`: the
/// manager intercepts the method, and
///  - a still-QUEUED target is unlinked and answered RequestCancelled
///    (-32800) immediately, never reaching the server;
///  - a RUNNING target has its CancelToken triggered; the analysis kernels
///    poll the token at loop boundaries and unwind, and the server answers
///    -32800. A cancelled request never populates the view cache and never
///    invalidates a valid entry.
///
/// See docs/PVP.md, "Sessions, scheduling, and cancellation".
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_IDE_SESSIONMANAGER_H
#define EASYVIEW_IDE_SESSIONMANAGER_H

#include "ide/PvpServer.h"
#include "ide/ViewCache.h"
#include "profile/ProfileStore.h"
#include "support/Cancel.h"
#include "support/ThreadPool.h"

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

namespace ev {

class SessionManager {
public:
  struct Options {
    /// Number of independent sessions to create.
    unsigned Sessions = 4;
    /// Worker threads in the shared dispatcher; 0 sizes it to the session
    /// count (every session can be on-CPU at once).
    unsigned Threads = 0;
    /// Guardrails applied to every session.
    ServerLimits Limits;
    /// Shards of the shared view cache (lock granularity, not capacity).
    size_t CacheShards = 8;
    /// Pending requests a single session may queue before new submissions
    /// are rejected with a SessionBusy error.
    size_t MaxQueuedPerSession = 256;
  };

  explicit SessionManager(Options Opts);
  /// Drains every session's queue, then joins the dispatcher.
  ~SessionManager();

  SessionManager(const SessionManager &) = delete;
  SessionManager &operator=(const SessionManager &) = delete;

  unsigned sessionCount() const {
    return static_cast<unsigned>(Sessions.size());
  }

  /// Enqueues \p Request on \p Session's strand; the future resolves with
  /// the JSON-RPC response once the request ran (or was cancelled or
  /// rejected). `$/cancelRequest` is handled by the manager itself and
  /// resolves immediately. Invalid session ids resolve with an error
  /// response, never throw.
  std::future<json::Value> submit(unsigned Session, json::Value Request);

  /// Callback-based submission for transports that must not block: \p Done
  /// is invoked exactly once with the JSON-RPC response. Submission-time
  /// rejections (unknown session, SessionBusy) and `$/cancelRequest`
  /// invoke \p Done inline on the calling thread; everything else invokes
  /// it on a dispatcher thread when the strand finishes (or on the
  /// canceller's thread for a queued request that is cancelled), so \p Done
  /// must be thread-safe and cheap — the network transport just routes the
  /// response to its event loop.
  /// \p Notify, when provided, becomes the push channel for any live
  /// subscription (pvp/subscribe) created by this request: the server
  /// binds it into the subscription and later pvp/viewDelta and
  /// pvp/subscriptionEnd notifications flow through it from the session's
  /// strand. It must therefore be self-contained (own its captures) and
  /// thread-safe, like \p Done.
  void submitAsync(unsigned Session, json::Value Request,
                   std::function<void(json::Value)> Done,
                   std::function<void(json::Value)> Notify = nullptr);

  /// Posts \p Fn onto \p Session's strand as an internal task. Internal
  /// tasks respect strand exclusivity (they never run concurrently with a
  /// request on the same session) but bypass MaxQueuedPerSession — the
  /// server's own maintenance must not be sheddable by a client flood.
  void postInternal(unsigned Session, std::function<void(PvpServer &)> Fn);

  /// Schedules a subscription publish sweep on every session's strand.
  /// Call after mutating the shared store outside any request (e.g. the
  /// --follow file tail appending sections): requests publish on their own.
  void publishAll();

  /// Grants every session ownership of store profile \p Id (strand-safe,
  /// asynchronous). Pair with store().adopt()-style external inserts so
  /// any connected editor can immediately open views of a followed file.
  void adoptProfileAll(int64_t Id);

  /// Synchronous convenience: submit() + wait.
  json::Value handle(unsigned Session, const json::Value &Request);

  /// Cancels the request with JSON-RPC id \p RequestId on \p Session.
  /// \returns true when a queued or running request was targeted.
  bool cancel(unsigned Session, int64_t RequestId);

  /// The shared profile store (ids are unique across sessions).
  ProfileStore &store() { return *Store; }
  /// The shared view cache.
  ViewCache &viewCache() { return *Cache; }
  /// Requests executed by the dispatcher so far (telemetry).
  uint64_t executedCount() const { return Dispatcher.executedCount(); }

private:
  struct PendingRequest {
    json::Value Request;
    int64_t RequestId = 0;
    CancelToken Cancel = CancelToken::create();
    /// Resolution callback; invoked exactly once with the response.
    std::function<void(json::Value)> Done;
    /// Push channel bound into subscriptions this request creates.
    std::function<void(json::Value)> Notify;
    /// When set, the strand runs this instead of dispatching Request (and
    /// Done/Notify are unused): internal maintenance such as publish
    /// sweeps and profile adoption.
    std::function<void(PvpServer &)> Internal;
    uint64_t EnqueuedUs = 0; ///< monoMicros() at submit; queue-wait metric.
  };

  struct Session {
    std::unique_ptr<PvpServer> Server;
    std::mutex Mutex; ///< Guards Queue, Current, and Running.
    std::deque<std::shared_ptr<PendingRequest>> Queue;
    std::shared_ptr<PendingRequest> Current; ///< Executing now, if any.
    bool Running = false; ///< A strand task is scheduled or executing.
  };

  /// Runs ONE request of \p S, then reposts the strand if work remains.
  void pumpOne(Session &S);

  Options Opts;
  std::shared_ptr<ProfileStore> Store;
  std::shared_ptr<ViewCache> Cache;
  std::vector<std::unique_ptr<Session>> Sessions;
  /// Declared last: destroyed first, so the drain finishes while the
  /// sessions it references are still alive.
  TaskQueue Dispatcher;
};

} // namespace ev

#endif // EASYVIEW_IDE_SESSIONMANAGER_H
