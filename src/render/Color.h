//===- render/Color.h - Color semantics for views --------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The color-semantics action of paper §VI-B: flame graphs "use different
/// colors to represent profiles from different files or libraries and use
/// different darkness to represent the availability of source line
/// mapping". Colors are assigned deterministically by hashing the module
/// (falling back to the file) so the same library always renders in the
/// same hue across views and sessions.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_RENDER_COLOR_H
#define EASYVIEW_RENDER_COLOR_H

#include "analysis/Diff.h"
#include "profile/Profile.h"

#include <cstdint>
#include <string>

namespace ev {

struct Rgb {
  uint8_t R = 0, G = 0, B = 0;

  bool operator==(const Rgb &O) const = default;
};

/// "#rrggbb" for SVG/HTML.
std::string toHexColor(Rgb Color);

/// Deterministic flame color for a frame: hue from the module (or file)
/// hash within the classic warm flame palette; dimmed (darker) when the
/// frame has no source-line mapping.
Rgb colorForFrame(const Profile &P, const Frame &F);

/// Highlight color used for search matches.
Rgb searchHighlightColor();

/// Diff-view color: red family for regressions ([A]/[+]), blue family for
/// improvements ([D]/[-]), gray for unchanged; saturation scales with
/// \p Magnitude in [0, 1].
Rgb diffColor(DiffTag Tag, double Magnitude);

} // namespace ev

#endif // EASYVIEW_RENDER_COLOR_H
