//===- analysis/RuleRegistry.cpp - Unified analysis rule registry ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleRegistry.h"

#include "analysis/ProfileLint.h"
#include "analysis/Regression.h"
#include "analysis/Sema.h"

namespace ev {

std::string_view ruleCategoryName(RuleCategory Category) {
  switch (Category) {
  case RuleCategory::Query:
    return "query";
  case RuleCategory::Lint:
    return "lint";
  case RuleCategory::Regression:
    return "regression";
  }
  return "unknown";
}

const std::vector<RuleInfo> &allRules() {
  static const std::vector<RuleInfo> Rules = [] {
    std::vector<RuleInfo> Out;
    for (const SemaCheckInfo &C : semaChecks())
      Out.push_back({C.Id, C.Name, C.DefaultSev, C.Description,
                     RuleCategory::Query});
    for (const LintRuleInfo &R : lintRules())
      Out.push_back(
          {R.Id, R.Name, R.DefaultSev, R.Description, RuleCategory::Lint});
    for (const RegressionRuleInfo &R : regressionRules())
      Out.push_back({R.Id, R.Name, R.DefaultSev, R.Description,
                     RuleCategory::Regression});
    return Out;
  }();
  return Rules;
}

const RuleInfo *findRule(std::string_view IdOrName) {
  for (const RuleInfo &Rule : allRules())
    if (Rule.Id == IdOrName || Rule.Name == IdOrName)
      return &Rule;
  return nullptr;
}

std::string renderRuleList() {
  std::string Out;
  for (const RuleInfo &Rule : allRules()) {
    Out += std::string(Rule.Id) + "  " +
           std::string(severityName(Rule.DefaultSev)) + "  " +
           std::string(Rule.Name) + "\n    " +
           std::string(Rule.Description) + "\n";
  }
  return Out;
}

} // namespace ev
