//===- bench/bench_evql.cpp - Interpreter vs bytecode VM ablation ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The EVQL execution ablation behind pvp/query. Two phases:
///
///  1. Node-visit sweep: a derive/keep-heavy program over a large
///     synthetic CCT, tree-walking interpreter versus compile-once +
///     runCompiled. Outputs are asserted byte-identical first (the
///     interpreter is the oracle), then both engines are timed.
///  2. Warm compiled-program cache: a parse-heavy source through
///     pvp/query end to end. The first call pays lex/parse/compile; warm
///     calls hit the ProgramCache in ViewCache and skip the frontend.
///
/// Results merge into BENCH_pipeline.json under the "evql" key (override
/// with --out=PATH); --smoke shrinks the sweep for the CI smoke test and
/// reports the speedups without enforcing the full-size floors (>= 3x for
/// the sweep, >= 10x for the warm cache).
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "ide/MockIde.h"
#include "profile/ProfileBuilder.h"
#include "proto/EvProf.h"
#include "query/Compiler.h"
#include "query/Interpreter.h"
#include "query/Parser.h"
#include "query/Vm.h"
#include "support/FileIo.h"
#include "support/Rng.h"

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

using namespace ev;

namespace {

double nowMs() {
  auto Now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(Now).count();
}

/// Deterministic synthetic CCT: \p Paths random call paths over a pool of
/// 64 functions, one "time" metric. Merged size grows roughly with
/// Paths * average depth.
Profile makeSweepProfile(size_t Paths) {
  Rng R(7);
  ProfileBuilder B("evql-sweep");
  MetricId Time = B.addMetric("time", "nanoseconds");
  std::vector<FrameId> Pool;
  for (size_t I = 0; I < 64; ++I)
    Pool.push_back(B.functionFrame(
        "fn" + std::to_string(I), "file" + std::to_string(I % 9) + ".cc",
        static_cast<uint32_t>(10 + I), "mod" + std::to_string(I % 4)));
  std::vector<FrameId> Path;
  for (size_t S = 0; S < Paths; ++S) {
    Path.clear();
    unsigned Depth = static_cast<unsigned>(R.range(2, 16));
    for (unsigned D = 0; D < Depth; ++D)
      Path.push_back(Pool[R.below(Pool.size())]);
    B.addSample(Path, Time, static_cast<double>(R.range(1, 1000)));
  }
  return B.take();
}

/// One string carrying everything an engine produced, for byte-identity
/// checks across interpreter/VM and across runs.
std::string outputFingerprint(const evql::QueryOutput &O) {
  std::string S = writeEvProf(O.Result);
  for (const std::string &L : O.Printed) {
    S += "\nP:";
    S += L;
  }
  for (const std::string &D : O.DerivedMetrics) {
    S += "\nD:";
    S += D;
  }
  return S;
}

/// A source whose per-node expression work dominates: metric lookups,
/// topology intrinsics, pure math, short-circuit logic, ternaries, and a
/// topology-changing keep. The interpreter pays AST recursion + boxed
/// values per operator per node; the VM pays one dispatched instruction
/// per operator per lane, which is the differential being measured.
const char *sweepSource() {
  return "derive hot = exclusive(\"time\") * 0.25 + inclusive(\"time\") / "
         "(1 + depth())"
         " + min(share(\"time\") * 1000, nchildren() + 3)"
         " + max(abs(exclusive(\"time\") - inclusive(\"time\")), "
         "sqrt(1 + exclusive(\"time\")))"
         " + log(2 + inclusive(\"time\")) * floor(share(\"time\") * 640)"
         " + ratio(exclusive(\"time\"), 1 + inclusive(\"time\"))"
         " + ceil(share(\"time\") * 97);\n"
         "derive weight = (share(\"time\") > 0.0001 && !isleaf() ? "
         "nchildren() : 1)"
         " + (depth() % 7) * ceil(share(\"time\") * 100)"
         " + (metric(\"hot\") > 12 ? metric(\"hot\") / 3 : "
         "metric(\"hot\") * 2)"
         " + min(metric(\"hot\"), 500) + abs(metric(\"hot\") - "
         "depth() * 3);\n"
         "keep when depth() < 12 || share(\"time\") > 0.001 || "
         "nchildren() > 2 && metric(\"hot\") > 50;\n"
         "print total(\"time\");\n"
         "print nodecount();\n";
}

/// A parse-heavy, run-light source for the warm-cache phase: hundreds of
/// constant let-bindings the compiler folds away. \p Salt makes distinct
/// sources (distinct cache keys) for cold measurements.
std::string makeFrontendHeavySource(size_t Stmts, size_t Salt) {
  std::string Src;
  Src.reserve(Stmts * 72);
  for (size_t K = 0; K < Stmts; ++K) {
    std::string N = std::to_string(K + Salt * 100000);
    Src += "let v" + std::to_string(K) + " = ((" + N + " + 3) * 7 - min(" +
           N + ", 11)) % 101 + sqrt(" + N + " + 2) + max(" +
           std::to_string(K % 13) + ", 4);\n";
  }
  Src += "print v" + std::to_string(Stmts - 1) + ";\n";
  Src += "print total(\"time\");\n";
  return Src;
}

Profile makeTinyProfile() {
  ProfileBuilder B("tiny");
  MetricId Time = B.addMetric("time", "nanoseconds");
  FrameId Main = B.functionFrame("main", "app.cc", 1, "app");
  FrameId Work = B.functionFrame("work", "app.cc", 9, "app");
  std::vector<FrameId> P{Main};
  B.addSample(P, Time, 40);
  P = {Main, Work};
  B.addSample(P, Time, 60);
  return B.take();
}

} // namespace

int main(int argc, char **argv) {
#ifdef EV_BENCH_DEFAULT_OUT
  std::string OutPath = EV_BENCH_DEFAULT_OUT;
#else
  std::string OutPath = "BENCH_pipeline.json";
#endif
  bool Smoke = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(argv[I], "--out=", 6) == 0)
      OutPath = argv[I] + 6;
  }

  json::Object Evql;

  // Phase 1: node-visit sweep, interpreter vs compiled bytecode.
  const size_t Paths = Smoke ? 2000 : 30000;
  const int Reps = Smoke ? 2 : 3;
  Profile Sweep = makeSweepProfile(Paths);
  Evql.set("sweepNodes", static_cast<int64_t>(Sweep.nodeCount()));

  Result<evql::Program> Prog = evql::parseProgram(sweepSource());
  if (!Prog) {
    std::fprintf(stderr, "bench_evql: sweep source failed to parse: %s\n",
                 Prog.error().c_str());
    return 1;
  }
  double T0 = nowMs();
  std::shared_ptr<const evql::CompiledProgram> Compiled =
      evql::compileProgram(*Prog, AnalysisLimits());
  double CompileMs = nowMs() - T0;
  if (!Compiled) {
    std::fprintf(stderr, "bench_evql: compiler rejected the sweep source\n");
    return 1;
  }

  // Oracle check before timing anything: byte-identical outputs.
  Result<evql::QueryOutput> OracleOut = evql::runProgram(Sweep, *Prog);
  Result<evql::QueryOutput> VmOut = evql::runCompiled(Sweep, *Compiled);
  if (!OracleOut || !VmOut ||
      outputFingerprint(*OracleOut) != outputFingerprint(*VmOut)) {
    std::fprintf(stderr,
                 "bench_evql: VM output diverged from the interpreter\n");
    return 1;
  }

  double InterpMs = 1e30, VmMs = 1e30;
  for (int R = 0; R < Reps; ++R) {
    T0 = nowMs();
    Result<evql::QueryOutput> O = evql::runProgram(Sweep, *Prog);
    double Ms = nowMs() - T0;
    if (!O)
      return 1;
    InterpMs = std::min(InterpMs, Ms);
  }
  for (int R = 0; R < Reps; ++R) {
    T0 = nowMs();
    Result<evql::QueryOutput> O = evql::runCompiled(Sweep, *Compiled);
    double Ms = nowMs() - T0;
    if (!O)
      return 1;
    VmMs = std::min(VmMs, Ms);
  }
  double SweepSpeedup = VmMs > 0 ? InterpMs / VmMs : 0;
  bench::row("evql sweep: %zu nodes, interpreter %.2f ms, vm %.2f ms "
             "(compile %.3f ms), speedup %.2fx",
             Sweep.nodeCount(), InterpMs, VmMs, CompileMs, SweepSpeedup);
  Evql.set("interpreterMs", InterpMs);
  Evql.set("vmMs", VmMs);
  Evql.set("compileMs", CompileMs);
  Evql.set("sweepSpeedup", SweepSpeedup);
  Evql.set("vmInstructions",
           static_cast<int64_t>(Compiled->instructionCount()));

  // Phase 2: warm ProgramCache through pvp/query end to end.
  const size_t Stmts = Smoke ? 300 : 1200;
  const size_t ColdReps = 5;
  const size_t WarmReps = Smoke ? 20 : 50;
  MockIde Ide;
  std::string Bytes = writeEvProf(makeTinyProfile());
  Result<int64_t> Id = Ide.openProfile("tiny", Bytes);
  if (!Id) {
    std::fprintf(stderr, "bench_evql: openProfile failed: %s\n",
                 Id.error().c_str());
    return 1;
  }

  auto Query = [&](const std::string &Src) -> double {
    json::Object P;
    P.set("profile", *Id);
    P.set("program", Src);
    double Start = nowMs();
    Result<json::Value> R = Ide.call("pvp/query", std::move(P));
    double Ms = nowMs() - Start;
    if (!R) {
      std::fprintf(stderr, "bench_evql: pvp/query failed: %s\n",
                   R.error().c_str());
      std::exit(1);
    }
    return Ms;
  };

  double ColdTotal = 0;
  std::string WarmSrc;
  for (size_t C = 0; C < ColdReps; ++C) {
    WarmSrc = makeFrontendHeavySource(Stmts, C);
    ColdTotal += Query(WarmSrc);
  }
  double WarmTotal = 0;
  for (size_t W = 0; W < WarmReps; ++W)
    WarmTotal += Query(WarmSrc);
  double ColdMs = ColdTotal / static_cast<double>(ColdReps);
  double WarmMs = WarmTotal / static_cast<double>(WarmReps);
  double WarmSpeedup = WarmMs > 0 ? ColdMs / WarmMs : 0;
  bench::row("evql cache: %zu-stmt source, cold %.3f ms, warm %.3f ms, "
             "speedup %.2fx",
             Stmts, ColdMs, WarmMs, WarmSpeedup);
  Evql.set("cacheSourceBytes", static_cast<int64_t>(WarmSrc.size()));
  Evql.set("coldMs", ColdMs);
  Evql.set("warmMs", WarmMs);
  Evql.set("warmSpeedup", WarmSpeedup);

  Result<json::Value> Stats = Ide.call("pvp/stats", json::Object());
  int64_t CacheHits = 0;
  if (Stats && Stats->isObject())
    if (const json::Value *H = Stats->asObject().find("programCacheHits"))
      CacheHits = static_cast<int64_t>(H->numberOr(0));
  Evql.set("programCacheHits", CacheHits);
  if (CacheHits < static_cast<int64_t>(WarmReps)) {
    std::fprintf(stderr,
                 "bench_evql: expected >= %zu program cache hits, got %lld\n",
                 WarmReps, static_cast<long long>(CacheHits));
    return 1;
  }

  // Acceptance floors only at full size; smoke reports without judging,
  // since the shrunken sweep spends proportionally more time in fixed
  // overheads.
  if (!Smoke) {
    if (SweepSpeedup < 3.0) {
      std::fprintf(stderr, "bench_evql: sweep speedup %.2fx below 3x\n",
                   SweepSpeedup);
      return 1;
    }
    if (WarmSpeedup < 10.0) {
      std::fprintf(stderr, "bench_evql: warm speedup %.2fx below 10x\n",
                   WarmSpeedup);
      return 1;
    }
  }

  // Merge under the "evql" key of the (possibly existing) pipeline report.
  json::Object Doc;
  if (Result<std::string> Existing = readFile(OutPath); Existing.ok())
    if (Result<json::Value> Parsed = json::parse(*Existing);
        Parsed.ok() && Parsed->isObject())
      Doc = Parsed->asObject();
  Doc.set("evql", std::move(Evql));
  std::string Text = json::Value(std::move(Doc)).dumpPretty();
  Text.push_back('\n');
  if (!writeFile(OutPath, Text).ok()) {
    std::fprintf(stderr, "bench_evql: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
