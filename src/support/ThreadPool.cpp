//===- support/ThreadPool.cpp - Small fixed-size worker pool --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace ev {

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads <= 1)
    return; // Sequential fallback: no workers, loops run inline.
  Workers.reserve(Threads - 1);
  for (unsigned I = 0; I + 1 < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runChunks(size_t ChunkSize) {
  for (;;) {
    if (JobCancelled.load(std::memory_order_relaxed))
      return;
    size_t Begin = JobNext.fetch_add(ChunkSize, std::memory_order_relaxed);
    if (Begin >= JobEnd)
      return;
    size_t End = std::min(Begin + ChunkSize, JobEnd);
    try {
      (*JobBody)(Begin, End);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!JobError)
        JobError = std::current_exception();
      JobCancelled.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    size_t Chunk;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [&] {
        return ShuttingDown || JobGeneration != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = JobGeneration;
      ++JobActiveWorkers;
      Chunk = JobChunk;
    }
    runChunks(Chunk);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --JobActiveWorkers;
    }
    JobDone.notify_all();
  }
}

void ThreadPool::parallelForChunks(
    size_t N, const std::function<void(size_t, size_t)> &Body) {
  if (N == 0)
    return;
  // Inline when sequential, when the range is trivial, or when another
  // loop is already in flight (the pool is non-reentrant by design; this
  // also covers a DIFFERENT thread racing for the pool, e.g. two PVP
  // sessions dispatching concurrently — the loser runs inline). Only the
  // acquiring caller may clear the flag: a non-acquiring caller restoring
  // `true` after the owner already released would wedge the pool into
  // inline mode permanently.
  bool Nested = InLoop.exchange(true);
  if (Workers.empty() || N == 1 || Nested) {
    struct Restore {
      std::atomic<bool> &Flag;
      bool Acquired;
      ~Restore() {
        if (Acquired)
          Flag.store(false);
      }
    } R{InLoop, !Nested};
    Body(0, N);
    return;
  }

  // Chunks sized so each thread claims a handful of them: dynamic enough to
  // balance skew, coarse enough that the atomic claim is cheap.
  size_t Threads = Workers.size() + 1;
  size_t Chunk = std::max<size_t>(1, N / (Threads * 4));
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    JobBody = &Body;
    JobEnd = N;
    JobChunk = Chunk;
    JobNext.store(0, std::memory_order_relaxed);
    JobCancelled.store(false, std::memory_order_relaxed);
    JobError = nullptr;
    ++JobGeneration;
  }
  WakeWorkers.notify_all();

  runChunks(Chunk); // The caller participates.

  std::unique_lock<std::mutex> Lock(Mutex);
  JobDone.wait(Lock, [&] {
    return JobActiveWorkers == 0 &&
           (JobNext.load(std::memory_order_relaxed) >= JobEnd ||
            JobCancelled.load(std::memory_order_relaxed));
  });
  JobBody = nullptr;
  std::exception_ptr Error = JobError;
  JobError = nullptr;
  Lock.unlock();
  InLoop.store(false);
  if (Error)
    std::rethrow_exception(Error);
}

//===----------------------------------------------------------------------===
// TaskQueue
//===----------------------------------------------------------------------===

TaskQueue::TaskQueue(unsigned Threads) {
  unsigned N = Threads == 0 ? 1 : Threads;
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

TaskQueue::~TaskQueue() {
  // Drain: wait until the queue is empty AND no task is mid-flight (a
  // running task may still post follow-ups), then signal shutdown.
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Idle.wait(Lock, [&] { return Queue.empty() && Busy == 0; });
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void TaskQueue::post(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WakeWorkers.notify_one();
}

void TaskQueue::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [&] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // Shutting down with nothing left to run.
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Busy;
    }
    Task();
    Executed.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Busy;
    }
    Idle.notify_all();
  }
}

unsigned ThreadPool::configuredThreads() {
  if (const char *Env = std::getenv("EV_THREADS")) {
    char *End = nullptr;
    unsigned long V = std::strtoul(Env, &End, 10);
    if (End != Env && *End == '\0' && V <= 1024)
      return static_cast<unsigned>(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return std::min(HW == 0 ? 1u : HW, 8u);
}

namespace {
std::unique_ptr<ThreadPool> &sharedSlot() {
  static std::unique_ptr<ThreadPool> Slot;
  return Slot;
}
std::mutex &sharedMutex() {
  static std::mutex M;
  return M;
}
} // namespace

ThreadPool &ThreadPool::shared() {
  std::lock_guard<std::mutex> Lock(sharedMutex());
  if (!sharedSlot())
    sharedSlot() = std::make_unique<ThreadPool>(configuredThreads());
  return *sharedSlot();
}

void ThreadPool::setSharedThreadCount(unsigned Threads) {
  std::lock_guard<std::mutex> Lock(sharedMutex());
  sharedSlot() = std::make_unique<ThreadPool>(Threads);
}

} // namespace ev
