//===- analysis/Butterfly.cpp - Caller/callee breakdown for a function ----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Butterfly.h"

#include "analysis/MetricEngine.h"
#include "support/Strings.h"

#include <algorithm>
#include <map>

namespace ev {

ButterflyResult butterfly(const Profile &P, std::string_view FunctionName,
                          MetricId Metric) {
  ButterflyResult Out;
  Out.Focus = std::string(FunctionName);

  std::vector<double> Inclusive = inclusiveColumn(P, Metric);
  std::map<std::string, double> Callers;
  std::map<std::string, double> Callees;

  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    if (P.nameOf(Id) != FunctionName)
      continue;
    ++Out.Occurrences;
    Out.SelfExclusive += P.node(Id).metricOr(Metric);

    NodeId Parent = P.node(Id).Parent;
    bool ParentIsFocus =
        Parent != InvalidNode && P.nameOf(Parent) == FunctionName;
    if (!ParentIsFocus) {
      // Outermost occurrence: counts toward the focus total and its
      // caller edge.
      Out.TotalInclusive += Inclusive[Id];
      std::string CallerName =
          Parent == InvalidNode || Parent == P.root()
              ? std::string("<program root>")
              : std::string(P.nameOf(Parent));
      Callers[CallerName] += Inclusive[Id];
    }
    for (NodeId Child : P.node(Id).Children) {
      if (P.nameOf(Child) == FunctionName)
        continue; // Self-recursion folds into the focus itself.
      Callees[std::string(P.nameOf(Child))] += Inclusive[Child];
    }
  }
  if (Out.SelfExclusive != 0.0)
    Callees["(self)"] += Out.SelfExclusive;

  auto Flatten = [](const std::map<std::string, double> &In) {
    std::vector<ButterflyEntry> V;
    for (const auto &[Name, Value] : In)
      V.push_back({Name, Value});
    std::sort(V.begin(), V.end(),
              [](const ButterflyEntry &A, const ButterflyEntry &B) {
                if (A.Value != B.Value)
                  return A.Value > B.Value;
                return A.Name < B.Name;
              });
    return V;
  };
  Out.Callers = Flatten(Callers);
  Out.Callees = Flatten(Callees);
  return Out;
}

std::string renderButterflyText(const Profile &P, const ButterflyResult &B,
                                std::string_view Unit) {
  (void)P;
  std::string Out;
  Out += "butterfly: " + B.Focus + " (" + std::to_string(B.Occurrences) +
         " context(s), total " + formatMetric(B.TotalInclusive, Unit) +
         ", self " + formatMetric(B.SelfExclusive, Unit) + ")\n";
  Out += "callers:\n";
  for (const ButterflyEntry &E : B.Callers) {
    double Pct =
        B.TotalInclusive > 0 ? 100.0 * E.Value / B.TotalInclusive : 0.0;
    Out += "  " + formatDouble(Pct, 1) + "%  " + E.Name + "  (" +
           formatMetric(E.Value, Unit) + ")\n";
  }
  Out += "callees:\n";
  for (const ButterflyEntry &E : B.Callees) {
    double Pct =
        B.TotalInclusive > 0 ? 100.0 * E.Value / B.TotalInclusive : 0.0;
    Out += "  " + formatDouble(Pct, 1) + "%  " + E.Name + "  (" +
           formatMetric(E.Value, Unit) + ")\n";
  }
  return Out;
}

} // namespace ev
