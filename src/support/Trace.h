//===- support/Trace.h - RAII spans with bounded per-thread retention -----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structural half of the self-profiling layer (docs/OBSERVABILITY.md):
/// RAII spans that record where request wall time went, with parent/child
/// nesting, per-thread buffers, and bounded ring retention. The numeric
/// half (counters, histograms) is support/Telemetry.h.
///
/// A Span opens on construction and closes on destruction; nesting is
/// tracked through a thread-local current-span pointer, so a span opened
/// inside another's lifetime becomes its child with zero coordination.
/// Each closed span captures its full ancestor path (root-most first),
/// which is what lets pvp/selfProfile fold the flat record stream back
/// into a calling context tree via ProfileBuilder — EasyView serving a
/// flame graph of its own server.
///
/// Retention: each thread owns a fixed-capacity ring of closed-span
/// records (configureRing(), default 4096). When the ring wraps, the
/// oldest records are overwritten and a dropped counter advances — the
/// server never grows without bound under sustained traffic. Parents close
/// after their children, so eviction consumes children first and a
/// retained record's path always names spans that were genuinely open
/// around it.
///
/// Span names must be string literals or pointers interned through
/// internLabel() — records hold the pointers, not copies, so a dangling
/// dynamic string would be read long after the request that built it.
///
/// setEnabled(false) turns span *retention* off (construction becomes a
/// few branches); telemetry counters are unaffected. The bench ablation
/// (bench/bench_pipeline.cpp) measures exactly this switch.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_TRACE_H
#define EASYVIEW_SUPPORT_TRACE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ev {

class Profile;

namespace trace {

/// Deepest ancestor chain a record preserves. Spans nested deeper still
/// time correctly; their recorded path is truncated at the root-most
/// MaxSpanDepth entries.
constexpr size_t MaxSpanDepth = 12;

/// One closed span. Name/Category/Path point at string literals or
/// interned labels; they are valid for the process lifetime.
struct SpanRecord {
  const char *Name = nullptr;
  const char *Category = nullptr;
  uint64_t StartUs = 0; ///< monoMicros() at open.
  uint64_t DurUs = 0;   ///< Wall (inclusive) duration.
  uint64_t SelfUs = 0;  ///< DurUs minus children's inclusive time.
  uint32_t Lane = 0;    ///< Dense per-thread lane id (Chrome "tid").
  uint16_t Depth = 0;   ///< Ancestor count (0 = root span).
  /// Ancestor names, root-most first; Path[0..min(Depth,MaxSpanDepth)-1]
  /// are valid.
  const char *Path[MaxSpanDepth] = {};
};

/// Globally enables/disables span retention. Defaults to enabled.
void setEnabled(bool On);
bool enabled();

/// Interns \p Label into a process-lifetime string and returns a stable
/// pointer, for span names not known at compile time (PVP method names).
/// The table is bounded; once full, unseen labels collapse to a fixed
/// "<interned-label-overflow>" entry rather than growing without limit.
const char *internLabel(std::string_view Label);

/// Sets the per-thread ring capacity (clamped to >= 16). Applies to lanes
/// created after the call; existing lanes keep their rings.
void configureRing(size_t Capacity);

/// An RAII span. Construct at the top of the scope to time; the span
/// closes and its record is retained when the object is destroyed.
/// \p Name and \p Category must outlive the process (literals or
/// internLabel() results).
class Span {
public:
  explicit Span(const char *Name, const char *Category = "server");
  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name;
  const char *Category;
  uint64_t StartUs;
  uint64_t ChildUs = 0; ///< Accumulated inclusive time of direct children.
  Span *Parent = nullptr;
  bool Live = false; ///< False when retention was disabled at open.
};

/// Snapshots every lane's retained records (oldest first within a lane,
/// lanes in creation order). Safe to call while other threads record.
std::vector<SpanRecord> collectSpans();

/// Drops all retained records on every lane (dropped counters reset too).
void clear();

/// Total records overwritten by ring wrap-around since the last clear().
uint64_t droppedSpans();

/// Records currently retained across all lanes (cheaper than
/// collectSpans().size(): no copying).
size_t retainedSpans();

/// Number of thread lanes that have ever recorded a span.
size_t laneCount();

/// Renders the retained spans as Chrome trace JSON:
///   {"traceEvents": [{"ph":"X","name":...,"cat":...,"ts":...,"dur":...,
///                     "pid":1,"tid":<lane>}, ...]}
/// ts/dur are monotonic microseconds, so the document round-trips through
/// convert::fromChromeTrace and loads in any traceEvents viewer.
std::string toChromeTraceJson();

/// Folds the retained spans into a calling context tree: each record
/// contributes its ancestor path + name as a call path, with metrics
/// "wall-time" (SelfUs, stored in nanoseconds) and "count" (1). The
/// result is a well-formed profile — writeEvProf/readEvProf round-trips
/// it and ProfileLinter reports no diagnostics.
Profile toProfile(std::string Name = "easyview-self");

} // namespace trace
} // namespace ev

#endif // EASYVIEW_SUPPORT_TRACE_H
