//===- analysis/Butterfly.h - Caller/callee breakdown for a function ------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The caller/callee ("butterfly") breakdown mainstream viewers (VTune,
/// hpcviewer) pair with the bottom-up view: focus one function and see
/// where its time comes from (callers) and where it goes (callees). In
/// EasyView this backs an IDE action (pvp/butterfly): hovering a function
/// name in the editor can summon its butterfly without leaving the source.
///
/// Attribution rules:
///  - focus total = sum of inclusive values over OUTERMOST occurrences of
///    the focus function (recursion counted once);
///  - callers: that total split by the name of the caller frame;
///  - callees: the focus's direct children split by name (self-recursive
///    edges fold into the focus's own row), plus a "(self)" entry for the
///    focus's exclusive value.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_BUTTERFLY_H
#define EASYVIEW_ANALYSIS_BUTTERFLY_H

#include "profile/Profile.h"

#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// One caller or callee row.
struct ButterflyEntry {
  std::string Name;
  double Value = 0.0; ///< Inclusive metric attributed to this edge.
};

struct ButterflyResult {
  std::string Focus;
  double TotalInclusive = 0.0; ///< Over outermost focus occurrences.
  double SelfExclusive = 0.0;  ///< Exclusive value across all occurrences.
  size_t Occurrences = 0;      ///< Focus contexts in the CCT.
  std::vector<ButterflyEntry> Callers; ///< Descending by value.
  std::vector<ButterflyEntry> Callees; ///< Descending by value.
};

/// Computes the butterfly of every context whose frame name equals
/// \p FunctionName for \p Metric. An absent function yields a result with
/// zero occurrences.
ButterflyResult butterfly(const Profile &P, std::string_view FunctionName,
                          MetricId Metric);

/// Renders the classic two-sided text view.
std::string renderButterflyText(const Profile &P,
                                const ButterflyResult &B,
                                std::string_view Unit);

} // namespace ev

#endif // EASYVIEW_ANALYSIS_BUTTERFLY_H
