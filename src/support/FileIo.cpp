//===- support/FileIo.cpp - Whole-file read/write helpers -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/FileIo.h"

#include <cstdio>

namespace ev {

Result<std::string> readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return makeError("cannot open '" + Path + "' for reading");
  std::string Out;
  char Buffer[1 << 16];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Out.append(Buffer, N);
  bool Bad = std::ferror(F);
  std::fclose(F);
  if (Bad)
    return makeError("I/O error while reading '" + Path + "'");
  return Out;
}

Result<bool> writeFile(const std::string &Path, std::string_view Contents) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return makeError("cannot open '" + Path + "' for writing");
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), F);
  bool Bad = Written != Contents.size() || std::fclose(F) != 0;
  if (Bad)
    return makeError("I/O error while writing '" + Path + "'");
  return true;
}

} // namespace ev
