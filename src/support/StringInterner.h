//===- support/StringInterner.h - String table with stable ids ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deduplicating string table. Every distinct string receives a dense
/// uint32_t id; id 0 is always the empty string, matching the pprof
/// string_table convention. Frames, files, and load modules in the profile
/// model store ids instead of strings, which is one of the memory
/// optimizations the paper credits for EasyView's low response time
/// (ablated in bench/bench_ablation.cpp).
///
/// Storage is a bump-pointer arena of doubling blocks rather than one
/// heap allocation per string: interning a profile's string table touches
/// the allocator O(log n) times instead of O(n), and payload stays
/// contiguous in cache-friendly runs. Block addresses are stable, so the
/// index and all returned string_views stay valid across growth.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_STRINGINTERNER_H
#define EASYVIEW_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ev {

/// Dense id for an interned string. Id 0 is the empty string.
using StringId = uint32_t;

class StringInterner {
public:
  StringInterner() { (void)intern(""); }

  /// Deep copy: the copy re-interns every entry (same ids) into its own
  /// arena, so the two tables are fully independent.
  StringInterner(const StringInterner &Other);
  StringInterner &operator=(const StringInterner &Other);
  StringInterner(StringInterner &&Other) = default;
  StringInterner &operator=(StringInterner &&Other) = default;

  /// Interns \p Text, returning its stable id.
  StringId intern(std::string_view Text);

  /// \returns the text for \p Id. Asserts on out-of-range ids.
  std::string_view text(StringId Id) const;

  /// \returns the number of distinct strings (including the empty string).
  size_t size() const { return Table.size(); }

  /// Total bytes of string payload held (used by size accounting).
  size_t payloadBytes() const { return Payload; }

  /// Pre-sizes the table and index for \p Count strings of \p TotalBytes
  /// cumulative payload (decoders call this after a wire pre-scan).
  void reserve(size_t Count, size_t TotalBytes = 0);

private:
  /// Copies \p Text into the arena; the returned view is stable.
  std::string_view store(std::string_view Text);

  std::vector<std::string_view> Table; ///< Id -> view into the arena.
  std::unordered_map<std::string_view, StringId> Index;
  std::vector<std::unique_ptr<char[]>> Blocks;
  size_t BlockCapacity = 0; ///< Total size of Blocks.back().
  size_t BlockUsed = 0;     ///< Bytes consumed in Blocks.back().
  size_t Payload = 0;
};

} // namespace ev

#endif // EASYVIEW_SUPPORT_STRINGINTERNER_H
