//===- workload/ScalingWorkload.h - Memory-scaling case study -------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes the ScaAnalyzer-style memory-scaling study the paper cites
/// when motivating division-based differential metrics (§V-B: "users can
/// use division instead of subtraction to derive differential metrics,
/// which is used to measure memory scaling"). The workload models an
/// MPI-like application measured at two process counts:
///
///  - well-scaling contexts keep constant per-process memory;
///  - the communication buffer context grows linearly with the process
///    count (an O(P) all-to-all buffer) — the classic scaling bug;
///  - the rank-table context grows with P as well but starts tiny.
///
/// diff(Small, Large) + an EVQL `derive scaling = ratio(...)` pinpoints
/// the non-scalable contexts: their ratio tracks the process-count ratio
/// while healthy contexts stay near 1.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_WORKLOAD_SCALINGWORKLOAD_H
#define EASYVIEW_WORKLOAD_SCALINGWORKLOAD_H

#include "profile/Profile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ev {
namespace workload {

struct ScalingOptions {
  uint64_t Seed = 23;
  unsigned SmallProcs = 8;
  unsigned LargeProcs = 64;
};

struct ScalingWorkload {
  Profile Small; ///< Per-process memory profile at SmallProcs.
  Profile Large; ///< Per-process memory profile at LargeProcs.
  /// Leaf names of the contexts whose per-process memory grows with P.
  std::vector<std::string> NonScalable;
  /// Leaf names of constant-per-process contexts.
  std::vector<std::string> Scalable;
};

ScalingWorkload generateScalingWorkload(const ScalingOptions &Options = {});

} // namespace workload
} // namespace ev

#endif // EASYVIEW_WORKLOAD_SCALINGWORKLOAD_H
