//===- analysis/Transform.cpp - Top-down/bottom-up/flat tree shapes -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Transform.h"

#include "analysis/MetricEngine.h"
#include "analysis/Traversal.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ev {

namespace {

/// Copies the metric schema of \p Src into \p Dst; returns the id map
/// (identical when Dst starts empty, but kept explicit for safety).
std::vector<MetricId> copyMetricSchema(const Profile &Src, Profile &Dst) {
  std::vector<MetricId> Map(Src.metrics().size());
  for (MetricId I = 0; I < Src.metrics().size(); ++I) {
    const MetricDescriptor &M = Src.metrics()[I];
    Map[I] = Dst.addMetric(M.Name, M.Unit, M.Aggregation);
  }
  return Map;
}

/// Re-interns frame \p F of \p Src into \p Dst.
FrameId copyFrame(const Profile &Src, const Frame &F, Profile &Dst) {
  Frame Copy;
  Copy.Kind = F.Kind;
  Copy.Name = Dst.strings().intern(Src.text(F.Name));
  Copy.Loc.File = Dst.strings().intern(Src.text(F.Loc.File));
  Copy.Loc.Line = F.Loc.Line;
  Copy.Loc.Module = Dst.strings().intern(Src.text(F.Loc.Module));
  Copy.Loc.Address = F.Loc.Address;
  return Dst.internFrame(Copy);
}

/// Incrementally materializes paths in an output profile, merging common
/// prefixes exactly like ProfileBuilder but against externally supplied
/// frame ids.
class TreeWriter {
public:
  explicit TreeWriter(Profile &P) : P(P) {}

  NodeId child(NodeId Parent, FrameId F) {
    uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | F;
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    NodeId Id = P.createNode(Parent, F);
    Index.emplace(Key, Id);
    return Id;
  }

private:
  Profile &P;
  std::unordered_map<uint64_t, NodeId> Index;
};

} // namespace

Profile topDownTree(const Profile &P, const CancelToken &Cancel) {
  trace::Span Span("analysis/topDownTree", "analysis");
  Profile Out;
  Out.setName(P.name());
  std::vector<MetricId> MetricMap = copyMetricSchema(P, Out);

  // Frame table first, then nodes in id order (parents precede children).
  std::vector<FrameId> FrameMap(P.frames().size());
  for (FrameId I = 0; I < P.frames().size(); ++I)
    FrameMap[I] = copyFrame(P, P.frame(I), Out);

  std::vector<NodeId> NodeMap(P.nodeCount(), InvalidNode);
  NodeMap[P.root()] = Out.root();
  Out.node(Out.root()).FrameRef = FrameMap[P.node(P.root()).FrameRef];
  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    if ((Id & 8191) == 0)
      Cancel.checkpoint();
    const CCTNode &Node = P.node(Id);
    NodeMap[Id] = Out.createNode(NodeMap[Node.Parent], FrameMap[Node.FrameRef]);
  }
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    for (const MetricValue &MV : P.node(Id).Metrics)
      Out.node(NodeMap[Id]).addMetric(MetricMap[MV.Metric], MV.Value);
  return Out;
}

Profile bottomUpTree(const Profile &P, const CancelToken &Cancel) {
  trace::Span Span("analysis/bottomUpTree", "analysis");
  Profile Out;
  Out.setName(P.name() + " (bottom-up)");
  std::vector<MetricId> MetricMap = copyMetricSchema(P, Out);
  std::vector<FrameId> FrameMap(P.frames().size());
  for (FrameId I = 0; I < P.frames().size(); ++I)
    FrameMap[I] = copyFrame(P, P.frame(I), Out);

  // Depth of every node in one forward pass (ids are parents-first; the
  // column is guarded against malformed parent slots, see depthColumn).
  std::vector<uint32_t> Depth = depthColumn(P);

  // Contexts that carry a non-zero metric, in id order.
  std::vector<NodeId> Contributors;
  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    const CCTNode &Node = P.node(Id);
    bool AllZero = true;
    for (const MetricValue &MV : Node.Metrics)
      if (MV.Value != 0.0)
        AllZero = false;
    if (!Node.Metrics.empty() && !AllZero)
      Contributors.push_back(Id);
  }

  // Each contributor owns a disjoint slice of one flat path buffer, so the
  // reversed-path reconstruction (leaf frame first, callers outward,
  // stopping before the root) parallelizes without synchronization.
  std::vector<size_t> Offset(Contributors.size() + 1, 0);
  for (size_t I = 0; I < Contributors.size(); ++I)
    Offset[I + 1] = Offset[I] + Depth[Contributors[I]];
  std::vector<FrameId> Paths(Offset.back());
  ThreadPool::shared().parallelFor(Contributors.size(), [&](size_t I) {
    if ((I & 1023) == 0)
      Cancel.checkpoint(); // Unwinds through the pool to the caller.
    size_t Slot = Offset[I];
    for (NodeId Walk = Contributors[I]; Walk != P.root();
         Walk = P.node(Walk).Parent)
      Paths[Slot++] = FrameMap[P.node(Walk).FrameRef];
  });

  // The merge itself stays sequential and in the original id order, so the
  // output is identical for every thread count.
  TreeWriter Writer(Out);
  for (size_t I = 0; I < Contributors.size(); ++I) {
    if ((I & 1023) == 0)
      Cancel.checkpoint();
    NodeId Cur = Out.root();
    for (size_t S = Offset[I]; S < Offset[I + 1]; ++S)
      Cur = Writer.child(Cur, Paths[S]);
    for (const MetricValue &MV : P.node(Contributors[I]).Metrics)
      Out.node(Cur).addMetric(MetricMap[MV.Metric], MV.Value);
  }
  return Out;
}

Profile flatTree(const Profile &P, const CancelToken &Cancel) {
  trace::Span Span("analysis/flatTree", "analysis");
  Profile Out;
  Out.setName(P.name() + " (flat)");
  std::vector<MetricId> ExclMap = copyMetricSchema(P, Out);
  // One extra column per metric holding the call-path-aware inclusive sum.
  std::vector<MetricId> InclMap(P.metrics().size());
  for (MetricId I = 0; I < P.metrics().size(); ++I) {
    const MetricDescriptor &M = P.metrics()[I];
    InclMap[I] = Out.addMetric(M.Name + " (inclusive)", M.Unit, M.Aggregation);
  }

  // All inclusive columns in one fused sweep instead of one pass per metric.
  std::vector<std::vector<double>> Inclusive = inclusiveColumns(P);

  // The module/file/function frames a context expands to depend only on its
  // frame, so materialize them once per distinct frame instead of once per
  // CCT node.
  struct FlatRefs {
    FrameId Module;
    FrameId File;
    FrameId Func;
  };
  std::vector<FlatRefs> Refs(P.frames().size());
  for (FrameId I = 0; I < P.frames().size(); ++I) {
    const Frame &F = P.frame(I);
    StringId ModuleText = Out.strings().intern(P.text(F.Loc.Module));
    StringId FileText = Out.strings().intern(P.text(F.Loc.File));
    Refs[I].Module = Out.internFrame(
        {FrameKind::Function,
         P.text(F.Loc.Module).empty()
             ? Out.strings().intern("<unknown module>")
             : ModuleText,
         SourceLocation{0, 0, ModuleText, 0}});
    Refs[I].File = Out.internFrame(
        {FrameKind::Function,
         P.text(F.Loc.File).empty() ? Out.strings().intern("<unknown file>")
                                    : FileText,
         SourceLocation{FileText, 0, ModuleText, 0}});
    Refs[I].Func = copyFrame(P, F, Out);
  }

  TreeWriter Writer(Out);
  // Count of occurrences of each function frame along the current DFS path,
  // so that recursive functions contribute their inclusive value only once
  // (outermost occurrence).
  std::unordered_map<FrameId, unsigned> ActiveFrames;

  // Iterative DFS with explicit enter/leave events.
  struct Event {
    NodeId Id;
    bool Enter;
  };
  std::vector<Event> Stack{{P.root(), true}};
  size_t Visited = 0;
  while (!Stack.empty()) {
    if ((Visited++ & 8191) == 0)
      Cancel.checkpoint();
    Event E = Stack.back();
    Stack.pop_back();
    const CCTNode &Node = P.node(E.Id);
    if (!E.Enter) {
      if (E.Id != P.root())
        --ActiveFrames[Node.FrameRef];
      continue;
    }
    if (E.Id != P.root()) {
      // Materialize root -> module -> file -> function from the per-frame
      // precomputed refs.
      const FlatRefs &R = Refs[Node.FrameRef];
      NodeId ModuleNode = Writer.child(Out.root(), R.Module);
      NodeId FileNode = Writer.child(ModuleNode, R.File);
      NodeId FuncNode = Writer.child(FileNode, R.Func);

      unsigned &Depth = ActiveFrames[Node.FrameRef];
      for (const MetricValue &MV : Node.Metrics)
        Out.node(FuncNode).addMetric(ExclMap[MV.Metric], MV.Value);
      if (Depth == 0)
        for (MetricId M = 0; M < P.metrics().size(); ++M)
          if (Inclusive[M][E.Id] != 0.0)
            Out.node(FuncNode).addMetric(InclMap[M], Inclusive[M][E.Id]);
      ++Depth;
      Stack.push_back({E.Id, false});
    }
    for (size_t I = Node.Children.size(); I > 0; --I)
      Stack.push_back({Node.Children[I - 1], true});
  }
  return Out;
}

Profile collapseRecursion(const Profile &P, const CancelToken &Cancel) {
  trace::Span Span("analysis/collapseRecursion", "analysis");
  Profile Out;
  Out.setName(P.name());
  std::vector<MetricId> MetricMap = copyMetricSchema(P, Out);
  std::vector<FrameId> FrameMap(P.frames().size());
  for (FrameId I = 0; I < P.frames().size(); ++I)
    FrameMap[I] = copyFrame(P, P.frame(I), Out);

  TreeWriter Writer(Out);
  // Map each source node to its (possibly merged) output node. A child with
  // the same frame as its parent collapses into the parent's output node.
  std::vector<NodeId> OutNode(P.nodeCount(), InvalidNode);
  OutNode[P.root()] = Out.root();
  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    if ((Id & 8191) == 0)
      Cancel.checkpoint();
    const CCTNode &Node = P.node(Id);
    NodeId ParentOut = OutNode[Node.Parent];
    if (Node.Parent != P.root() &&
        P.node(Node.Parent).FrameRef == Node.FrameRef) {
      OutNode[Id] = ParentOut; // Self-recursive frame: merge.
    } else {
      OutNode[Id] = Writer.child(ParentOut, FrameMap[Node.FrameRef]);
    }
    for (const MetricValue &MV : Node.Metrics)
      Out.node(OutNode[Id]).addMetric(MetricMap[MV.Metric], MV.Value);
  }
  for (const MetricValue &MV : P.node(P.root()).Metrics)
    Out.node(Out.root()).addMetric(MetricMap[MV.Metric], MV.Value);
  return Out;
}

Profile limitDepth(const Profile &P, unsigned MaxDepth) {
  Profile Out;
  Out.setName(P.name());
  std::vector<MetricId> MetricMap = copyMetricSchema(P, Out);
  std::vector<FrameId> FrameMap(P.frames().size());
  for (FrameId I = 0; I < P.frames().size(); ++I)
    FrameMap[I] = copyFrame(P, P.frame(I), Out);

  std::vector<NodeId> OutNode(P.nodeCount(), InvalidNode);
  std::vector<unsigned> Depth(P.nodeCount(), 0);
  OutNode[P.root()] = Out.root();
  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    const CCTNode &Node = P.node(Id);
    Depth[Id] = Depth[Node.Parent] + 1;
    if (Depth[Id] > MaxDepth) {
      OutNode[Id] = OutNode[Node.Parent]; // Fold into the deepest ancestor.
    } else {
      OutNode[Id] =
          Out.createNode(OutNode[Node.Parent], FrameMap[Node.FrameRef]);
    }
    for (const MetricValue &MV : Node.Metrics)
      Out.node(OutNode[Id]).addMetric(MetricMap[MV.Metric], MV.Value);
  }
  for (const MetricValue &MV : P.node(P.root()).Metrics)
    Out.node(Out.root()).addMetric(MetricMap[MV.Metric], MV.Value);
  return Out;
}

} // namespace ev
