//===- profile/ProfileStore.cpp - Shared out-of-core profile store --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileStore.h"

#include "proto/EvProf.h"
#include "support/FileIo.h"

#include <cassert>
#include <tuple>

#include <sys/stat.h>
#include <unistd.h>

namespace ev {

ProfileStore::~ProfileStore() {
  for (const auto &[Id, E] : Profiles)
    if (E.SpillFileBytes != 0)
      ::unlink(E.SpillPath.c_str());
}

std::string ProfileStore::spillPathFor(int64_t Id) const {
  return SpillDir + "/seg-" + std::to_string(Id) + ".evcol";
}

void ProfileStore::buildColumnarLocked(int64_t Id, Entry &E) const {
  assert(E.Aos && "columnar build needs the AoS form");
  E.Col = std::make_shared<const ColumnarProfile>(
      ColumnarProfile::build(*E.Aos, Strings));
  E.ColBytes = E.Col->residentBytes();
  Counters.ColumnarBytes += E.ColBytes;
  Budget.recharge(Id, residentOf(E));
}

int64_t ProfileStore::add(std::shared_ptr<const Profile> P) {
  std::lock_guard<std::mutex> Lock(Mutex);
  int64_t Id = NextId++;
  Entry E;
  E.Aos = std::move(P);
  E.AosBytes = E.Aos->approxMemoryBytes();
  Counters.AosBytes += E.AosBytes;
  auto [It, Inserted] = Profiles.emplace(Id, std::move(E));
  assert(Inserted);
  Budget.charge(Id, residentOf(It->second));
  if (Budget.limit() != 0) {
    buildColumnarLocked(Id, It->second);
    enforceLocked(Id);
  }
  return Id;
}

Result<int64_t> ProfileStore::openStream(std::string_view InitialBytes,
                                         const DecodeLimits &Limits) {
  auto Decoder = std::make_unique<EvProfStreamDecoder>(Limits);
  if (Result<size_t> Fed = Decoder->feed(InitialBytes); !Fed)
    return makeError(Fed.error());
  Result<Profile> Snapshot = Decoder->snapshot();
  if (!Snapshot)
    return makeError(Snapshot.error());

  std::lock_guard<std::mutex> Lock(Mutex);
  int64_t Id = NextId++;
  Entry E;
  E.Aos = std::make_shared<const Profile>(Snapshot.take());
  E.AosBytes = E.Aos->approxMemoryBytes();
  E.Stream = std::move(Decoder);
  Counters.AosBytes += E.AosBytes;
  auto [It, Inserted] = Profiles.emplace(Id, std::move(E));
  assert(Inserted);
  (void)Inserted;
  Budget.charge(Id, residentOf(It->second));
  if (Budget.limit() != 0) {
    buildColumnarLocked(Id, It->second);
    enforceLocked(Id);
  }
  return Id;
}

void ProfileStore::refreshSnapshotLocked(int64_t Id, Entry &E) {
  Result<Profile> Snapshot = E.Stream->snapshot();
  assert(Snapshot && "refresh is only reached after successful decode");
  if (!Snapshot)
    return;
  Counters.AosBytes -= E.AosBytes;
  E.Aos = std::make_shared<const Profile>(Snapshot.take());
  E.AosBytes = E.Aos->approxMemoryBytes();
  Counters.AosBytes += E.AosBytes;
  // The columnar form and any spill file captured the pre-append content;
  // both are stale now. Columns are rebuilt lazily (or eagerly below when
  // budgeted), and the spill file is rewritten on the next tier-2 pass.
  if (E.Col) {
    Counters.ColumnarBytes -= E.ColBytes;
    E.Col.reset();
    E.ColBytes = 0;
  }
  if (E.SpillFileBytes != 0) {
    Counters.SpilledBytes -= E.SpillFileBytes;
    ::unlink(E.SpillPath.c_str());
    E.SpillFileBytes = 0;
  }
  Budget.recharge(Id, residentOf(E));
  if (Budget.limit() != 0) {
    buildColumnarLocked(Id, E);
    enforceLocked(Id);
  }
  // Retire every cached view of the old content and wake subscribers.
  ++Generations[Id];
}

Result<size_t> ProfileStore::append(int64_t Id, std::string_view Bytes,
                                    const DecodeLimits &Limits) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Profiles.find(Id);
  if (It == Profiles.end())
    return makeError("unknown profile id " + std::to_string(Id));
  Entry &E = It->second;

  if (!E.Stream) {
    // Bootstrap: replay the profile's canonical serialization through a
    // fresh decoder, so the appended section's wire references (string,
    // frame, metric, node ids) resolve against canonical table order —
    // exactly what a client diffing against writeEvProf output expects.
    std::shared_ptr<const Profile> Aos = ensureAosLocked(Id, E);
    if (!Aos)
      return makeError("profile " + std::to_string(Id) +
                       " is unrecoverable");
    auto Decoder = std::make_unique<EvProfStreamDecoder>(Limits);
    Result<size_t> Replayed = Decoder->feed(writeEvProf(*Aos));
    if (!Replayed)
      return makeError("cannot bootstrap stream decoder: " +
                       Replayed.error());
    E.Stream = std::move(Decoder);
  }

  auto Signature = [](const Profile &P) {
    return std::tuple(P.name(), P.nodeCount(), P.frames().size(),
                      P.metrics().size(), P.strings().size(),
                      P.groups().size());
  };
  auto Before = Signature(E.Stream->current());
  Result<size_t> Added = E.Stream->feed(Bytes);
  if (!Added)
    return makeError(Added.error());
  if (Signature(E.Stream->current()) != Before)
    refreshSnapshotLocked(Id, E);
  return *Added;
}

std::shared_ptr<const Profile>
ProfileStore::ensureAosLocked(int64_t Id, Entry &E) const {
  if (E.Aos) {
    Budget.touch(Id);
    return E.Aos;
  }
  // Fault path: the AoS form was shed. Rebuild it from columns, remapping
  // the spill file first when the block itself was evicted.
  if (!E.Col) {
    Result<ColumnarProfile> Mapped =
        ColumnarProfile::mapFrom(E.SpillPath, Strings);
    if (!Mapped)
      return nullptr; // Spill file lost or corrupt; id is unrecoverable.
    E.Col = std::make_shared<const ColumnarProfile>(std::move(*Mapped));
    E.ColBytes = E.Col->residentBytes();
    Counters.ColumnarBytes += E.ColBytes;
  }
  E.Aos = std::make_shared<const Profile>(E.Col->materialize());
  E.AosBytes = E.Aos->approxMemoryBytes();
  Counters.AosBytes += E.AosBytes;
  ++Counters.Faults;
  Budget.charge(Id, residentOf(E)); // charge() also promotes to hottest.
  enforceLocked(Id);
  return E.Aos;
}

std::shared_ptr<const Profile> ProfileStore::get(int64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Profiles.find(Id);
  if (It == Profiles.end())
    return nullptr;
  return ensureAosLocked(Id, It->second);
}

std::shared_ptr<const ColumnarProfile>
ProfileStore::columnar(int64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Profiles.find(Id);
  if (It == Profiles.end())
    return nullptr;
  Entry &E = It->second;
  if (E.Col) {
    Budget.touch(Id);
    return E.Col;
  }
  if (E.SpillFileBytes != 0) {
    Result<ColumnarProfile> Mapped =
        ColumnarProfile::mapFrom(E.SpillPath, Strings);
    if (!Mapped)
      return nullptr;
    E.Col = std::make_shared<const ColumnarProfile>(std::move(*Mapped));
    ++Counters.Faults;
  } else if (E.Aos) {
    // First columnar request in an unbudgeted store: build on demand.
    E.Col = std::make_shared<const ColumnarProfile>(
        ColumnarProfile::build(*E.Aos, Strings));
  } else {
    return nullptr;
  }
  E.ColBytes = E.Col->residentBytes();
  Counters.ColumnarBytes += E.ColBytes;
  Budget.charge(Id, residentOf(E));
  enforceLocked(Id);
  return E.Col;
}

bool ProfileStore::drop(int64_t Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Profiles.find(Id);
  if (It == Profiles.end())
    return false;
  Entry &E = It->second;
  Counters.AosBytes -= E.AosBytes;
  Counters.ColumnarBytes -= E.ColBytes;
  if (E.SpillFileBytes != 0) {
    Counters.SpilledBytes -= E.SpillFileBytes;
    ::unlink(E.SpillPath.c_str());
  }
  Budget.release(Id);
  Profiles.erase(It);
  return true;
}

uint64_t ProfileStore::generationOf(int64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Generations.find(Id);
  return It == Generations.end() ? 0 : It->second;
}

void ProfileStore::bumpGeneration(int64_t Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Generations[Id];
}

size_t ProfileStore::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Profiles.size();
}

Result<bool> ProfileStore::setBudget(uint64_t Bytes,
                                     const std::string &Dir) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Bytes == 0) {
    Budget.setLimit(0);
    return true;
  }
  if (Dir.empty())
    return makeError("store budget requires a spill directory");
  ::mkdir(Dir.c_str(), 0755); // EEXIST is fine; verified below.
  if (!isDirectory(Dir))
    return makeError("cannot create spill directory '" + Dir + "'");
  SpillDir = Dir;
  Budget.setLimit(Bytes);
  // Every entry must be spillable before enforcement can make progress.
  for (auto &[Id, E] : Profiles)
    if (!E.Col && E.Aos)
      buildColumnarLocked(Id, E);
  enforceLocked(/*Pinned=*/-1);
  return true;
}

void ProfileStore::enforceLocked(int64_t Pinned) const {
  if (!Budget.overLimit())
    return;
  // Tier 1: shed AoS materializations of cold entries that still have
  // their column block — rebuildable on the next get() fault.
  for (int64_t Id : Budget.coldestFirst()) {
    if (!Budget.overLimit())
      return;
    if (Id == Pinned)
      continue;
    Entry &E = Profiles.find(Id)->second;
    if (E.Aos && E.Col) {
      E.Aos.reset();
      Counters.AosBytes -= E.AosBytes;
      E.AosBytes = 0;
      ++Counters.Evictions;
      Budget.recharge(Id, residentOf(E));
    }
  }
  // Tier 2: spill column blocks themselves. Blocks are immutable, so an
  // existing spill file is reused without a rewrite.
  for (int64_t Id : Budget.coldestFirst()) {
    if (!Budget.overLimit())
      return;
    if (Id == Pinned)
      continue;
    Entry &E = Profiles.find(Id)->second;
    if (!E.Col)
      continue;
    if (E.SpillFileBytes == 0) {
      if (E.SpillPath.empty())
        E.SpillPath = spillPathFor(Id);
      Result<uint64_t> Written = E.Col->spillTo(E.SpillPath);
      if (!Written) {
        ++Counters.SpillFailures; // Keep it resident; try again later.
        continue;
      }
      E.SpillFileBytes = *Written;
      Counters.SpilledBytes += E.SpillFileBytes;
      ++Counters.Spills;
    }
    if (E.Aos) {
      E.Aos.reset();
      Counters.AosBytes -= E.AosBytes;
      E.AosBytes = 0;
      ++Counters.Evictions;
    }
    E.Col.reset();
    Counters.ColumnarBytes -= E.ColBytes;
    E.ColBytes = 0;
    ++Counters.Evictions;
    Budget.release(Id);
  }
}

StoreStats ProfileStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  StoreStats S = Counters;
  S.Profiles = Profiles.size();
  S.BudgetBytes = Budget.limit();
  S.ResidentBytes = S.AosBytes + S.ColumnarBytes;
  S.SharedStringBytes = Strings.payloadBytes();
  assert(S.ResidentBytes == Budget.chargedBytes() &&
         "incremental accounting must match the LRU charges");
  return S;
}

} // namespace ev
