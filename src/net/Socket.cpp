//===- net/Socket.cpp - POSIX socket helpers for the PVP transport --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "net/Socket.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ev {
namespace net {

namespace {

std::string errnoMessage(const std::string &What) {
  return What + ": " + std::strerror(errno);
}

/// Formats the bound address of \p Fd as "host:port".
std::string localAddress(int Fd) {
  sockaddr_storage Addr;
  socklen_t Len = sizeof(Addr);
  if (getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return "?:?";
  char Host[NI_MAXHOST], Port[NI_MAXSERV];
  if (getnameinfo(reinterpret_cast<sockaddr *>(&Addr), Len, Host,
                  sizeof(Host), Port, sizeof(Port),
                  NI_NUMERICHOST | NI_NUMERICSERV) != 0)
    return "?:?";
  std::string H(Host);
  if (H.find(':') != std::string::npos)
    H = "[" + H + "]"; // IPv6 literals need brackets next to ":port".
  return H + ":" + Port;
}

/// getaddrinfo() over \p Host/\p Port; \p Passive selects AI_PASSIVE
/// (listener) semantics. The callback tries each candidate until one
/// returns a non-negative fd; the first system error is reported.
template <typename TryFn>
Result<int> withAddrInfo(const std::string &Host, const std::string &Port,
                         bool Passive, TryFn &&Try) {
  addrinfo Hints = {};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  if (Passive)
    Hints.ai_flags = AI_PASSIVE;
  addrinfo *List = nullptr;
  int GaiErr = getaddrinfo(Host.empty() ? nullptr : Host.c_str(),
                           Port.c_str(), &Hints, &List);
  if (GaiErr != 0)
    return makeError("resolving '" + Host + ":" + Port +
                     "': " + gai_strerror(GaiErr));
  std::string FirstError;
  int Fd = -1;
  for (addrinfo *AI = List; AI; AI = AI->ai_next) {
    Result<int> R = Try(*AI);
    if (R) {
      Fd = *R;
      break;
    }
    if (FirstError.empty())
      FirstError = R.error();
  }
  freeaddrinfo(List);
  if (Fd < 0)
    return makeError(FirstError.empty() ? "no usable address for '" + Host +
                                              ":" + Port + "'"
                                        : FirstError);
  return Fd;
}

} // namespace

void ignoreSigpipe() {
  static std::once_flag Once;
  std::call_once(Once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

bool splitHostPort(const std::string &Spec, std::string &Host,
                   std::string &Port) {
  if (!Spec.empty() && Spec.front() == '[') {
    // "[v6-literal]:port"
    size_t Close = Spec.find(']');
    if (Close == std::string::npos || Close + 1 >= Spec.size() ||
        Spec[Close + 1] != ':')
      return false;
    Host = Spec.substr(1, Close - 1);
    Port = Spec.substr(Close + 2);
  } else {
    size_t Colon = Spec.rfind(':');
    if (Colon == std::string::npos)
      return false;
    Host = Spec.substr(0, Colon);
    Port = Spec.substr(Colon + 1);
  }
  return !Port.empty();
}

Result<int> listenTcp(const std::string &HostPort, std::string &BoundAddr,
                      int Backlog) {
  std::string Host, Port;
  if (!splitHostPort(HostPort, Host, Port))
    return makeError("invalid listen address '" + HostPort +
                     "' (expected HOST:PORT)");
  Result<int> Fd = withAddrInfo(
      Host, Port, /*Passive=*/true, [&](const addrinfo &AI) -> Result<int> {
        int S = socket(AI.ai_family, AI.ai_socktype, AI.ai_protocol);
        if (S < 0)
          return makeError(errnoMessage("socket"));
        int One = 1;
        setsockopt(S, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
        if (bind(S, AI.ai_addr, AI.ai_addrlen) != 0) {
          std::string E = errnoMessage("bind");
          closeSocket(S);
          return makeError(std::move(E));
        }
        if (listen(S, Backlog) != 0) {
          std::string E = errnoMessage("listen");
          closeSocket(S);
          return makeError(std::move(E));
        }
        return S;
      });
  if (!Fd)
    return Fd;
  if (Result<bool> NB = setNonBlocking(*Fd); !NB) {
    closeSocket(*Fd);
    return makeError(NB.error());
  }
  BoundAddr = localAddress(*Fd);
  return Fd;
}

Result<int> listenUnix(const std::string &Path, int Backlog) {
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return makeError("unix socket path too long: " + Path);
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int S = socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return makeError(errnoMessage("socket"));
  // A stale socket file from a crashed run would fail the bind; remove it.
  // (A *live* server holds the listener open, but two servers on one path
  // is an operator error this transport does not arbitrate.)
  unlink(Path.c_str());
  if (bind(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    std::string E = errnoMessage("bind " + Path);
    closeSocket(S);
    return makeError(std::move(E));
  }
  if (listen(S, Backlog) != 0) {
    std::string E = errnoMessage("listen " + Path);
    closeSocket(S);
    return makeError(std::move(E));
  }
  if (Result<bool> NB = setNonBlocking(S); !NB) {
    closeSocket(S);
    return makeError(NB.error());
  }
  return S;
}

Result<int> connectTcp(const std::string &HostPort) {
  std::string Host, Port;
  if (!splitHostPort(HostPort, Host, Port))
    return makeError("invalid address '" + HostPort +
                     "' (expected HOST:PORT)");
  return withAddrInfo(Host, Port, /*Passive=*/false,
                      [&](const addrinfo &AI) -> Result<int> {
                        int S = socket(AI.ai_family, AI.ai_socktype,
                                       AI.ai_protocol);
                        if (S < 0)
                          return makeError(errnoMessage("socket"));
                        if (connect(S, AI.ai_addr, AI.ai_addrlen) != 0) {
                          std::string E = errnoMessage("connect");
                          closeSocket(S);
                          return makeError(std::move(E));
                        }
                        return S;
                      });
}

Result<int> connectUnix(const std::string &Path) {
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return makeError("unix socket path too long: " + Path);
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int S = socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return makeError(errnoMessage("socket"));
  if (connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    std::string E = errnoMessage("connect " + Path);
    closeSocket(S);
    return makeError(std::move(E));
  }
  return S;
}

Result<int> acceptConnection(int ListenFd) {
  for (;;) {
    int Fd = accept(ListenFd, nullptr, nullptr);
    if (Fd >= 0) {
      if (Result<bool> NB = setNonBlocking(Fd); !NB) {
        closeSocket(Fd);
        return makeError(NB.error());
      }
#ifdef SO_NOSIGPIPE
      int One = 1;
      setsockopt(Fd, SOL_SOCKET, SO_NOSIGPIPE, &One, sizeof(One));
#endif
      return Fd;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return -1;
    // Transient per-connection failures (the peer aborted between the
    // kernel queueing it and us accepting it) are not listener failures.
    if (errno == ECONNABORTED)
      continue;
    return makeError(errnoMessage("accept"));
  }
}

Result<bool> setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  if (Flags < 0 || fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) != 0)
    return makeError(errnoMessage("fcntl(O_NONBLOCK)"));
  return true;
}

ssize_t sendNoSignal(int Fd, const void *Bytes, size_t Len) {
#ifdef MSG_NOSIGNAL
  return send(Fd, Bytes, Len, MSG_NOSIGNAL);
#else
  return send(Fd, Bytes, Len, 0); // ignoreSigpipe() covers this platform.
#endif
}

void closeSocket(int Fd) {
  if (Fd < 0)
    return;
  while (close(Fd) != 0 && errno == EINTR)
    ;
}

} // namespace net
} // namespace ev
