# Empty dependencies file for evtool.
# This may be replaced when dependencies are built.
