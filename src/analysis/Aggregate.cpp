//===- analysis/Aggregate.cpp - Multi-profile aggregation -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Aggregate.h"

#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cassert>
#include <cmath>
#include <string_view>

namespace ev {

std::vector<double>
AggregatedProfile::perProfileExclusive(NodeId Node, MetricId Metric) const {
  auto It = KeyIndex.find(sampleKey(Node, Metric));
  if (It == KeyIndex.end())
    return {};
  const double *Row = Matrix.data() + size_t(It->second) * ProfileCount;
  return std::vector<double>(Row, Row + ProfileCount);
}

void AggregatedProfile::ensureInclusive() const {
  if (InclusiveReady)
    return;
  InclusiveColumns.assign(InputMetricCount * ProfileCount,
                          std::vector<double>(Merged.nodeCount(), 0.0));
  for (size_t R = 0; R < KeyOrder.size(); ++R) {
    uint64_t Key = KeyOrder[R];
    NodeId Node = static_cast<NodeId>(Key >> 16);
    MetricId Metric = static_cast<MetricId>(Key & 0xFFFF);
    if (Metric >= InputMetricCount)
      continue; // Derived columns do not have per-profile samples.
    for (size_t Prof = 0; Prof < ProfileCount; ++Prof)
      InclusiveColumns[Metric * ProfileCount + Prof][Node] +=
          Matrix[R * ProfileCount + Prof];
  }
  // Bottom-up accumulation; node ids are parents-first. Each (metric,
  // profile) column sweeps independently, so columns distribute across
  // workers with bit-identical results.
  ThreadPool::shared().parallelFor(InclusiveColumns.size(), [&](size_t C) {
    std::vector<double> &Column = InclusiveColumns[C];
    for (NodeId Id = static_cast<NodeId>(Merged.nodeCount()); Id > 1;) {
      --Id;
      Column[Merged.node(Id).Parent] += Column[Id];
    }
  });
  InclusiveReady = true;
}

std::vector<double>
AggregatedProfile::perProfileInclusive(NodeId Node, MetricId Metric) const {
  assert(Metric < InputMetricCount && "derived columns have no histogram");
  ensureInclusive();
  std::vector<double> Out(ProfileCount, 0.0);
  for (size_t Prof = 0; Prof < ProfileCount; ++Prof)
    Out[Prof] = InclusiveColumns[Metric * ProfileCount + Prof][Node];
  return Out;
}

namespace {

/// Textual identity of a frame, resolved out of the owning profile's string
/// table so the merge loop never chases StringIds.
struct CanonFrame {
  FrameKind Kind;
  std::string_view Name;
  std::string_view File;
  std::string_view Module;
  uint32_t Line;
};

/// Everything about one input that can be computed without touching the
/// merged profile.
struct ProfilePrep {
  std::vector<MetricId> MetricMap;
  std::vector<CanonFrame> Frames;
};

} // namespace

AggregatedProfile aggregate(std::span<const Profile *const> Profiles,
                            const AggregateOptions &Options,
                            const CancelToken &Cancel) {
  trace::Span Span("analysis/aggregate", "analysis");
  assert(!Profiles.empty() && "aggregate requires at least one profile");
  AggregatedProfile Agg;
  Agg.ProfileCount = Profiles.size();
  const Profile &First = *Profiles[0];
  Agg.InputMetricCount = First.metrics().size();
  assert(Agg.InputMetricCount < 0xFFFF && "metric id space exhausted");

  Profile &Merged = Agg.Merged;
  Merged.setName("aggregate of " + std::to_string(Profiles.size()) +
                 " profiles");

  // Column layout: first the input metrics (holding the per-node SUM when
  // WithSum, otherwise zeros), then the derived statistics.
  std::vector<MetricId> SumIds(Agg.InputMetricCount);
  std::vector<MetricId> MinIds, MaxIds, MeanIds, StddevIds;
  for (MetricId I = 0; I < Agg.InputMetricCount; ++I) {
    const MetricDescriptor &M = First.metrics()[I];
    SumIds[I] = Merged.addMetric(M.Name, M.Unit, M.Aggregation);
  }
  for (MetricId I = 0; I < Agg.InputMetricCount; ++I) {
    const MetricDescriptor &M = First.metrics()[I];
    if (Options.WithMin)
      MinIds.push_back(
          Merged.addMetric(M.Name + ".min", M.Unit, MetricAggregation::Min));
    if (Options.WithMax)
      MaxIds.push_back(
          Merged.addMetric(M.Name + ".max", M.Unit, MetricAggregation::Max));
    if (Options.WithMean)
      MeanIds.push_back(
          Merged.addMetric(M.Name + ".mean", M.Unit, MetricAggregation::Sum));
    if (Options.WithStddev)
      StddevIds.push_back(Merged.addMetric(M.Name + ".stddev", M.Unit,
                                           MetricAggregation::Sum));
  }

  // Phase 1 (parallel): canonicalize every input independently — resolve
  // each frame to its textual identity and map each metric schema onto the
  // first profile's columns. Reads only the inputs, so profiles fan out
  // across workers.
  std::vector<ProfilePrep> Preps =
      ThreadPool::shared().parallelMap<ProfilePrep>(
          Profiles.size(), [&](size_t ProfIdx) {
            const Profile &P = *Profiles[ProfIdx];
            ProfilePrep Prep;
            Prep.MetricMap.assign(P.metrics().size(), Profile::InvalidMetric);
            for (MetricId I = 0; I < P.metrics().size(); ++I) {
              MetricId Target = First.findMetric(P.metrics()[I].Name);
              if (Target != Profile::InvalidMetric)
                Prep.MetricMap[I] = Target;
            }
            Prep.Frames.reserve(P.frames().size());
            for (const Frame &F : P.frames())
              Prep.Frames.push_back({F.Kind, P.text(F.Name),
                                     P.text(F.Loc.File), P.text(F.Loc.Module),
                                     F.Loc.Line});
            return Prep;
          });

  // Phase 2 (sequential, ordered): merge every input tree into the unified
  // tree, profile by profile and node by node, so the merged node ids are
  // identical for every thread count. Children are matched by textual frame
  // identity under the same merged parent.
  std::unordered_map<uint64_t, NodeId> ChildIndex;
  auto ChildFor = [&](NodeId Parent, FrameId F) {
    uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | F;
    auto It = ChildIndex.find(Key);
    if (It != ChildIndex.end())
      return It->second;
    NodeId Id = Merged.createNode(Parent, F);
    ChildIndex.emplace(Key, Id);
    return Id;
  };

  std::vector<std::vector<NodeId>> OutNodes(Profiles.size());
  for (size_t ProfIdx = 0; ProfIdx < Profiles.size(); ++ProfIdx) {
    const Profile &P = *Profiles[ProfIdx];
    const ProfilePrep &Prep = Preps[ProfIdx];
    std::vector<NodeId> &OutNode = OutNodes[ProfIdx];
    OutNode.assign(P.nodeCount(), InvalidNode);
    OutNode[P.root()] = Merged.root();
    std::vector<FrameId> FrameMap(P.frames().size(), 0);
    std::vector<bool> FrameMapped(P.frames().size(), false);
    auto MapFrame = [&](FrameId F) {
      if (FrameMapped[F])
        return FrameMap[F];
      const CanonFrame &Canon = Prep.Frames[F];
      Frame Copy;
      Copy.Kind = Canon.Kind;
      Copy.Name = Merged.strings().intern(Canon.Name);
      Copy.Loc.File = Merged.strings().intern(Canon.File);
      Copy.Loc.Line = Canon.Line;
      Copy.Loc.Module = Merged.strings().intern(Canon.Module);
      // Addresses are run-specific (ASLR): identity is textual only.
      Copy.Loc.Address = 0;
      FrameMap[F] = Merged.internFrame(Copy);
      FrameMapped[F] = true;
      return FrameMap[F];
    };

    for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
      if ((Id & 8191) == 0)
        Cancel.checkpoint();
      const CCTNode &Node = P.node(Id);
      OutNode[Id] = ChildFor(OutNode[Node.Parent], MapFrame(Node.FrameRef));
    }
  }

  // Phase 3a (sequential): discover the (node, metric) key set in profile
  // then node order, assigning each key a stable dense row.
  for (size_t ProfIdx = 0; ProfIdx < Profiles.size(); ++ProfIdx) {
    const Profile &P = *Profiles[ProfIdx];
    const std::vector<MetricId> &MetricMap = Preps[ProfIdx].MetricMap;
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
      if ((Id & 8191) == 0)
        Cancel.checkpoint();
      for (const MetricValue &MV : P.node(Id).Metrics) {
        if (MV.Metric >= MetricMap.size() ||
            MetricMap[MV.Metric] == Profile::InvalidMetric)
          continue;
        uint64_t Key = AggregatedProfile::sampleKey(OutNodes[ProfIdx][Id],
                                                    MetricMap[MV.Metric]);
        if (Agg.KeyIndex.emplace(Key, static_cast<uint32_t>(
                                          Agg.KeyOrder.size()))
                .second)
          Agg.KeyOrder.push_back(Key);
      }
    }
  }

  // Phase 3b (parallel): accumulate samples into the dense matrix. Each
  // profile writes only its own column of every row, so profiles proceed
  // concurrently without synchronization, and the per-profile accumulation
  // order (node order) is the same in every mode.
  size_t N = Profiles.size();
  Agg.Matrix.assign(Agg.KeyOrder.size() * N, 0.0);
  ThreadPool::shared().parallelFor(Profiles.size(), [&](size_t ProfIdx) {
    const Profile &P = *Profiles[ProfIdx];
    const std::vector<MetricId> &MetricMap = Preps[ProfIdx].MetricMap;
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
      for (const MetricValue &MV : P.node(Id).Metrics) {
        if (MV.Metric >= MetricMap.size() ||
            MetricMap[MV.Metric] == Profile::InvalidMetric)
          continue;
        uint64_t Key = AggregatedProfile::sampleKey(OutNodes[ProfIdx][Id],
                                                    MetricMap[MV.Metric]);
        Agg.Matrix[size_t(Agg.KeyIndex.find(Key)->second) * N + ProfIdx] +=
            MV.Value;
      }
    }
  });

  // Phase 4 (parallel math, sequential attach): the per-row statistics are
  // pure functions of the row, so rows fan out across workers; attaching
  // them to the merged nodes follows KeyOrder so the metric lists come out
  // identical for every thread count (and deterministic across runs, which
  // the old hash-order iteration was not).
  struct RowStats {
    double Sum, Min, Max, Mean, Stddev;
  };
  std::vector<RowStats> Stats(Agg.KeyOrder.size());
  ThreadPool::shared().parallelFor(Agg.KeyOrder.size(), [&](size_t R) {
    const double *Row = Agg.Matrix.data() + R * N;
    double Sum = 0.0, Min = Row[0], Max = Row[0];
    for (size_t I = 0; I < N; ++I) {
      Sum += Row[I];
      Min = std::min(Min, Row[I]);
      Max = std::max(Max, Row[I]);
    }
    double Mean = Sum / static_cast<double>(N);
    double Var = 0.0;
    for (size_t I = 0; I < N; ++I)
      Var += (Row[I] - Mean) * (Row[I] - Mean);
    Stats[R] = {Sum, Min, Max, Mean, std::sqrt(Var / static_cast<double>(N))};
  });
  for (size_t R = 0; R < Agg.KeyOrder.size(); ++R) {
    uint64_t Key = Agg.KeyOrder[R];
    NodeId Node = static_cast<NodeId>(Key >> 16);
    MetricId Metric = static_cast<MetricId>(Key & 0xFFFF);
    const RowStats &S = Stats[R];
    if (Options.WithSum && S.Sum != 0.0)
      Merged.node(Node).addMetric(SumIds[Metric], S.Sum);
    if (Options.WithMin && S.Min != 0.0)
      Merged.node(Node).addMetric(MinIds[Metric], S.Min);
    if (Options.WithMax && S.Max != 0.0)
      Merged.node(Node).addMetric(MaxIds[Metric], S.Max);
    if (Options.WithMean && S.Mean != 0.0)
      Merged.node(Node).addMetric(MeanIds[Metric], S.Mean);
    if (Options.WithStddev && S.Stddev != 0.0)
      Merged.node(Node).addMetric(StddevIds[Metric], S.Stddev);
  }
  return Agg;
}

} // namespace ev
