//===- workload/LuleshWorkload.h - Fig. 6 / Table T3 HPC case study -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes the paper's HPC case study (§VII-C2): LULESH profiled with
/// HPCToolkit. The CPU-time profile reproduces the published findings:
///
///  - the bottom-up view ranks libc's `brk` (reached from malloc/free in
///    multiple call paths) as the top hot leaf — memory management costs
///    ~23% of total time, so replacing libc malloc with TCMalloc yields
///    the paper's ~30% whole-program speedup (1/1.3 ≈ 0.77);
///  - the top-down view highlights CalcVolumeForceForElems and its callee
///    CalcHourglassControlForElems; the locality fix (hoist + loop fusion)
///    removes enough of their time for an additional ~28% speedup.
///
/// Three profile variants regenerate Table T3's before/after comparison.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_WORKLOAD_LULESHWORKLOAD_H
#define EASYVIEW_WORKLOAD_LULESHWORKLOAD_H

#include "profile/Profile.h"

#include <cstdint>

namespace ev {
namespace workload {

enum class LuleshVariant : uint8_t {
  Original,       ///< libc malloc, unoptimized locality.
  WithTcmalloc,   ///< allocator replaced: brk paths nearly vanish.
  WithLocalityFix ///< TCMalloc + hoisted use/reuse and fused loops.
};

struct LuleshOptions {
  uint64_t Seed = 11;
  LuleshVariant Variant = LuleshVariant::Original;
  /// Sampling resolution: CPU-time quantum per recorded value (usec).
  double QuantumUsec = 500.0;
};

/// HPCToolkit-style CPUTIME profile of LULESH for the chosen variant.
Profile generateLuleshProfile(const LuleshOptions &Options = {});

/// Serializes the same workload as an HPCToolkit experiment.xml document,
/// exercising the converter path end to end (Appendix A1).
std::string generateLuleshExperimentXml(const LuleshOptions &Options = {});

/// Total modeled runtime (the CPUTIME metric total, usec). Speedup of a
/// variant = runtime(Original) / runtime(variant).
double luleshRuntimeUsec(const Profile &P);

} // namespace workload
} // namespace ev

#endif // EASYVIEW_WORKLOAD_LULESHWORKLOAD_H
