//===- support/FileIo.cpp - Whole-file read/write helpers -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/FileIo.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace ev {

bool isDirectory(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

Result<std::vector<std::string>> listDirectory(const std::string &Path) {
  DIR *Dir = ::opendir(Path.c_str());
  if (!Dir)
    return makeError("cannot open directory '" + Path + "'");
  std::vector<std::string> Out;
  while (struct dirent *Entry = ::readdir(Dir)) {
    std::string_view Name = Entry->d_name;
    if (Name == "." || Name == "..")
      continue;
    std::string Full = Path;
    if (!Full.empty() && Full.back() != '/')
      Full += '/';
    Full += Name;
    struct stat St;
    if (::stat(Full.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    Out.push_back(std::move(Full));
  }
  ::closedir(Dir);
  // readdir order is filesystem-dependent; sort so cohort ingestion (and
  // therefore every downstream finding) is deterministic.
  std::sort(Out.begin(), Out.end());
  return Out;
}

namespace {
ReadFaultHook &faultHook() {
  static ReadFaultHook Hook;
  return Hook;
}
std::function<void(uint64_t)> &sleepHook() {
  static std::function<void(uint64_t)> Hook;
  return Hook;
}
} // namespace

void setReadFaultHook(ReadFaultHook Hook) { faultHook() = std::move(Hook); }

void setRetrySleepHook(std::function<void(uint64_t)> Hook) {
  sleepHook() = std::move(Hook);
}

namespace {

Result<std::string> readFileAttempt(const std::string &Path,
                                    unsigned Attempt) {
  if (const ReadFaultHook &Hook = faultHook()) {
    std::string Message;
    if (Hook(Path, Attempt, Message))
      return makeError(Message.empty() ? "injected I/O fault" : Message);
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return makeError("cannot open '" + Path + "' for reading");
  std::string Out;
  char Buffer[1 << 16];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Out.append(Buffer, N);
  bool Bad = std::ferror(F);
  std::fclose(F);
  if (Bad)
    return makeError("I/O error while reading '" + Path + "'");
  return Out;
}

void backoffSleep(uint64_t Ms) {
  if (const std::function<void(uint64_t)> &Hook = sleepHook()) {
    Hook(Ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

} // namespace

Result<std::string> readFile(const std::string &Path) {
  return readFileAttempt(Path, 0);
}

Result<std::string> readFileWithRetry(const std::string &Path,
                                      const RetryPolicy &Policy) {
  unsigned Attempts = std::max(1u, Policy.MaxAttempts);
  uint64_t Backoff = Policy.InitialBackoffMs;
  Result<std::string> Last = makeError("no read attempted");
  for (unsigned I = 0; I < Attempts; ++I) {
    if (I > 0) {
      backoffSleep(Backoff);
      Backoff = std::min(Backoff * 2, Policy.MaxBackoffMs);
    }
    Last = readFileAttempt(Path, I);
    if (Last)
      return Last;
  }
  return makeError(Last.error() + " (after " + std::to_string(Attempts) +
                   " attempts)");
}

namespace {

/// open(2) restarted on EINTR (signals during profile spills/faults are
/// routine under the net server's SIGINT drain path).
int openRetryEintr(const char *Path, int Flags, mode_t Mode = 0) {
  int Fd;
  do {
    Fd = ::open(Path, Flags, Mode);
  } while (Fd < 0 && errno == EINTR);
  return Fd;
}

} // namespace

MappedFile::MappedFile(MappedFile &&Other) noexcept
    : Base(Other.Base), Size(Other.Size), Valid(Other.Valid) {
  Other.Base = nullptr;
  Other.Size = 0;
  Other.Valid = false;
}

MappedFile &MappedFile::operator=(MappedFile &&Other) noexcept {
  if (this != &Other) {
    this->~MappedFile();
    new (this) MappedFile(std::move(Other));
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (Base != nullptr && Size > 0)
    ::munmap(Base, Size);
}

Result<MappedFile> MappedFile::map(const std::string &Path,
                                   size_t ExpectedBytes) {
  int Fd = openRetryEintr(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return makeError("cannot open '" + Path +
                     "' for mapping: " + std::strerror(errno));
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    int E = errno;
    ::close(Fd);
    return makeError("cannot stat '" + Path + "': " + std::strerror(E));
  }
  if (!S_ISREG(St.st_mode)) {
    ::close(Fd);
    return makeError("'" + Path + "' is not a regular file");
  }
  size_t Bytes = static_cast<size_t>(St.st_size);
  if (ExpectedBytes != 0 && Bytes != ExpectedBytes) {
    ::close(Fd);
    return makeError("'" + Path + "' is " + std::to_string(Bytes) +
                     " bytes, expected " + std::to_string(ExpectedBytes) +
                     " (truncated or corrupt)");
  }
  MappedFile Out;
  Out.Valid = true;
  Out.Size = Bytes;
  if (Bytes == 0) {
    // mmap(len=0) is EINVAL; a valid empty mapping needs no pages.
    ::close(Fd);
    return Out;
  }
  void *Mapped = ::mmap(nullptr, Bytes, PROT_READ, MAP_PRIVATE, Fd, 0);
  ::close(Fd); // The mapping outlives the descriptor.
  if (Mapped == MAP_FAILED)
    return makeError("cannot map '" + Path + "': " + std::strerror(errno));
  Out.Base = Mapped;
  return Out;
}

Result<bool> preallocateFile(const std::string &Path, size_t Bytes) {
  int Fd = openRetryEintr(Path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (Fd < 0)
    return makeError("cannot open '" + Path +
                     "' for preallocation: " + std::strerror(errno));
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    int E = errno;
    ::close(Fd);
    return makeError("cannot stat '" + Path + "': " + std::strerror(E));
  }
  if (static_cast<size_t>(St.st_size) >= Bytes) {
    ::close(Fd);
    return true; // Never shrink: a concurrent reader may be mapping it.
  }
#if defined(__linux__)
  int Err;
  do {
    Err = ::posix_fallocate(Fd, 0, static_cast<off_t>(Bytes));
  } while (Err == EINTR);
  // Filesystems without extent support (EOPNOTSUPP) fall back to
  // ftruncate below rather than failing the spill.
  if (Err == 0) {
    ::close(Fd);
    return true;
  }
#endif
  int Rc;
  do {
    Rc = ::ftruncate(Fd, static_cast<off_t>(Bytes));
  } while (Rc != 0 && errno == EINTR);
  int E = errno;
  ::close(Fd);
  if (Rc != 0)
    return makeError("cannot preallocate '" + Path + "' to " +
                     std::to_string(Bytes) + " bytes: " + std::strerror(E));
  return true;
}

Result<bool> writeFile(const std::string &Path, std::string_view Contents) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return makeError("cannot open '" + Path + "' for writing");
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), F);
  bool Bad = Written != Contents.size() || std::fclose(F) != 0;
  if (Bad)
    return makeError("I/O error while writing '" + Path + "'");
  return true;
}

} // namespace ev
