//===- support/FileIo.h - Whole-file read/write helpers -------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary-safe whole-file helpers used by the CLI tool and examples.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_FILEIO_H
#define EASYVIEW_SUPPORT_FILEIO_H

#include "support/Result.h"

#include <string>
#include <string_view>

namespace ev {

/// Reads the whole file at \p Path.
Result<std::string> readFile(const std::string &Path);

/// Writes \p Contents to \p Path, replacing any existing file.
Result<bool> writeFile(const std::string &Path, std::string_view Contents);

} // namespace ev

#endif // EASYVIEW_SUPPORT_FILEIO_H
