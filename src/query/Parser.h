//===- query/Parser.h - EVQL parser ----------------------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent / precedence-climbing parser for EVQL.
///
/// Grammar:
/// \code
///   program   := statement*
///   statement := 'let' IDENT '=' expr ';'
///              | 'derive' IDENT '=' expr ';'
///              | 'prune' 'when' expr ';'
///              | 'keep' 'when' expr ';'
///              | 'print' expr ';'
///   expr      := ternary
///   ternary   := or ('?' expr ':' expr)?
///   or        := and ('||' and)*
///   and       := equality ('&&' equality)*
///   equality  := relational (('=='|'!=') relational)*
///   relational:= additive (('<'|'<='|'>'|'>=') additive)*
///   additive  := multiplicative (('+'|'-') multiplicative)*
///   multiplicative := unary (('*'|'/'|'%') unary)*
///   unary     := ('-'|'!') unary | primary
///   primary   := NUMBER | STRING | 'true' | 'false'
///              | IDENT ('(' (expr (',' expr)*)? ')')?
///              | '(' expr ')'
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_QUERY_PARSER_H
#define EASYVIEW_QUERY_PARSER_H

#include "query/Ast.h"
#include "support/Result.h"

#include <string_view>

namespace ev {
namespace evql {

/// Parses EVQL source into a Program. Errors carry line numbers.
Result<Program> parseProgram(std::string_view Source);

/// Parses a single expression (used by the derived-metric quick API).
Result<ExprPtr> parseExpression(std::string_view Source);

} // namespace evql
} // namespace ev

#endif // EASYVIEW_QUERY_PARSER_H
