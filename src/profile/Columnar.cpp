//===- profile/Columnar.cpp - SoA column segments for profiles ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "profile/Columnar.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ev {

namespace {

/// The spill-file header occupies exactly one page so the column block
/// that follows it stays page-aligned inside the mapping.
constexpr size_t HeaderBytes = 4096;
/// Columns are 64-byte aligned within the block (cache line; also covers
/// the 8-byte requirement of the double columns).
constexpr uint64_t ColumnAlign = 64;

uint64_t roundUp(uint64_t V, uint64_t A) { return (V + A - 1) / A * A; }

/// On-disk header. Fixed-width fields only; memcpy-ed in and out so the
/// struct's own alignment never matters.
struct DiskHeader {
  char Magic[8];
  uint64_t Nodes, Frames, Strings, Metrics, Groups;
  uint64_t ChildTotal, ValueTotal, GroupCtxTotal;
  uint64_t BlockBytes;
  uint64_t LabelGlobal;
};
static_assert(sizeof(DiskHeader) <= HeaderBytes, "header must fit its page");

/// Byte offsets of every column inside the block. A pure function of the
/// counts, so the spill format never stores offsets that could disagree
/// with the data.
struct Layout {
  uint64_t Parents, FrameRefs, ChildOff, ChildIds, MetOff, MetIds, MetVals;
  uint64_t FrKinds, FrNames, FrFiles, FrLines, FrModules, FrAddrs;
  uint64_t StrGlobal, MetNames, MetUnits, MetAggs;
  uint64_t GrKinds, GrMetrics, GrValues, GrCtxOff, GrCtxIds;
  uint64_t Total;
};

Layout computeLayout(const ColumnarProfile::Header &H) {
  Layout L;
  uint64_t Cursor = 0;
  auto Place = [&Cursor](uint64_t Count, uint64_t Width) {
    uint64_t Offset = roundUp(Cursor, ColumnAlign);
    Cursor = Offset + Count * Width;
    return Offset;
  };
  L.Parents = Place(H.Nodes, 4);
  L.FrameRefs = Place(H.Nodes, 4);
  L.ChildOff = Place(H.Nodes + 1, 4);
  L.ChildIds = Place(H.ChildTotal, 4);
  L.MetOff = Place(H.Nodes + 1, 4);
  L.MetIds = Place(H.ValueTotal, 4);
  L.MetVals = Place(H.ValueTotal, 8);
  L.FrKinds = Place(H.Frames, 1);
  L.FrNames = Place(H.Frames, 4);
  L.FrFiles = Place(H.Frames, 4);
  L.FrLines = Place(H.Frames, 4);
  L.FrModules = Place(H.Frames, 4);
  L.FrAddrs = Place(H.Frames, 8);
  L.StrGlobal = Place(H.Strings, 4);
  L.MetNames = Place(H.Metrics, 4);
  L.MetUnits = Place(H.Metrics, 4);
  L.MetAggs = Place(H.Metrics, 1);
  L.GrKinds = Place(H.Groups, 4);
  L.GrMetrics = Place(H.Groups, 4);
  L.GrValues = Place(H.Groups, 8);
  L.GrCtxOff = Place(H.Groups + 1, 4);
  L.GrCtxIds = Place(H.GroupCtxTotal, 4);
  L.Total = Cursor;
  return L;
}

template <typename T> T *columnAt(char *Block, uint64_t Offset) {
  return reinterpret_cast<T *>(Block + Offset);
}

void freeArena(char *P) { std::free(P); }

} // namespace

//===----------------------------------------------------------------------===//
// build
//===----------------------------------------------------------------------===//

ColumnarProfile ColumnarProfile::build(const Profile &P,
                                       SharedStringTable &Shared) {
  ColumnarProfile C;
  Header &H = C.Counts;
  H.Nodes = P.nodeCount();
  H.Frames = P.frames().size();
  H.Strings = P.strings().size();
  H.Metrics = P.metrics().size();
  H.Groups = P.groups().size();
  for (const CCTNode &N : P.nodes()) {
    H.ChildTotal += N.Children.size();
    H.ValueTotal += N.Metrics.size();
  }
  for (const ContextGroup &G : P.groups())
    H.GroupCtxTotal += G.Contexts.size();
  assert(H.Nodes >= 1 && H.Frames >= 1 && H.Strings >= 2 &&
         "Profile invariants: root node/frame and \"\"/\"ROOT\" strings");
  assert(H.ChildTotal <= UINT32_MAX && H.ValueTotal <= UINT32_MAX &&
         H.GroupCtxTotal <= UINT32_MAX && "CSR offsets are 32-bit");
  H.LabelGlobal = Shared.intern(P.name());

  Layout L = computeLayout(H);
  H.BlockBytes = roundUp(std::max<uint64_t>(L.Total, 1), HeaderBytes);
  char *Buf =
      static_cast<char *>(std::aligned_alloc(HeaderBytes, H.BlockBytes));
  // Zero the whole block: inter-column padding must be deterministic so a
  // spilled segment's bytes depend only on the profile's contents.
  std::memset(Buf, 0, H.BlockBytes);
  C.Arena = std::unique_ptr<char, void (*)(char *)>(Buf, &freeArena);
  C.Block = Buf;
  C.Shared = &Shared;

  uint32_t *Parents = columnAt<uint32_t>(Buf, L.Parents);
  uint32_t *FrameRefs = columnAt<uint32_t>(Buf, L.FrameRefs);
  uint32_t *ChildOff = columnAt<uint32_t>(Buf, L.ChildOff);
  uint32_t *ChildIds = columnAt<uint32_t>(Buf, L.ChildIds);
  uint32_t *MetOff = columnAt<uint32_t>(Buf, L.MetOff);
  uint32_t *MetIds = columnAt<uint32_t>(Buf, L.MetIds);
  double *MetVals = columnAt<double>(Buf, L.MetVals);
  uint32_t ChildCursor = 0, ValueCursor = 0;
  for (size_t I = 0; I < H.Nodes; ++I) {
    const CCTNode &N = P.nodes()[I];
    Parents[I] = N.Parent;
    FrameRefs[I] = N.FrameRef;
    ChildOff[I] = ChildCursor;
    for (NodeId Child : N.Children)
      ChildIds[ChildCursor++] = Child;
    MetOff[I] = ValueCursor;
    for (const MetricValue &MV : N.Metrics) {
      MetIds[ValueCursor] = MV.Metric;
      MetVals[ValueCursor] = MV.Value;
      ++ValueCursor;
    }
  }
  ChildOff[H.Nodes] = ChildCursor;
  MetOff[H.Nodes] = ValueCursor;

  uint8_t *FrKinds = columnAt<uint8_t>(Buf, L.FrKinds);
  uint32_t *FrNames = columnAt<uint32_t>(Buf, L.FrNames);
  uint32_t *FrFiles = columnAt<uint32_t>(Buf, L.FrFiles);
  uint32_t *FrLines = columnAt<uint32_t>(Buf, L.FrLines);
  uint32_t *FrModules = columnAt<uint32_t>(Buf, L.FrModules);
  uint64_t *FrAddrs = columnAt<uint64_t>(Buf, L.FrAddrs);
  for (size_t I = 0; I < H.Frames; ++I) {
    const Frame &F = P.frames()[I];
    FrKinds[I] = static_cast<uint8_t>(F.Kind);
    FrNames[I] = F.Name;
    FrFiles[I] = F.Loc.File;
    FrLines[I] = F.Loc.Line;
    FrModules[I] = F.Loc.Module;
    FrAddrs[I] = F.Loc.Address;
  }

  // Cross-profile dedup happens here: every local string maps onto the
  // store-wide interner, which only grows when a text is globally new.
  uint32_t *StrGlobal = columnAt<uint32_t>(Buf, L.StrGlobal);
  for (size_t I = 0; I < H.Strings; ++I)
    StrGlobal[I] = Shared.intern(P.text(static_cast<StringId>(I)));

  uint32_t *MetNames = columnAt<uint32_t>(Buf, L.MetNames);
  uint32_t *MetUnits = columnAt<uint32_t>(Buf, L.MetUnits);
  uint8_t *MetAggs = columnAt<uint8_t>(Buf, L.MetAggs);
  for (size_t I = 0; I < H.Metrics; ++I) {
    const MetricDescriptor &MD = P.metrics()[I];
    MetNames[I] = Shared.intern(MD.Name);
    MetUnits[I] = Shared.intern(MD.Unit);
    MetAggs[I] = static_cast<uint8_t>(MD.Aggregation);
  }

  uint32_t *GrKinds = columnAt<uint32_t>(Buf, L.GrKinds);
  uint32_t *GrMetrics = columnAt<uint32_t>(Buf, L.GrMetrics);
  double *GrValues = columnAt<double>(Buf, L.GrValues);
  uint32_t *GrCtxOff = columnAt<uint32_t>(Buf, L.GrCtxOff);
  uint32_t *GrCtxIds = columnAt<uint32_t>(Buf, L.GrCtxIds);
  uint32_t CtxCursor = 0;
  for (size_t I = 0; I < H.Groups; ++I) {
    const ContextGroup &G = P.groups()[I];
    GrKinds[I] = G.Kind;
    GrMetrics[I] = G.Metric;
    GrValues[I] = G.Value;
    GrCtxOff[I] = CtxCursor;
    for (NodeId Ctx : G.Contexts)
      GrCtxIds[CtxCursor++] = Ctx;
  }
  GrCtxOff[H.Groups] = CtxCursor;
  return C;
}

//===----------------------------------------------------------------------===//
// spillTo / mapFrom
//===----------------------------------------------------------------------===//

Result<uint64_t> ColumnarProfile::spillTo(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return makeError("cannot open '" + Path + "' for spilling");
  char Page[HeaderBytes] = {};
  DiskHeader D = {};
  std::memcpy(D.Magic, EvColMagic.data(), EvColMagic.size());
  D.Nodes = Counts.Nodes;
  D.Frames = Counts.Frames;
  D.Strings = Counts.Strings;
  D.Metrics = Counts.Metrics;
  D.Groups = Counts.Groups;
  D.ChildTotal = Counts.ChildTotal;
  D.ValueTotal = Counts.ValueTotal;
  D.GroupCtxTotal = Counts.GroupCtxTotal;
  D.BlockBytes = Counts.BlockBytes;
  D.LabelGlobal = Counts.LabelGlobal;
  std::memcpy(Page, &D, sizeof(D));
  bool Ok = std::fwrite(Page, 1, HeaderBytes, F) == HeaderBytes &&
            std::fwrite(Block, 1, Counts.BlockBytes, F) == Counts.BlockBytes;
  Ok = (std::fclose(F) == 0) && Ok;
  if (!Ok)
    return makeError("I/O error while spilling '" + Path + "'");
  return static_cast<uint64_t>(HeaderBytes) + Counts.BlockBytes;
}

namespace {

/// Full reference validation of a freshly mapped block: every id a later
/// reader would follow is range-checked once here, so analyses over the
/// columns never need bounds checks of their own.
Result<bool> validateMapped(const ColumnarProfile &C,
                            const SharedStringTable &Shared) {
  auto Fail = [](const std::string &What) -> Result<bool> {
    return makeError("corrupt column segment: " + What);
  };
  size_t Nodes = C.nodeCount(), Frames = C.frameCount();
  size_t Strings = C.stringCount(), Metrics = C.metricCount();
  size_t Groups = C.groupCount(), Global = Shared.size();
  if (Nodes < 1 || Frames < 1 || Strings < 2)
    return Fail("missing root tables");

  auto CheckCsr = [&](std::span<const uint32_t> Off, uint64_t Total,
                      const char *Name) -> bool {
    if (Off.front() != 0 || Off.back() != Total)
      return false;
    for (size_t I = 1; I < Off.size(); ++I)
      if (Off[I] < Off[I - 1])
        return false;
    (void)Name;
    return true;
  };
  if (!CheckCsr(C.childOffsets(), C.childIds().size(), "children"))
    return Fail("children offsets not monotonic");
  if (!CheckCsr(C.metricOffsets(), C.metricIds().size(), "metrics"))
    return Fail("metric offsets not monotonic");
  if (!CheckCsr(C.groupCtxOffsets(), C.groupCtxIds().size(), "groups"))
    return Fail("group context offsets not monotonic");

  std::span<const uint32_t> Parents = C.parents();
  if (Parents[0] != InvalidNode)
    return Fail("node 0 is not the root");
  for (size_t I = 1; I < Nodes; ++I)
    if (Parents[I] >= I)
      return Fail("parent id out of order at node " + std::to_string(I));
  for (uint32_t F : C.frameRefs())
    if (F >= Frames)
      return Fail("frame reference out of range");
  for (uint32_t Child : C.childIds())
    if (Child == 0 || Child >= Nodes)
      return Fail("child id out of range");
  for (uint32_t M : C.metricIds())
    if (M >= Metrics)
      return Fail("metric id out of range");

  std::span<const uint8_t> Kinds = C.frameKinds();
  std::span<const uint32_t> Names = C.frameNames();
  for (size_t I = 0; I < Frames; ++I) {
    if (Kinds[I] > static_cast<uint8_t>(FrameKind::Thread))
      return Fail("unknown frame kind");
    if (Names[I] >= Strings || C.frameFiles()[I] >= Strings ||
        C.frameModules()[I] >= Strings)
      return Fail("frame string id out of range");
  }
  if (Kinds[0] != static_cast<uint8_t>(FrameKind::Root) || Names[0] != 1)
    return Fail("frame 0 is not the canonical root frame");

  std::span<const uint32_t> StrGlobal = C.stringGlobal();
  for (uint32_t G : StrGlobal)
    if (G >= Global)
      return Fail("shared string id out of range");
  // materialize() reconstructs the local table assuming the two canonical
  // entries every Profile starts with.
  if (Shared.text(StrGlobal[0]) != "" || Shared.text(StrGlobal[1]) != "ROOT")
    return Fail("canonical strings missing");
  if (C.labelId() >= Global)
    return Fail("label id out of range");

  for (size_t I = 0; I < Metrics; ++I) {
    if (C.metricNameIds()[I] >= Global || C.metricUnitIds()[I] >= Global)
      return Fail("metric schema string out of range");
    if (C.metricAggs()[I] > static_cast<uint8_t>(MetricAggregation::Last))
      return Fail("unknown metric aggregation");
  }
  for (size_t I = 0; I < Groups; ++I) {
    if (C.groupKinds()[I] >= Strings)
      return Fail("group kind string out of range");
    if (C.groupMetrics()[I] >= Metrics)
      return Fail("group metric out of range");
  }
  for (uint32_t Ctx : C.groupCtxIds())
    if (Ctx >= Nodes)
      return Fail("group context out of range");
  return true;
}

} // namespace

Result<ColumnarProfile> ColumnarProfile::mapFrom(const std::string &Path,
                                                 const SharedStringTable &Shared) {
  Result<MappedFile> Map = MappedFile::map(Path);
  if (!Map)
    return makeError(Map.error());
  if (Map->size() < HeaderBytes)
    return makeError("'" + Path + "' is too small to hold a segment header");
  DiskHeader D;
  std::memcpy(&D, Map->bytes().data(), sizeof(D));
  if (std::memcmp(D.Magic, EvColMagic.data(), EvColMagic.size()) != 0)
    return makeError("'" + Path + "' is not a column segment (bad magic)");

  ColumnarProfile C;
  Header &H = C.Counts;
  H.Nodes = D.Nodes;
  H.Frames = D.Frames;
  H.Strings = D.Strings;
  H.Metrics = D.Metrics;
  H.Groups = D.Groups;
  H.ChildTotal = D.ChildTotal;
  H.ValueTotal = D.ValueTotal;
  H.GroupCtxTotal = D.GroupCtxTotal;
  H.BlockBytes = D.BlockBytes;
  H.LabelGlobal = static_cast<uint32_t>(D.LabelGlobal);
  if (H.Nodes > UINT32_MAX || H.Frames > UINT32_MAX ||
      H.Strings > UINT32_MAX || H.Metrics > UINT32_MAX ||
      H.Groups > UINT32_MAX || H.ChildTotal > UINT32_MAX ||
      H.ValueTotal > UINT32_MAX || H.GroupCtxTotal > UINT32_MAX ||
      D.LabelGlobal > UINT32_MAX)
    return makeError("'" + Path + "' header counts exceed 32-bit ids");
  Layout L = computeLayout(H);
  if (H.BlockBytes != roundUp(std::max<uint64_t>(L.Total, 1), HeaderBytes))
    return makeError("'" + Path + "' block size disagrees with its counts");
  if (Map->size() != HeaderBytes + H.BlockBytes)
    return makeError("'" + Path + "' is " + std::to_string(Map->size()) +
                     " bytes, expected " +
                     std::to_string(HeaderBytes + H.BlockBytes) +
                     " (truncated or corrupt)");
  C.Mapping = std::move(*Map);
  C.Block = C.Mapping.bytes().data() + HeaderBytes;
  C.Shared = &Shared;
  if (Result<bool> Valid = validateMapped(C, Shared); !Valid)
    return makeError("'" + Path + "': " + Valid.error());
  return C;
}

//===----------------------------------------------------------------------===//
// materialize
//===----------------------------------------------------------------------===//

Profile ColumnarProfile::materialize() const {
  Profile Out;
  // Strings: a fresh Profile already holds ""(0) and "ROOT"(1); interning
  // the remaining texts in local-id order reproduces identical ids because
  // the source table was itself duplicate-free.
  std::span<const uint32_t> StrGlobal = stringGlobal();
  Out.strings().reserve(Counts.Strings);
  for (size_t I = 2; I < Counts.Strings; ++I)
    Out.strings().intern(Shared->text(StrGlobal[I]));
  Out.setName(std::string(Shared->text(Counts.LabelGlobal)));

  for (size_t I = 0; I < Counts.Metrics; ++I)
    Out.addMetric(Shared->text(metricNameIds()[I]),
                  Shared->text(metricUnitIds()[I]),
                  static_cast<MetricAggregation>(metricAggs()[I]));

  // Frames: frame 0 is the canonical root the constructor made; the rest
  // re-intern in order (the source table is deduplicated, so each intern
  // appends and ids line up).
  Out.reserveTables(Counts.Nodes, Counts.Frames);
  for (size_t I = 1; I < Counts.Frames; ++I) {
    Frame F;
    F.Kind = static_cast<FrameKind>(frameKinds()[I]);
    F.Name = frameNames()[I];
    F.Loc.File = frameFiles()[I];
    F.Loc.Line = frameLines()[I];
    F.Loc.Module = frameModules()[I];
    F.Loc.Address = frameAddrs()[I];
    FrameId Id = Out.internFrame(F);
    (void)Id;
    assert(Id == I && "frame table replay must preserve ids");
  }

  // Nodes: children come from the CSR verbatim (not re-derived from
  // parents) so any insertion-order the transforms produced survives.
  std::span<const uint32_t> Parents = parents();
  std::span<const uint32_t> FrameRefs = frameRefs();
  std::span<const uint32_t> ChildOff = childOffsets();
  std::span<const uint32_t> Children = childIds();
  std::span<const uint32_t> MetOff = metricOffsets();
  std::span<const uint32_t> MetIds = metricIds();
  std::span<const double> MetVals = metricValues();
  std::vector<CCTNode> &NodeTable = Out.nodes();
  NodeTable.resize(Counts.Nodes);
  for (size_t I = 0; I < Counts.Nodes; ++I) {
    CCTNode &N = NodeTable[I];
    N.Parent = Parents[I];
    N.FrameRef = FrameRefs[I];
    N.Children.assign(Children.begin() + ChildOff[I],
                      Children.begin() + ChildOff[I + 1]);
    N.Metrics.resize(MetOff[I + 1] - MetOff[I]);
    for (uint32_t V = MetOff[I], O = 0; V < MetOff[I + 1]; ++V, ++O)
      N.Metrics[O] = MetricValue{MetIds[V], MetVals[V]};
  }

  std::span<const uint32_t> CtxOff = groupCtxOffsets();
  std::span<const uint32_t> CtxIds = groupCtxIds();
  for (size_t I = 0; I < Counts.Groups; ++I) {
    ContextGroup G;
    G.Kind = groupKinds()[I];
    G.Metric = groupMetrics()[I];
    G.Value = groupValues()[I];
    G.Contexts.assign(CtxIds.begin() + CtxOff[I],
                      CtxIds.begin() + CtxOff[I + 1]);
    Out.addGroup(std::move(G));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Column accessors
//===----------------------------------------------------------------------===//

#define EV_COLUMN(NAME, FIELD, TYPE, COUNT)                                    \
  std::span<const TYPE> ColumnarProfile::NAME() const {                        \
    Layout L = computeLayout(Counts);                                          \
    return {reinterpret_cast<const TYPE *>(column(L.FIELD)),                   \
            static_cast<size_t>(COUNT)};                                       \
  }

EV_COLUMN(parents, Parents, uint32_t, Counts.Nodes)
EV_COLUMN(frameRefs, FrameRefs, uint32_t, Counts.Nodes)
EV_COLUMN(childOffsets, ChildOff, uint32_t, Counts.Nodes + 1)
EV_COLUMN(childIds, ChildIds, uint32_t, Counts.ChildTotal)
EV_COLUMN(metricOffsets, MetOff, uint32_t, Counts.Nodes + 1)
EV_COLUMN(metricIds, MetIds, uint32_t, Counts.ValueTotal)
EV_COLUMN(metricValues, MetVals, double, Counts.ValueTotal)
EV_COLUMN(frameKinds, FrKinds, uint8_t, Counts.Frames)
EV_COLUMN(frameNames, FrNames, uint32_t, Counts.Frames)
EV_COLUMN(frameFiles, FrFiles, uint32_t, Counts.Frames)
EV_COLUMN(frameLines, FrLines, uint32_t, Counts.Frames)
EV_COLUMN(frameModules, FrModules, uint32_t, Counts.Frames)
EV_COLUMN(frameAddrs, FrAddrs, uint64_t, Counts.Frames)
EV_COLUMN(stringGlobal, StrGlobal, uint32_t, Counts.Strings)
EV_COLUMN(metricNameIds, MetNames, uint32_t, Counts.Metrics)
EV_COLUMN(metricUnitIds, MetUnits, uint32_t, Counts.Metrics)
EV_COLUMN(metricAggs, MetAggs, uint8_t, Counts.Metrics)
EV_COLUMN(groupKinds, GrKinds, uint32_t, Counts.Groups)
EV_COLUMN(groupMetrics, GrMetrics, uint32_t, Counts.Groups)
EV_COLUMN(groupValues, GrValues, double, Counts.Groups)
EV_COLUMN(groupCtxOffsets, GrCtxOff, uint32_t, Counts.Groups + 1)
EV_COLUMN(groupCtxIds, GrCtxIds, uint32_t, Counts.GroupCtxTotal)

#undef EV_COLUMN

std::vector<uint32_t> depthsFromParents(std::span<const uint32_t> Parents) {
  std::vector<uint32_t> Depths(Parents.size(), 0);
  for (size_t Id = 1; Id < Parents.size(); ++Id) {
    uint32_t Parent = Parents[Id];
    // A sentinel or forward parent stays at depth 0 rather than reading
    // past the prefix already computed (the pre-fix interpreter indexed
    // Depths[InvalidNode] here on crafted trees).
    if (Parent < Id)
      Depths[Id] = Depths[Parent] + 1;
  }
  return Depths;
}

} // namespace ev
