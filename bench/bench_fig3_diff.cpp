//===- bench/bench_fig3_diff.cpp - Paper Fig. 3 ---------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 3: the differential top-down flame graph of Spark-Bench
/// run with the RDD APIs (P1) versus the SQL Dataset APIs (P2). Prints the
/// tag summary and the top differential rows; times the diff operation.
/// Expected SHAPE: P2 faster overall; SQL engine contexts [A], RDD
/// iterator/shuffle contexts [D]/[-].
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "analysis/Diff.h"
#include "analysis/MetricEngine.h"
#include "render/DiffRenderer.h"
#include "workload/SparkWorkload.h"

#include <benchmark/benchmark.h>

using namespace ev;

namespace {

void diffSparkProfiles(benchmark::State &State) {
  workload::SparkWorkload W = workload::generateSparkWorkload();
  for (auto _ : State) {
    DiffResult D = diffProfiles(W.Rdd, W.Sql, 0);
    benchmark::DoNotOptimize(D.Tags.data());
  }
}
BENCHMARK(diffSparkProfiles)->Unit(benchmark::kMicrosecond);

void renderDifferentialView(benchmark::State &State) {
  workload::SparkWorkload W = workload::generateSparkWorkload();
  DiffResult D = diffProfiles(W.Rdd, W.Sql, 0);
  for (auto _ : State) {
    std::string Text = renderDiffText(D);
    benchmark::DoNotOptimize(Text.data());
  }
}
BENCHMARK(renderDifferentialView)->Unit(benchmark::kMicrosecond);

void printFigure() {
  workload::SparkWorkload W = workload::generateSparkWorkload();
  double RddSec = metricTotal(W.Rdd, 0) / 1e9;
  double SqlSec = metricTotal(W.Sql, 0) / 1e9;
  bench::row("Fig3: Spark RDD (P1) vs SQL Dataset (P2) differential view");
  bench::row("P1 cpu = %.1f s, P2 cpu = %.1f s, speedup = %.2fx", RddSec,
             SqlSec, RddSec / SqlSec);

  DiffResult D = diffProfiles(W.Rdd, W.Sql, 0);
  size_t Counts[5] = {0, 0, 0, 0, 0};
  for (DiffTag Tag : D.Tags)
    ++Counts[static_cast<size_t>(Tag)];
  bench::row("tags: [A]=%zu [D]=%zu [+]=%zu [-]=%zu common=%zu",
             Counts[1], Counts[2], Counts[3], Counts[4], Counts[0]);

  DiffRenderOptions Opt;
  Opt.MaxDepth = 12;
  Opt.MinFraction = 0.02;
  std::string Text = renderDiffText(D, Opt);
  std::fputs(Text.c_str(), stdout);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printFigure();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
