//===- query/Interpreter.h - EVQL evaluation over profiles ----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tree-walking interpreter for EVQL programs. A program transforms a
/// profile: 'derive' adds metric columns computed per node (the paper's
/// "callbacks at metric computation", e.g. cycles per instruction or
/// division-based differential metrics), while 'prune'/'keep' elide nodes
/// (the paper's "callbacks at node visit"). 'let' binds reusable values and
/// 'print' collects report lines.
///
/// Node-context builtins: metric(name), inclusive(name), name(), file(),
/// module(), line(), depth(), kind(), nchildren(), parentname(),
/// isleaf(), hasancestor(name), share(name).
/// Profile-level builtins: total(name), nodecount().
/// Pure builtins: min, max, abs, log, sqrt, floor, ceil, ratio(a, b),
/// contains(s, sub), startswith(s, p), endswith(s, p), str(x), fmt(x, d).
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_QUERY_INTERPRETER_H
#define EASYVIEW_QUERY_INTERPRETER_H

#include "profile/Profile.h"
#include "query/Ast.h"
#include "support/Limits.h"
#include "support/Result.h"

#include <string>
#include <string_view>
#include <vector>

namespace ev {
namespace evql {

/// Result of running a program against a profile.
struct QueryOutput {
  Profile Result;                        ///< The transformed profile.
  std::vector<std::string> Printed;      ///< Lines from 'print'.
  std::vector<std::string> DerivedMetrics; ///< Names of added columns.
};

/// Renders a number the way 'print' and str() do: values that are exactly
/// representable as int64 print without a fractional part, everything else
/// (including values beyond int64 range, infinities, and NaN — where the
/// old int64 cast was undefined behavior) through formatDouble(V, 6).
/// The bytecode VM (query/Vm.h) shares this helper so both engines print
/// byte-identical output.
std::string renderNumber(double Value);

/// Renders fmt(Value, Digits): formatDouble with the digit count clamped
/// into a range where the double->int conversion is defined. Shared by the
/// interpreter and the VM.
std::string renderFormatted(double Value, double Digits);

/// Parses and runs \p Source against \p P. The input profile is not
/// modified; the output holds a transformed copy. Parse and runtime errors
/// (unknown identifier, type mismatch, unknown metric) carry line numbers.
/// Expression recursion is bounded by \p Limits.MaxExprDepth: nesting past
/// the budget is a clean diagnostic, never a stack overflow.
Result<QueryOutput> runProgram(const Profile &P, std::string_view Source,
                               const AnalysisLimits &Limits);
Result<QueryOutput> runProgram(const Profile &P, std::string_view Source);

/// Runs an already-parsed program.
Result<QueryOutput> runProgram(const Profile &P, const Program &Prog,
                               const AnalysisLimits &Limits);
Result<QueryOutput> runProgram(const Profile &P, const Program &Prog);

/// One-shot helper: adds metric \p Name computed by \p Formula to a copy
/// of \p P. Equivalent to running "derive Name = Formula;".
Result<Profile> deriveMetric(const Profile &P, std::string_view Name,
                             std::string_view Formula);

} // namespace evql
} // namespace ev

#endif // EASYVIEW_QUERY_INTERPRETER_H
