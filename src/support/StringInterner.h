//===- support/StringInterner.h - String table with stable ids ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deduplicating string table. Every distinct string receives a dense
/// uint32_t id; id 0 is always the empty string, matching the pprof
/// string_table convention. Frames, files, and load modules in the profile
/// model store ids instead of strings, which is one of the memory
/// optimizations the paper credits for EasyView's low response time
/// (ablated in bench/bench_ablation.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_STRINGINTERNER_H
#define EASYVIEW_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ev {

/// Dense id for an interned string. Id 0 is the empty string.
using StringId = uint32_t;

class StringInterner {
public:
  StringInterner() { (void)intern(""); }

  /// Interns \p Text, returning its stable id.
  StringId intern(std::string_view Text);

  /// \returns the text for \p Id. Asserts on out-of-range ids.
  std::string_view text(StringId Id) const;

  /// \returns the number of distinct strings (including the empty string).
  size_t size() const { return Table.size(); }

  /// Total bytes of string payload held (used by size accounting).
  size_t payloadBytes() const { return Payload; }

private:
  // Deque: element addresses are stable across growth, so the index may key
  // on views into the stored strings.
  std::deque<std::string> Table;
  std::unordered_map<std::string_view, StringId> Index;
  size_t Payload = 0;
};

} // namespace ev

#endif // EASYVIEW_SUPPORT_STRINGINTERNER_H
