//===- ide/ViewCache.h - Concurrency-safe memoized view cache -------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memoized view cache behind pvp/flame, pvp/treeTable, and
/// pvp/summary, shared by every session of a concurrent PVP service. Two
/// layers of staleness defense:
///
///  1. Keys embed the profile's invalidation generation, so a bumped
///     profile simply stops matching and its old views age out of the LRU.
///  2. Each entry also records the (profile id, generation) it was
///     computed at; a hit is revalidated against the store's CURRENT
///     generation. This closes the cross-session race where session A
///     retires a profile while session B's request — which captured the
///     old generation when it built its key — is still in flight: B's
///     stale entry is dropped instead of being served or re-inserted over
///     a fresh one.
///
/// The map is shard-locked: a key hashes to one of N shards, each an
/// independent mutex + LRU list, so concurrent sessions rarely contend.
/// With Shards == 1 the cache degenerates to exactly the single global
/// LRU the sequential server always had (capacity, eviction order, and
/// hit/miss/eviction counts are pinned by tests/parallel_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_IDE_VIEWCACHE_H
#define EASYVIEW_IDE_VIEWCACHE_H

#include "query/Compiler.h"
#include "support/Json.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ev {

class ViewCache {
public:
  /// Creates a cache of \p Capacity entries total, spread over \p Shards
  /// independently locked LRU shards. Capacity 0 disables the cache (every
  /// insert is a no-op); Shards is clamped so no shard has zero capacity.
  explicit ViewCache(size_t Capacity, size_t Shards = 1);

  /// \returns the cached reply for \p Key, refreshing its LRU position,
  /// or nullptr on miss. A hit whose recorded generation differs from
  /// \p CurrentGeneration is dropped and reported as a miss. The returned
  /// value is a copy (json::Value is cheaply copyable) so no shard lock is
  /// held by the caller.
  std::unique_ptr<json::Value> lookup(const std::string &Key,
                                      uint64_t CurrentGeneration);

  /// Inserts \p Reply under \p Key, recording the (profile, generation)
  /// pair it was computed at; evicts least-recently-used entries beyond
  /// the shard capacity. Re-inserting an existing key refreshes it in
  /// place. \p Generation must be the generation CAPTURED WHEN THE VIEW
  /// WAS COMPUTED, not the current one — inserting a view computed at a
  /// retired generation is rejected by the next lookup's validation.
  void insert(std::string Key, int64_t ProfileId, uint64_t Generation,
              json::Value Reply);

  size_t capacity() const { return TotalCapacity; }
  size_t size() const;
  /// Approximate bytes of cached reply payload across all shards. This is
  /// what pvp/stats reports as cacheBytes, so cache memory is attributable
  /// separately from the profile store's residentBytes.
  uint64_t approxBytes() const {
    return Bytes.load(std::memory_order_relaxed);
  }
  size_t shardCount() const { return Shards.size(); }
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  /// Stale entries dropped by generation revalidation on lookup. These are
  /// a SUBSET of misses() (a revalidation drop also counts as a miss), so
  /// aggregating stats must not add the two together.
  uint64_t revalidationDrops() const {
    return Revalidations.load(std::memory_order_relaxed);
  }

  /// Compiled EVQL programs memoized for pvp/query, keyed by
  /// evql::programCacheKey (source hash + profile generation), so warm
  /// hits skip lex/parse/compile. This cache stores PROGRAMS, not replies,
  /// so it stays enabled even when the reply cache has capacity 0.
  evql::ProgramCache &programs() { return Programs; }

private:
  struct Entry {
    std::string Key;
    int64_t ProfileId;
    uint64_t Generation;
    json::Value Reply;
    uint64_t Bytes = 0; ///< approx reply payload, computed at insert.
  };

  struct Shard {
    std::mutex Mutex;
    std::list<Entry> Lru; ///< Front = most recently used.
    std::unordered_map<std::string, std::list<Entry>::iterator> Index;
    size_t Capacity = 0;
  };

  Shard &shardFor(const std::string &Key);

  size_t TotalCapacity;
  evql::ProgramCache Programs;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> Revalidations{0};
  std::atomic<uint64_t> Bytes{0};
};

} // namespace ev

#endif // EASYVIEW_IDE_VIEWCACHE_H
