//===- convert/HpctoolkitConverter.cpp - HPCToolkit experiment.xml --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts an HPCToolkit experiment.xml call-path database into the
/// generic representation. The supported subset covers the elements an
/// hpcprof-generated database uses for CPU profiles:
///
///   SecCallPathProfile > SecHeader > {MetricTable, LoadModuleTable,
///   FileTable, ProcedureTable} and SecCallPathProfileData with nested
///   PF (procedure frame), C (callsite), L (loop), S (statement), and
///   M (metric value) elements.
///
/// Loops become FrameKind::Loop contexts and statements attach their
/// metric values at the enclosing context with their line attribution,
/// mirroring how hpcviewer renders the tree.
///
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "profile/ProfileBuilder.h"
#include "support/Strings.h"
#include "support/Xml.h"

#include <unordered_map>

namespace ev {
namespace convert {

namespace {

struct Tables {
  std::unordered_map<uint64_t, std::string> Metrics;
  std::unordered_map<uint64_t, std::string> Modules;
  std::unordered_map<uint64_t, std::string> Files;
  std::unordered_map<uint64_t, std::string> Procedures;
};

void loadTable(const xml::Element &Parent, std::string_view TableName,
               std::string_view EntryName,
               std::unordered_map<uint64_t, std::string> &Out) {
  const xml::Element *Table = Parent.firstChild(TableName);
  if (!Table)
    return;
  for (const auto &Child : Table->Children) {
    if (Child->Name != EntryName)
      continue;
    uint64_t Id;
    if (!parseUnsigned(Child->attribute("i"), Id))
      continue;
    Out.emplace(Id, std::string(Child->attribute("n")));
  }
}

struct ConvertState {
  ProfileBuilder B{"hpctoolkit"};
  Tables T;
  std::vector<MetricId> MetricMap; // dense metric index -> MetricId
  std::unordered_map<uint64_t, MetricId> MetricById;
};

/// Maps an HPCToolkit metric name to a unit. hpcprof encodes the unit in
/// the name, e.g. "CPUTIME (usec):Sum".
std::string_view unitFor(std::string_view MetricName) {
  if (MetricName.find("usec") != std::string_view::npos ||
      MetricName.find("sec") != std::string_view::npos)
    return "nanoseconds";
  if (MetricName.find("byte") != std::string_view::npos ||
      MetricName.find("BYTE") != std::string_view::npos)
    return "bytes";
  return "count";
}

double scaleFor(std::string_view MetricName) {
  if (MetricName.find("usec") != std::string_view::npos)
    return 1e3; // usec -> ns
  if (MetricName.find("(sec)") != std::string_view::npos)
    return 1e9;
  return 1.0;
}

/// Recursive descent over the profile-data elements. \p Path carries the
/// materialized frame stack.
Result<bool> walk(ConvertState &S, const xml::Element &E,
                  std::vector<FrameId> &Path) {
  if (E.Name == "M") {
    uint64_t MetricRef;
    double Value;
    if (!parseUnsigned(E.attribute("n"), MetricRef))
      return makeError("hpctoolkit: metric value without metric id");
    if (!parseDouble(E.attribute("v"), Value))
      return makeError("hpctoolkit: metric value without numeric 'v'");
    auto It = S.MetricById.find(MetricRef);
    if (It == S.MetricById.end())
      return makeError("hpctoolkit: metric value references unknown metric " +
                       std::to_string(MetricRef));
    auto ScaleIt = S.T.Metrics.find(MetricRef);
    double Scale =
        ScaleIt == S.T.Metrics.end() ? 1.0 : scaleFor(ScaleIt->second);
    if (Path.empty())
      return makeError("hpctoolkit: metric value outside any context");
    S.B.addSample(Path, It->second, Value * Scale);
    return true;
  }

  bool Pushed = false;
  if (E.Name == "PF" || E.Name == "Pr") { // Procedure frame (Pr = inlined).
    uint64_t ProcId = 0, FileId = 0, ModuleId = 0, Line = 0;
    (void)parseUnsigned(E.attribute("n"), ProcId);
    (void)parseUnsigned(E.attribute("f"), FileId);
    (void)parseUnsigned(E.attribute("lm"), ModuleId);
    (void)parseUnsigned(E.attribute("l"), Line);
    auto Lookup = [](const std::unordered_map<uint64_t, std::string> &Map,
                     uint64_t Id) -> std::string_view {
      auto It = Map.find(Id);
      return It == Map.end() ? std::string_view() : It->second;
    };
    std::string_view Name = Lookup(S.T.Procedures, ProcId);
    Path.push_back(S.B.functionFrame(
        Name.empty() ? "<unknown procedure>" : Name,
        Lookup(S.T.Files, FileId), static_cast<uint32_t>(Line),
        Lookup(S.T.Modules, ModuleId)));
    Pushed = true;
  } else if (E.Name == "L") { // Loop.
    uint64_t Line = 0;
    (void)parseUnsigned(E.attribute("l"), Line);
    uint64_t FileId = 0;
    (void)parseUnsigned(E.attribute("f"), FileId);
    auto It = S.T.Files.find(FileId);
    std::string LoopName = "loop at line " + std::to_string(Line);
    Path.push_back(S.B.frame(FrameKind::Loop, LoopName,
                             It == S.T.Files.end() ? "" : It->second,
                             static_cast<uint32_t>(Line), ""));
    Pushed = true;
  } else if (E.Name == "S") { // Statement: a line-level context.
    uint64_t Line = 0;
    (void)parseUnsigned(E.attribute("l"), Line);
    std::string StmtName = "line " + std::to_string(Line);
    Path.push_back(S.B.frame(FrameKind::Instruction, StmtName, "",
                             static_cast<uint32_t>(Line), ""));
    Pushed = true;
  }
  // "C" (callsite) and section wrappers contribute structure only.

  for (const auto &Child : E.Children) {
    Result<bool> R = walk(S, *Child, Path);
    if (!R)
      return R;
  }
  if (Pushed)
    Path.pop_back();
  return true;
}

} // namespace

Result<Profile> fromHpctoolkit(std::string_view Xml) {
  Result<std::unique_ptr<xml::Element>> Doc = xml::parse(Xml);
  if (!Doc)
    return makeError(Doc.error());
  const xml::Element &Root = **Doc;
  if (Root.Name != "HPCToolkitExperiment")
    return makeError("hpctoolkit: root element is not HPCToolkitExperiment");

  // Find the call-path section. hpcprof nests it under the root directly.
  const xml::Element *Section = Root.firstChild("SecCallPathProfile");
  if (!Section)
    return makeError("hpctoolkit: no SecCallPathProfile section");

  ConvertState S;
  if (const xml::Element *Header = Root.firstChild("Header")) {
    std::string_view Name = Header->attribute("n");
    if (!Name.empty())
      S.B = ProfileBuilder(std::string(Name));
  }

  const xml::Element *SecHeader = Section->firstChild("SecHeader");
  if (!SecHeader)
    return makeError("hpctoolkit: section has no SecHeader");
  loadTable(*SecHeader, "MetricTable", "Metric", S.T.Metrics);
  loadTable(*SecHeader, "LoadModuleTable", "LoadModule", S.T.Modules);
  loadTable(*SecHeader, "FileTable", "File", S.T.Files);
  loadTable(*SecHeader, "ProcedureTable", "Procedure", S.T.Procedures);
  if (S.T.Metrics.empty())
    return makeError("hpctoolkit: empty MetricTable");

  for (const auto &[Id, Name] : S.T.Metrics)
    S.MetricById.emplace(Id, S.B.addMetric(Name, unitFor(Name)));

  const xml::Element *Data = Section->firstChild("SecCallPathProfileData");
  if (!Data)
    return makeError("hpctoolkit: no SecCallPathProfileData");

  std::vector<FrameId> Path;
  for (const auto &Child : Data->Children) {
    Result<bool> R = walk(S, *Child, Path);
    if (!R)
      return makeError(R.error());
  }
  return S.B.take();
}

} // namespace convert
} // namespace ev
