//===- bench/bench_load.cpp - Socket-transport fleet load harness ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates a fleet of concurrent editors against a real TCP socket: an
/// in-process NetServer + SessionManager, hammered by hundreds of client
/// threads running open/flame/treeTable/query mixes, with a deliberate
/// fraction of hostile peers (abrupt disconnects, slow-loris writers,
/// cancel storms). Reports per-method p50/p99 latency both client-side
/// (wall clock across the socket) and server-side (the existing
/// pvp.latencyUs.<method> telemetry histograms), plus the transport's drop
/// accounting, to BENCH_load.json (--out=PATH overrides; --smoke shrinks
/// the fleet for the CI smoke test).
///
/// Exit code 1 means the soak detected a wedge: the drain did not complete
/// inside its grace window, or the fleet got no successful replies.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "ide/JsonRpc.h"
#include "ide/SessionManager.h"
#include "net/NetServer.h"
#include "net/Socket.h"
#include "proto/EvProf.h"
#include "support/Strings.h"
#include "support/Telemetry.h"
#include "workload/SyntheticProfile.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

using namespace ev;

namespace {

struct Config {
  size_t Clients = 200;
  int RequestsPerClient = 24;
  unsigned Sessions = 8;
  std::string Out;
  bool Smoke = false;
};

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

json::Value request(int64_t Id, const char *Method, json::Object Params) {
  return rpc::makeRequest(Id, Method, std::move(Params));
}

/// Client-side latency samples, merged across the fleet.
struct Stats {
  std::mutex Mutex;
  std::map<std::string, std::vector<uint64_t>> LatencyUs;
  std::atomic<uint64_t> Replies{0};
  std::atomic<uint64_t> OkReplies{0};
  std::atomic<uint64_t> ErrorReplies{0};
  std::atomic<uint64_t> ConnectFailures{0};
  std::atomic<uint64_t> ClientsDropped{0}; ///< Saw EOF/reset from the server.

  void record(const std::string &Method, uint64_t Us) {
    std::lock_guard<std::mutex> Lock(Mutex);
    LatencyUs[Method].push_back(Us);
  }
};

double percentile(std::vector<uint64_t> &V, double P) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  size_t Rank = static_cast<size_t>((P / 100.0) * static_cast<double>(V.size()));
  if (Rank >= V.size())
    Rank = V.size() - 1;
  return static_cast<double>(V[Rank]);
}

/// One blocking socket client: framed sends, deadline reads.
struct Client {
  int Fd = -1;
  rpc::FrameReader Reader;

  explicit Client(const std::string &HostPort) {
    Result<int> R = net::connectTcp(HostPort);
    if (R)
      Fd = *R;
  }
  ~Client() { net::closeSocket(Fd); }

  bool ok() const { return Fd >= 0; }

  bool sendRaw(std::string_view Bytes) {
    size_t Sent = 0;
    while (Sent < Bytes.size()) {
      ssize_t N =
          net::sendNoSignal(Fd, Bytes.data() + Sent, Bytes.size() - Sent);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Sent += static_cast<size_t>(N);
    }
    return true;
  }

  bool send(const json::Value &Payload) { return sendRaw(rpc::frame(Payload)); }

  std::optional<json::Value> readFrame(int TimeoutMs) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      if (std::optional<json::Value> Msg = Reader.poll())
        return Msg;
      Reader.takeErrors(); // A load harness tolerates (and drops) noise.
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0)
        return std::nullopt;
      pollfd P{Fd, POLLIN, 0};
      if (::poll(&P, 1, static_cast<int>(Left)) <= 0)
        continue;
      char Buf[8192];
      ssize_t N = ::read(Fd, Buf, sizeof(Buf));
      if (N == 0)
        return std::nullopt;
      if (N < 0) {
        if (errno == EINTR || errno == EAGAIN)
          continue;
        return std::nullopt;
      }
      Reader.feed(std::string_view(Buf, static_cast<size_t>(N)));
    }
  }
};

json::Value openRequest(int64_t Id, const std::string &Bytes) {
  json::Object P;
  P.set("name", "load.evprof");
  P.set("dataBase64", base64Encode(Bytes));
  return request(Id, "pvp/open", std::move(P));
}

/// Sends one timed request and waits for its reply.
/// \returns false once the server has cut the connection.
bool timedCall(Client &C, Stats &S, const char *Method, json::Value Req) {
  uint64_t T0 = nowUs();
  if (!C.send(Req))
    return false;
  std::optional<json::Value> Reply = C.readFrame(30000);
  if (!Reply)
    return false;
  S.Replies.fetch_add(1, std::memory_order_relaxed);
  const json::Object &O = Reply->asObject();
  if (O.contains("error"))
    S.ErrorReplies.fetch_add(1, std::memory_order_relaxed);
  else
    S.OkReplies.fetch_add(1, std::memory_order_relaxed);
  S.record(Method, nowUs() - T0);
  return true;
}

/// The 80% case: a well-behaved editor pane. Open once, then rotate
/// flame/treeTable/query views, reading every reply.
void runNormalClient(const std::string &Addr, const std::string &Bytes,
                     const Config &Cfg, Stats &S) {
  Client C(Addr);
  if (!C.ok()) {
    S.ConnectFailures.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint64_t T0 = nowUs();
  if (!C.send(openRequest(1, Bytes)))
    return;
  std::optional<json::Value> Opened = C.readFrame(30000);
  if (!Opened) {
    S.ClientsDropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  S.Replies.fetch_add(1, std::memory_order_relaxed);
  const json::Value *ResultV = Opened->asObject().find("result");
  if (!ResultV) {
    S.ErrorReplies.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  S.OkReplies.fetch_add(1, std::memory_order_relaxed);
  S.record("pvp/open", nowUs() - T0);
  int64_t Prof = ResultV->asObject().find("profile")->asInt();

  for (int R = 0; R < Cfg.RequestsPerClient; ++R) {
    int64_t Id = 100 + R;
    bool Alive = true;
    switch (R % 3) {
    case 0: {
      json::Object P;
      P.set("profile", Prof);
      P.set("maxRects", 512);
      Alive = timedCall(C, S, "pvp/flame", request(Id, "pvp/flame", std::move(P)));
      break;
    }
    case 1: {
      json::Object P;
      P.set("profile", Prof);
      Alive = timedCall(C, S, "pvp/treeTable",
                        request(Id, "pvp/treeTable", std::move(P)));
      break;
    }
    default: {
      json::Object P;
      P.set("profile", Prof);
      P.set("program", "print total(\"cpu\");");
      Alive = timedCall(C, S, "pvp/query", request(Id, "pvp/query", std::move(P)));
      break;
    }
    }
    if (!Alive) {
      S.ClientsDropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

/// ~10%: the editor crashed — requests sent, connection slammed shut with
/// replies in flight. The server must shrug (SIGPIPE-proof writes).
void runAbruptClient(const std::string &Addr, const std::string &Bytes,
                     Stats &S) {
  Client C(Addr);
  if (!C.ok()) {
    S.ConnectFailures.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  C.send(openRequest(1, Bytes));
  for (int64_t Id = 2; Id < 6; ++Id) {
    json::Object P;
    P.set("profile", 1);
    P.set("maxRects", 4096);
    C.send(request(Id, "pvp/flame", std::move(P)));
  }
  // Destructor closes without reading a byte.
}

/// ~5%: a slow-loris peer dribbling one byte at a time; the frame
/// timeout must cut it (counted under net.drop.idleTimeout).
void runSlowLorisClient(const std::string &Addr, Stats &S) {
  Client C(Addr);
  if (!C.ok()) {
    S.ConnectFailures.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  json::Object P;
  P.set("profile", 1);
  std::string Frame = rpc::frame(request(1, "pvp/flame", std::move(P)));
  for (size_t I = 0; I < Frame.size(); ++I) {
    if (!C.sendRaw(std::string_view(Frame).substr(I, 1)))
      return; // Dropped, as intended.
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  // If the whole frame somehow got through, just leave.
}

/// ~5%: a cancel storm — every view request is chased by a cancel for it.
/// Replies are a race of results and RequestCancelled errors; all must be
/// well-formed and the connection must stay orderly.
void runCancelStormClient(const std::string &Addr, const std::string &Bytes,
                          const Config &Cfg, Stats &S) {
  Client C(Addr);
  if (!C.ok()) {
    S.ConnectFailures.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!C.send(openRequest(1, Bytes)))
    return;
  std::optional<json::Value> Opened = C.readFrame(30000);
  if (!Opened || !Opened->asObject().contains("result"))
    return;
  S.Replies.fetch_add(1, std::memory_order_relaxed);
  S.OkReplies.fetch_add(1, std::memory_order_relaxed);
  int64_t Prof = Opened->asObject().find("result")->asObject().find("profile")->asInt();
  int Expected = 0;
  for (int R = 0; R < Cfg.RequestsPerClient; ++R) {
    int64_t Id = 100 + R;
    json::Object P;
    P.set("profile", Prof);
    P.set("maxRects", 512);
    if (!C.send(request(Id, "pvp/flame", std::move(P))))
      return;
    ++Expected;
    json::Object CP;
    CP.set("id", Id);
    if (!C.send(request(1000 + R, "$/cancelRequest", std::move(CP))))
      return;
    ++Expected;
  }
  for (int R = 0; R < Expected; ++R) {
    std::optional<json::Value> Reply = C.readFrame(30000);
    if (!Reply)
      return;
    S.Replies.fetch_add(1, std::memory_order_relaxed);
    if (Reply->asObject().contains("error"))
      S.ErrorReplies.fetch_add(1, std::memory_order_relaxed);
    else
      S.OkReplies.fetch_add(1, std::memory_order_relaxed);
  }
}

} // namespace

int main(int argc, char **argv) {
#ifdef EV_BENCH_DEFAULT_OUT
  std::string OutPath = EV_BENCH_DEFAULT_OUT;
#else
  std::string OutPath = "BENCH_load.json";
#endif
  Config Cfg;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Cfg.Smoke = true;
    else if (std::strncmp(argv[I], "--out=", 6) == 0)
      OutPath = argv[I] + 6;
    else if (std::strncmp(argv[I], "--clients=", 10) == 0)
      Cfg.Clients = static_cast<size_t>(std::atoll(argv[I] + 10));
    else if (std::strncmp(argv[I], "--requests=", 11) == 0)
      Cfg.RequestsPerClient = std::atoi(argv[I] + 11);
    else if (std::strncmp(argv[I], "--sessions=", 11) == 0)
      Cfg.Sessions = static_cast<unsigned>(std::atoi(argv[I] + 11));
    else {
      std::fprintf(stderr,
                   "usage: bench_load [--smoke] [--out=PATH] [--clients=N]\n"
                   "                  [--requests=N] [--sessions=N]\n");
      return 2;
    }
  }
  if (Cfg.Smoke) {
    Cfg.Clients = 16;
    Cfg.RequestsPerClient = 4;
    Cfg.Sessions = 4;
  }

  // The service under load: a real socket in front of the session strands.
  SessionManager::Options MOpts;
  MOpts.Sessions = Cfg.Sessions;
  SessionManager Manager(MOpts);
  net::NetServerOptions NOpts;
  NOpts.FrameTimeoutMs = 300; // Cut lorises during, not after, the run.
  NOpts.IdleTimeoutMs = 30000;
  NOpts.DrainDeadlineMs = 10000;
  NOpts.Log = [](const std::string &) {}; // 200 clients; keep stderr usable.
  net::NetServer Server(Manager, NOpts);
  if (Result<bool> R = Server.listenTcp("127.0.0.1:0"); !R) {
    std::fprintf(stderr, "bench_load: %s\n", R.error().c_str());
    return 1;
  }
  if (Result<bool> R = Server.start(); !R) {
    std::fprintf(stderr, "bench_load: %s\n", R.error().c_str());
    return 1;
  }
  const std::string Addr = Server.boundAddress();

  workload::SyntheticOptions WOpts;
  WOpts.Seed = 97;
  WOpts.TargetBytes = Cfg.Smoke ? (32u << 10) : (256u << 10);
  std::string Bytes = writeEvProf(workload::generateSyntheticProfile(WOpts));

  uint64_t DropsBefore =
      telemetry::Registry::global().counter("net.connectionsDropped").value();

  // The fleet: 80% normal editors, ~10% abrupt disconnects, ~5% slow
  // lorises, ~5% cancel storms.
  Stats S;
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Fleet;
  Fleet.reserve(Cfg.Clients);
  size_t Normal = 0, Abrupt = 0, Loris = 0, Storm = 0;
  for (size_t I = 0; I < Cfg.Clients; ++I) {
    if (I % 10 == 3) {
      ++Abrupt;
      Fleet.emplace_back([&] { runAbruptClient(Addr, Bytes, S); });
    } else if (I % 20 == 7) {
      ++Loris;
      Fleet.emplace_back([&] { runSlowLorisClient(Addr, S); });
    } else if (I % 20 == 17) {
      ++Storm;
      Fleet.emplace_back([&] { runCancelStormClient(Addr, Bytes, Cfg, S); });
    } else {
      ++Normal;
      Fleet.emplace_back([&] { runNormalClient(Addr, Bytes, Cfg, S); });
    }
  }
  for (std::thread &T : Fleet)
    T.join();
  double FleetMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - T0)
                       .count();

  // Graceful drain with a wedge detector: if the loop does not exit well
  // inside the drain deadline's grace, the transport is stuck — fail loud.
  auto DrainT0 = std::chrono::steady_clock::now();
  std::future<bool> Drained =
      std::async(std::launch::async, [&] { return Server.drain(); });
  if (Drained.wait_for(std::chrono::seconds(30)) !=
      std::future_status::ready) {
    std::fprintf(stderr, "bench_load: WEDGED — drain did not complete\n");
    _exit(1); // The loop thread is stuck; a normal exit would hang too.
  }
  bool CleanDrain = Drained.get();
  double DrainMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - DrainT0)
                       .count();

  telemetry::Registry &Reg = telemetry::Registry::global();
  uint64_t Drops = Reg.counter("net.connectionsDropped").value() - DropsBefore;

  bench::JsonReporter Report("load");
  Report.setMeta("clients", static_cast<int64_t>(Cfg.Clients));
  Report.setMeta("requestsPerClient",
                 static_cast<int64_t>(Cfg.RequestsPerClient));
  Report.setMeta("sessions", static_cast<int64_t>(Cfg.Sessions));
  Report.setMeta("mix",
                 [&] {
                   json::Object Mix;
                   Mix.set("normal", static_cast<int64_t>(Normal));
                   Mix.set("abruptDisconnect", static_cast<int64_t>(Abrupt));
                   Mix.set("slowLoris", static_cast<int64_t>(Loris));
                   Mix.set("cancelStorm", static_cast<int64_t>(Storm));
                   return json::Value(std::move(Mix));
                 }());
  Report.setMeta("smoke", Cfg.Smoke);
  Report.setMeta("address", Addr);

  bench::row("load: %zu clients (%zu normal, %zu abrupt, %zu loris, %zu "
             "storm), %.0fms fleet, %.0fms drain (%s)",
             Cfg.Clients, Normal, Abrupt, Loris, Storm, FleetMs, DrainMs,
             CleanDrain ? "clean" : "forced");

  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (auto &[Method, V] : S.LatencyUs) {
      double P50 = percentile(V, 50), P99 = percentile(V, 99);
      telemetry::Histogram &H = Reg.histogram("pvp.latencyUs." + Method);
      json::Object Extra;
      Extra.set("count", static_cast<int64_t>(V.size()));
      Extra.set("clientP50Us", P50);
      Extra.set("clientP99Us", P99);
      Extra.set("serverP50Us", H.percentileEstimate(50));
      Extra.set("serverP99Us", H.percentileEstimate(99));
      Report.addRow(Method, static_cast<unsigned>(Cfg.Clients), P50 / 1000.0,
                    std::move(Extra));
      bench::row("%-14s  n=%-6zu  client p50=%7.0fus p99=%7.0fus  server "
                 "p50=%7.0fus p99=%7.0fus",
                 Method.c_str(), V.size(), P50, P99, H.percentileEstimate(50),
                 H.percentileEstimate(99));
    }
  }

  Report.setSummary("fleetMs", FleetMs);
  Report.setSummary("drainMs", DrainMs);
  Report.setSummary("drainClean", CleanDrain);
  Report.setSummary("replies", static_cast<int64_t>(S.Replies.load()));
  Report.setSummary("okReplies", static_cast<int64_t>(S.OkReplies.load()));
  Report.setSummary("errorReplies",
                    static_cast<int64_t>(S.ErrorReplies.load()));
  Report.setSummary("connectFailures",
                    static_cast<int64_t>(S.ConnectFailures.load()));
  Report.setSummary("connectionsAccepted",
                    static_cast<int64_t>(Server.acceptedConnections()));
  Report.setSummary("connectionsDropped", static_cast<int64_t>(Drops));
  Report.setSummary("drop.idleTimeout",
                    static_cast<int64_t>(
                        Reg.counter("net.drop.idleTimeout").value()));
  Report.setSummary("drop.writeBackpressure",
                    static_cast<int64_t>(
                        Reg.counter("net.drop.writeBackpressure").value()));
  Report.setSummary("drop.maxConnections",
                    static_cast<int64_t>(
                        Reg.counter("net.drop.maxConnections").value()));
  Report.setSummary("drop.parseError",
                    static_cast<int64_t>(
                        Reg.counter("net.drop.parseError").value()));

  bench::row("drops: %llu total (idle=%llu backpressure=%llu maxConns=%llu "
             "parse=%llu); replies=%llu ok=%llu err=%llu",
             static_cast<unsigned long long>(Drops),
             static_cast<unsigned long long>(
                 Reg.counter("net.drop.idleTimeout").value()),
             static_cast<unsigned long long>(
                 Reg.counter("net.drop.writeBackpressure").value()),
             static_cast<unsigned long long>(
                 Reg.counter("net.drop.maxConnections").value()),
             static_cast<unsigned long long>(
                 Reg.counter("net.drop.parseError").value()),
             static_cast<unsigned long long>(S.Replies.load()),
             static_cast<unsigned long long>(S.OkReplies.load()),
             static_cast<unsigned long long>(S.ErrorReplies.load()));

  if (!Report.write(OutPath)) {
    std::fprintf(stderr, "bench_load: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());

  if (S.OkReplies.load() == 0) {
    std::fprintf(stderr, "bench_load: no successful replies — broken run\n");
    return 1;
  }
  return 0;
}
