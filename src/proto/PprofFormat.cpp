//===- proto/PprofFormat.cpp - pprof profile.proto codec ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "proto/PprofFormat.h"

#include "support/ProtoWire.h"

namespace ev {
namespace pprof {

int64_t PprofProfile::intern(std::string_view Text) {
  if (StringTable.empty())
    StringTable.emplace_back("");
  for (size_t I = 0; I < StringTable.size(); ++I)
    if (StringTable[I] == Text)
      return static_cast<int64_t>(I);
  StringTable.emplace_back(Text);
  return static_cast<int64_t>(StringTable.size() - 1);
}

std::string_view PprofProfile::text(int64_t Id) const {
  if (Id < 0 || static_cast<size_t>(Id) >= StringTable.size())
    return {};
  return StringTable[static_cast<size_t>(Id)];
}

namespace {

// Top-level Profile message fields.
enum : uint32_t {
  FSampleType = 1,
  FSample = 2,
  FMapping = 3,
  FLocation = 4,
  FFunction = 5,
  FStringTable = 6,
  FTimeNanos = 9,
  FDurationNanos = 10,
  FPeriodType = 11,
  FPeriod = 12,
  FDefaultSampleType = 14,
};

std::string encodeValueType(const ValueType &VT) {
  ProtoWriter W;
  if (VT.Type)
    W.writeInt64(1, VT.Type);
  if (VT.Unit)
    W.writeInt64(2, VT.Unit);
  return W.takeBuffer();
}

std::string encodeSample(const Sample &S) {
  ProtoWriter W;
  if (!S.LocationIds.empty())
    W.writePackedVarints(1, S.LocationIds.data(), S.LocationIds.size());
  if (!S.Values.empty()) {
    std::vector<uint64_t> Raw(S.Values.size());
    for (size_t I = 0; I < S.Values.size(); ++I)
      Raw[I] = static_cast<uint64_t>(S.Values[I]);
    W.writePackedVarints(2, Raw.data(), Raw.size());
  }
  for (const Label &L : S.Labels) {
    ProtoWriter LW;
    if (L.Key)
      LW.writeInt64(1, L.Key);
    if (L.Str)
      LW.writeInt64(2, L.Str);
    if (L.Num)
      LW.writeInt64(3, L.Num);
    if (L.NumUnit)
      LW.writeInt64(4, L.NumUnit);
    W.writeBytes(3, LW.buffer());
  }
  return W.takeBuffer();
}

std::string encodeMapping(const Mapping &M) {
  ProtoWriter W;
  W.writeVarint(1, M.Id);
  if (M.MemoryStart)
    W.writeVarint(2, M.MemoryStart);
  if (M.MemoryLimit)
    W.writeVarint(3, M.MemoryLimit);
  if (M.FileOffset)
    W.writeVarint(4, M.FileOffset);
  if (M.Filename)
    W.writeInt64(5, M.Filename);
  if (M.BuildId)
    W.writeInt64(6, M.BuildId);
  return W.takeBuffer();
}

std::string encodeLocation(const Location &L) {
  ProtoWriter W;
  W.writeVarint(1, L.Id);
  if (L.MappingId)
    W.writeVarint(2, L.MappingId);
  if (L.Address)
    W.writeVarint(3, L.Address);
  for (const Line &Ln : L.Lines) {
    ProtoWriter LW;
    if (Ln.FunctionId)
      LW.writeVarint(1, Ln.FunctionId);
    if (Ln.LineNumber)
      LW.writeInt64(2, Ln.LineNumber);
    W.writeBytes(4, LW.buffer());
  }
  return W.takeBuffer();
}

std::string encodeFunction(const Function &F) {
  ProtoWriter W;
  W.writeVarint(1, F.Id);
  if (F.Name)
    W.writeInt64(2, F.Name);
  if (F.SystemName)
    W.writeInt64(3, F.SystemName);
  if (F.Filename)
    W.writeInt64(4, F.Filename);
  if (F.StartLine)
    W.writeInt64(5, F.StartLine);
  return W.takeBuffer();
}

/// Decodes either a packed run of varints or a single unpacked varint into
/// \p Out, following protobuf's dual encoding for repeated scalar fields.
bool readRepeatedVarint(ProtoReader &R, std::vector<uint64_t> &Out) {
  if (R.wireType() == WireType::LengthDelimited) {
    std::string_view Packed = R.bytes();
    VarintReader VR(Packed.data(), Packed.size());
    while (!VR.atEnd() && !VR.failed())
      Out.push_back(VR.readVarint());
    return !VR.failed();
  }
  Out.push_back(R.varint());
  return true;
}

Result<ValueType> decodeValueType(std::string_view Bytes) {
  ValueType VT;
  ProtoReader R(Bytes);
  while (R.next()) {
    switch (R.fieldNumber()) {
    case 1:
      VT.Type = R.int64();
      break;
    case 2:
      VT.Unit = R.int64();
      break;
    default:
      R.skip();
    }
  }
  if (R.failed())
    return makeError("malformed ValueType");
  return VT;
}

} // namespace

std::string write(const PprofProfile &P) {
  ProtoWriter W;
  for (const ValueType &VT : P.SampleTypes)
    W.writeBytes(FSampleType, encodeValueType(VT));
  for (const Sample &S : P.Samples)
    W.writeBytes(FSample, encodeSample(S));
  for (const Mapping &M : P.Mappings)
    W.writeBytes(FMapping, encodeMapping(M));
  for (const Location &L : P.Locations)
    W.writeBytes(FLocation, encodeLocation(L));
  for (const Function &F : P.Functions)
    W.writeBytes(FFunction, encodeFunction(F));
  for (const std::string &S : P.StringTable)
    W.writeBytes(FStringTable, S);
  if (P.TimeNanos)
    W.writeInt64(FTimeNanos, P.TimeNanos);
  if (P.DurationNanos)
    W.writeInt64(FDurationNanos, P.DurationNanos);
  if (P.PeriodType.Type || P.PeriodType.Unit)
    W.writeBytes(FPeriodType, encodeValueType(P.PeriodType));
  if (P.Period)
    W.writeInt64(FPeriod, P.Period);
  if (P.DefaultSampleType)
    W.writeInt64(FDefaultSampleType, P.DefaultSampleType);
  return W.takeBuffer();
}

Result<PprofProfile> read(std::string_view Bytes) {
  PprofProfile P;
  ProtoReader R(Bytes);
  while (R.next()) {
    switch (R.fieldNumber()) {
    case FSampleType: {
      Result<ValueType> VT = decodeValueType(R.bytes());
      if (!VT)
        return makeError(VT.error());
      P.SampleTypes.push_back(*VT);
      break;
    }
    case FSample: {
      Sample S;
      ProtoReader SR(R.bytes());
      while (SR.next()) {
        switch (SR.fieldNumber()) {
        case 1:
          if (!readRepeatedVarint(SR, S.LocationIds))
            return makeError("malformed sample location ids");
          break;
        case 2: {
          std::vector<uint64_t> Raw;
          if (!readRepeatedVarint(SR, Raw))
            return makeError("malformed sample values");
          for (uint64_t V : Raw)
            S.Values.push_back(static_cast<int64_t>(V));
          break;
        }
        case 3: {
          Label L;
          ProtoReader LR(SR.bytes());
          while (LR.next()) {
            switch (LR.fieldNumber()) {
            case 1:
              L.Key = LR.int64();
              break;
            case 2:
              L.Str = LR.int64();
              break;
            case 3:
              L.Num = LR.int64();
              break;
            case 4:
              L.NumUnit = LR.int64();
              break;
            default:
              LR.skip();
            }
          }
          if (LR.failed())
            return makeError("malformed Label");
          S.Labels.push_back(L);
          break;
        }
        default:
          SR.skip();
        }
      }
      if (SR.failed())
        return makeError("malformed Sample");
      P.Samples.push_back(std::move(S));
      break;
    }
    case FMapping: {
      Mapping M;
      ProtoReader MR(R.bytes());
      while (MR.next()) {
        switch (MR.fieldNumber()) {
        case 1:
          M.Id = MR.varint();
          break;
        case 2:
          M.MemoryStart = MR.varint();
          break;
        case 3:
          M.MemoryLimit = MR.varint();
          break;
        case 4:
          M.FileOffset = MR.varint();
          break;
        case 5:
          M.Filename = MR.int64();
          break;
        case 6:
          M.BuildId = MR.int64();
          break;
        default:
          MR.skip();
        }
      }
      if (MR.failed())
        return makeError("malformed Mapping");
      P.Mappings.push_back(M);
      break;
    }
    case FLocation: {
      Location L;
      ProtoReader LR(R.bytes());
      while (LR.next()) {
        switch (LR.fieldNumber()) {
        case 1:
          L.Id = LR.varint();
          break;
        case 2:
          L.MappingId = LR.varint();
          break;
        case 3:
          L.Address = LR.varint();
          break;
        case 4: {
          Line Ln;
          ProtoReader LnR(LR.bytes());
          while (LnR.next()) {
            switch (LnR.fieldNumber()) {
            case 1:
              Ln.FunctionId = LnR.varint();
              break;
            case 2:
              Ln.LineNumber = LnR.int64();
              break;
            default:
              LnR.skip();
            }
          }
          if (LnR.failed())
            return makeError("malformed Line");
          L.Lines.push_back(Ln);
          break;
        }
        default:
          LR.skip();
        }
      }
      if (LR.failed())
        return makeError("malformed Location");
      P.Locations.push_back(std::move(L));
      break;
    }
    case FFunction: {
      Function F;
      ProtoReader FR(R.bytes());
      while (FR.next()) {
        switch (FR.fieldNumber()) {
        case 1:
          F.Id = FR.varint();
          break;
        case 2:
          F.Name = FR.int64();
          break;
        case 3:
          F.SystemName = FR.int64();
          break;
        case 4:
          F.Filename = FR.int64();
          break;
        case 5:
          F.StartLine = FR.int64();
          break;
        default:
          FR.skip();
        }
      }
      if (FR.failed())
        return makeError("malformed Function");
      P.Functions.push_back(F);
      break;
    }
    case FStringTable:
      P.StringTable.emplace_back(R.bytes());
      break;
    case FTimeNanos:
      P.TimeNanos = R.int64();
      break;
    case FDurationNanos:
      P.DurationNanos = R.int64();
      break;
    case FPeriodType: {
      Result<ValueType> VT = decodeValueType(R.bytes());
      if (!VT)
        return makeError(VT.error());
      P.PeriodType = *VT;
      break;
    }
    case FPeriod:
      P.Period = R.int64();
      break;
    case FDefaultSampleType:
      P.DefaultSampleType = R.int64();
      break;
    default:
      R.skip();
    }
  }
  if (R.failed())
    return makeError("malformed pprof Profile message");
  if (P.StringTable.empty())
    P.StringTable.emplace_back("");
  if (!P.StringTable[0].empty())
    return makeError("pprof string_table[0] must be empty");
  return P;
}

} // namespace pprof
} // namespace ev
