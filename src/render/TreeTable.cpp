//===- render/TreeTable.cpp - Tree table view -------------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/TreeTable.h"

#include "support/Strings.h"

#include <algorithm>

namespace ev {

TreeTable::TreeTable(const Profile &P, TreeTableOptions Options)
    : P(&P), Options(std::move(Options)) {
  if (this->Options.Metrics.empty())
    for (MetricId I = 0; I < P.metrics().size(); ++I)
      this->Options.Metrics.push_back(I);
  for (MetricId M : this->Options.Metrics)
    Views.emplace_back(P, M);
}

void TreeTable::expandAll() {
  for (NodeId Id = 0; Id < P->nodeCount(); ++Id)
    if (!P->node(Id).Children.empty())
      ExpandedSet.insert(Id);
}

NodeId TreeTable::expandHotPath(MetricId Metric) {
  MetricView View(*P, Metric);
  NodeId Cur = P->root();
  while (!P->node(Cur).Children.empty()) {
    ExpandedSet.insert(Cur);
    NodeId Hot = P->node(Cur).Children.front();
    for (NodeId Child : P->node(Cur).Children)
      if (View.inclusive(Child) > View.inclusive(Hot))
        Hot = Child;
    Cur = Hot;
  }
  return Cur;
}

std::vector<TreeTableRow> TreeTable::rows() const {
  std::vector<TreeTableRow> Out;
  struct Item {
    NodeId Node;
    unsigned Depth;
  };
  std::vector<Item> Stack{{P->root(), 0}};
  while (!Stack.empty() && Out.size() < Options.MaxRows) {
    Item It = Stack.back();
    Stack.pop_back();
    const CCTNode &Node = P->node(It.Node);
    TreeTableRow Row;
    Row.Node = It.Node;
    Row.Depth = It.Depth;
    Row.Expandable = !Node.Children.empty();
    Row.Expanded = Row.Expandable && isExpanded(It.Node);
    Out.push_back(Row);
    if (!Row.Expanded)
      continue;
    // Children sorted by first metric's inclusive value, hottest first.
    std::vector<NodeId> Ordered(Node.Children.begin(), Node.Children.end());
    if (!Views.empty())
      std::sort(Ordered.begin(), Ordered.end(), [this](NodeId A, NodeId B) {
        double VA = Views.front().inclusive(A);
        double VB = Views.front().inclusive(B);
        if (VA != VB)
          return VA > VB;
        return A < B;
      });
    for (size_t I = Ordered.size(); I > 0; --I)
      Stack.push_back({Ordered[I - 1], It.Depth + 1});
  }
  return Out;
}

std::string TreeTable::renderText() const {
  std::vector<TreeTableRow> Visible = rows();
  std::string Out;

  // Header.
  std::string Header = "context";
  Header.resize(48, ' ');
  for (size_t I = 0; I < Options.Metrics.size(); ++I) {
    const MetricDescriptor &M = P->metrics()[Options.Metrics[I]];
    std::string Col = M.Name + " (incl/excl)";
    if (Col.size() < 28)
      Col.resize(28, ' ');
    Header += "  " + Col;
  }
  Out += Header + "\n";
  Out += std::string(Header.size(), '-') + "\n";

  for (const TreeTableRow &Row : Visible) {
    std::string Line;
    Line.append(Row.Depth * 2, ' ');
    Line += Row.Expandable ? (Row.Expanded ? "[-] " : "[+] ") : "    ";
    Line += std::string(P->nameOf(Row.Node));
    const Frame &F = P->frameOf(Row.Node);
    if (F.Loc.hasSourceMapping()) {
      Line += " @";
      Line += P->text(F.Loc.File);
      Line += ":" + std::to_string(F.Loc.Line);
    }
    if (Line.size() < 48)
      Line.resize(48, ' ');
    else
      Line += " ";
    for (size_t I = 0; I < Views.size(); ++I) {
      const MetricDescriptor &M = P->metrics()[Options.Metrics[I]];
      std::string Cell = formatMetric(Views[I].inclusive(Row.Node), M.Unit) +
                         " / " +
                         formatMetric(Views[I].exclusive(Row.Node), M.Unit);
      if (Cell.size() < 28)
        Cell.resize(28, ' ');
      Line += "  " + Cell;
    }
    Out += Line + "\n";
  }
  return Out;
}

} // namespace ev
