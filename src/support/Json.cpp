//===- support/Json.cpp - JSON value model, parser, and writer ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Strings.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace ev {
namespace json {

const Value *Object::find(std::string_view Key) const {
  for (const auto &Member : Members)
    if (Member.first == Key)
      return &Member.second;
  return nullptr;
}

Value *Object::find(std::string_view Key) {
  for (auto &Member : Members)
    if (Member.first == Key)
      return &Member.second;
  return nullptr;
}

void Object::set(std::string Key, Value V) {
  if (Value *Existing = find(Key)) {
    *Existing = std::move(V);
    return;
  }
  Members.emplace_back(std::move(Key), std::move(V));
}

namespace {

/// Recursive-descent JSON parser with offset-annotated errors.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Result<Value> run() {
    skipWhitespace();
    Result<Value> Doc = parseValue();
    if (!Doc)
      return Doc;
    skipWhitespace();
    if (Pos != Text.size())
      return fail("trailing characters after JSON document");
    return Doc;
  }

private:
  Error fail(std::string Message) {
    return makeError(Message + " at offset " + std::to_string(Pos));
  }

  void skipWhitespace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        return;
      ++Pos;
    }
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Result<Value> parseValue() {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"': {
      Result<std::string> S = parseString();
      if (!S)
        return makeError(S.error());
      return Value(S.take());
    }
    case 't':
      return parseKeyword("true", Value(true));
    case 'f':
      return parseKeyword("false", Value(false));
    case 'n':
      return parseKeyword("null", Value(nullptr));
    default:
      return parseNumber();
    }
  }

  Result<Value> parseKeyword(std::string_view Word, Value V) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail("invalid literal");
    Pos += Word.size();
    return V;
  }

  Result<Value> parseNumber() {
    size_t Start = Pos;
    bool Integral = true;
    if (consume('-')) {
    }
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-')) {
      if (Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E')
        Integral = false;
      ++Pos;
    }
    std::string_view Token = Text.substr(Start, Pos - Start);
    // Integral literals that fit keep their exact int64 value; everything
    // else (fractions, exponents, magnitudes past INT64 range) stays a
    // double exactly as before.
    if (Integral && !Token.empty()) {
      errno = 0;
      char *End = nullptr;
      std::string Buf(Token);
      long long N = std::strtoll(Buf.c_str(), &End, 10);
      if (errno == 0 && End == Buf.c_str() + Buf.size())
        return Value(static_cast<int64_t>(N));
    }
    double Number;
    if (Pos == Start || !parseDouble(Token, Number))
      return fail("invalid number");
    return Value(Number);
  }

  Result<std::string> parseString() {
    if (!consume('"'))
      return fail("expected '\"'");
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out.push_back(static_cast<char>(Code));
      return;
    }
    if (Code < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
      return;
    }
    Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
    Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
    Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
  }

  Result<Value> parseArray() {
    consume('[');
    ++Depth;
    Array Items;
    skipWhitespace();
    if (consume(']')) {
      --Depth;
      return Value(std::move(Items));
    }
    while (true) {
      skipWhitespace();
      Result<Value> Item = parseValue();
      if (!Item)
        return Item;
      Items.push_back(Item.take());
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume(']')) {
        --Depth;
        return Value(std::move(Items));
      }
      return fail("expected ',' or ']'");
    }
  }

  Result<Value> parseObject() {
    consume('{');
    ++Depth;
    Object Obj;
    skipWhitespace();
    if (consume('}')) {
      --Depth;
      return Value(std::move(Obj));
    }
    while (true) {
      skipWhitespace();
      Result<std::string> Key = parseString();
      if (!Key)
        return makeError(Key.error());
      skipWhitespace();
      if (!consume(':'))
        return fail("expected ':'");
      skipWhitespace();
      Result<Value> Member = parseValue();
      if (!Member)
        return Member;
      Obj.set(Key.take(), Member.take());
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume('}')) {
        --Depth;
        return Value(std::move(Obj));
      }
      return fail("expected ',' or '}'");
    }
  }

  static constexpr int MaxDepth = 256;

  std::string_view Text;
  size_t Pos = 0;
  int Depth = 0;
};

void dumpInt(std::string &Out, int64_t N) {
  // std::to_chars is locale-independent by definition; snprintf("%lld")
  // honors LC_NUMERIC grouping in some locales.
  char Buffer[32];
  auto [End, Ec] = std::to_chars(Buffer, Buffer + sizeof(Buffer), N);
  (void)Ec; // int64 always fits in 32 bytes.
  Out.append(Buffer, End);
}

void dumpNumber(std::string &Out, double N) {
  if (!std::isfinite(N)) {
    Out += "null"; // JSON has no Inf/NaN.
    return;
  }
  // Integral doubles inside the int64 range print as integers. The range
  // check must precede the cast: casting an out-of-range double to int64
  // is undefined behavior. 2^63 itself rounds to exactly
  // 9223372036854775808.0, hence the strict <.
  if (N >= -9223372036854775808.0 && N < 9223372036854775808.0 &&
      N == static_cast<double>(static_cast<int64_t>(N))) {
    dumpInt(Out, static_cast<int64_t>(N));
    return;
  }
  // Shortest round-trip form, locale-independent (snprintf "%.17g" is
  // neither: a de_DE LC_NUMERIC emits "3,14", which is invalid JSON).
  char Buffer[64];
  auto [End, Ec] = std::to_chars(Buffer, Buffer + sizeof(Buffer), N);
  (void)Ec; // Shortest form of a finite double always fits in 64 bytes.
  Out.append(Buffer, End);
}

} // namespace

bool Value::getInteger(int64_t &Out) const {
  if (TheKind != Kind::Number)
    return false;
  if (IsInt) {
    Out = IntValue;
    return true;
  }
  // A double-backed number is accepted only when it is finite, has no
  // fractional part, and sits inside the int64 range. The range check uses
  // the -2^63 .. 2^63 bounds as doubles; 2^63 itself rounds to exactly
  // 9223372036854775808.0, which is out of range, hence the strict <.
  if (!std::isfinite(NumberValue) ||
      NumberValue != std::trunc(NumberValue) ||
      NumberValue < -9223372036854775808.0 ||
      NumberValue >= 9223372036854775808.0)
    return false;
  Out = static_cast<int64_t>(NumberValue);
  return true;
}

void Value::dumpImpl(std::string &Out, int Indent, int Depth) const {
  auto Newline = [&](int D) {
    if (Indent <= 0)
      return;
    Out.push_back('\n');
    Out.append(static_cast<size_t>(Indent * D), ' ');
  };
  switch (TheKind) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += BoolValue ? "true" : "false";
    return;
  case Kind::Number:
    if (IsInt) {
      dumpInt(Out, IntValue);
    } else {
      dumpNumber(Out, NumberValue);
    }
    return;
  case Kind::String:
    Out.push_back('"');
    Out += escapeJson(StringValue);
    Out.push_back('"');
    return;
  case Kind::ArrayKind: {
    const Array &Items = *ArrayValue;
    if (Items.empty()) {
      Out += "[]";
      return;
    }
    Out.push_back('[');
    for (size_t I = 0; I < Items.size(); ++I) {
      if (I)
        Out.push_back(',');
      Newline(Depth + 1);
      Items[I].dumpImpl(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out.push_back(']');
    return;
  }
  case Kind::ObjectKind: {
    const Object &Obj = *ObjectValue;
    if (Obj.empty()) {
      Out += "{}";
      return;
    }
    Out.push_back('{');
    bool First = true;
    for (const auto &Member : Obj) {
      if (!First)
        Out.push_back(',');
      First = false;
      Newline(Depth + 1);
      Out.push_back('"');
      Out += escapeJson(Member.first);
      Out += Indent > 0 ? "\": " : "\":";
      Member.second.dumpImpl(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out.push_back('}');
    return;
  }
  }
}

std::string Value::dump() const {
  std::string Out;
  dumpImpl(Out, /*Indent=*/0, /*Depth=*/0);
  return Out;
}

std::string Value::dumpPretty() const {
  std::string Out;
  dumpImpl(Out, /*Indent=*/2, /*Depth=*/0);
  return Out;
}

Result<Value> parse(std::string_view Text) { return Parser(Text).run(); }

} // namespace json
} // namespace ev
