//===- tests/ide_test.cpp - JSON-RPC transport and PVP server tests -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ide/JsonRpc.h"
#include "ide/MockIde.h"
#include "ide/PvpServer.h"

#include "TestHelpers.h"
#include "proto/EvProf.h"
#include "support/FileIo.h"
#include "support/Strings.h"

#include <cmath>

#include <cstdio>

#include <gtest/gtest.h>

using namespace ev;

//===----------------------------------------------------------------------===
// JSON-RPC framing
//===----------------------------------------------------------------------===

TEST(JsonRpc, FrameAndPoll) {
  json::Value Msg = rpc::makeRequest(1, "test/echo", json::Object());
  std::string Wire = rpc::frame(Msg);
  EXPECT_NE(Wire.find("Content-Length: "), std::string::npos);

  rpc::MessageReader Reader;
  Reader.feed(Wire);
  auto Out = Reader.poll();
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(Out->asObject().find("method")->asString(), "test/echo");
  EXPECT_FALSE(Reader.poll().has_value());
}

TEST(JsonRpc, PartialFeedsBuffer) {
  std::string Wire = rpc::frame(rpc::makeNotification("n", json::Object()));
  rpc::MessageReader Reader;
  // Feed byte by byte; only the final byte completes the message.
  for (size_t I = 0; I < Wire.size(); ++I) {
    Reader.feed(Wire.substr(I, 1));
    if (I + 1 < Wire.size()) {
      EXPECT_FALSE(Reader.poll().has_value());
    }
  }
  EXPECT_TRUE(Reader.poll().has_value());
}

TEST(JsonRpc, MultipleMessagesInOneFeed) {
  std::string Wire = rpc::frame(rpc::makeRequest(1, "a", json::Object())) +
                     rpc::frame(rpc::makeRequest(2, "b", json::Object()));
  rpc::MessageReader Reader;
  Reader.feed(Wire);
  auto First = Reader.poll();
  auto Second = Reader.poll();
  ASSERT_TRUE(First && Second);
  EXPECT_EQ(First->asObject().find("method")->asString(), "a");
  EXPECT_EQ(Second->asObject().find("method")->asString(), "b");
}

TEST(JsonRpc, MissingContentLengthFails) {
  rpc::MessageReader Reader;
  Reader.feed("Content-Type: application/json\r\n\r\n{}");
  EXPECT_FALSE(Reader.poll().has_value());
  EXPECT_TRUE(Reader.failed());
}

TEST(JsonRpc, BadJsonBodyFails) {
  rpc::MessageReader Reader;
  Reader.feed("Content-Length: 3\r\n\r\n{{{");
  EXPECT_FALSE(Reader.poll().has_value());
  EXPECT_TRUE(Reader.failed());
}

TEST(JsonRpc, ErrorResponseShape) {
  json::Value E = rpc::makeErrorResponse(7, rpc::MethodNotFound, "nope");
  const json::Object &Obj = E.asObject();
  EXPECT_EQ(Obj.find("id")->asInt(), 7);
  EXPECT_EQ(Obj.find("error")->asObject().find("code")->asInt(),
            rpc::MethodNotFound);
  EXPECT_EQ(Obj.find("error")->asObject().find("message")->asString(),
            "nope");
}

//===----------------------------------------------------------------------===
// PvpServer
//===----------------------------------------------------------------------===

namespace {

class PvpTest : public ::testing::Test {
protected:
  void SetUp() override {
    Profile P = test::makeFixedProfile();
    Bytes = writeEvProf(P);
    Result<int64_t> Id = Ide.openProfile("fixed.evprof", Bytes);
    ASSERT_TRUE(Id.ok()) << Id.error();
    ProfileId = *Id;
  }

  NodeId nodeNamed(std::string_view Name) {
    const Profile *P = Ide.server().profile(ProfileId);
    for (NodeId Id = 0; Id < P->nodeCount(); ++Id)
      if (P->nameOf(Id) == Name)
        return Id;
    return InvalidNode;
  }

  MockIde Ide;
  std::string Bytes;
  int64_t ProfileId = 0;
};

} // namespace

TEST_F(PvpTest, OpenReportsMetrics) {
  Result<json::Value> R = Ide.call("pvp/open", [&] {
    json::Object P;
    P.set("name", "again");
    P.set("dataBase64", base64Encode(Bytes));
    return P;
  }());
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->asObject().find("nodes")->asInt(), 6);
  EXPECT_EQ(R->asObject()
                .find("metrics")
                ->asArray()[0]
                .asObject()
                .find("name")
                ->asString(),
            "time");
}

TEST_F(PvpTest, OpenAcceptsInlineTextData) {
  Result<json::Value> R = Ide.call("pvp/open", [] {
    json::Object P;
    P.set("name", "folded");
    P.set("data", "main;work 5\n");
    return P;
  }());
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->asObject().find("nodes")->asInt(), 3);
}

TEST_F(PvpTest, OpenRejectsGarbage) {
  Result<json::Value> R = Ide.call("pvp/open", [] {
    json::Object P;
    P.set("data", "complete nonsense");
    return P;
  }());
  EXPECT_FALSE(R.ok());
}

TEST_F(PvpTest, OpenRejectsBadBase64) {
  Result<json::Value> R = Ide.call("pvp/open", [] {
    json::Object P;
    P.set("dataBase64", "!!!not-base64!!!");
    return P;
  }());
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("base64"), std::string::npos);
}

TEST_F(PvpTest, FlameShapes) {
  for (const char *Shape : {"top-down", "bottom-up", "flat"}) {
    Result<json::Value> R = Ide.call("pvp/flame", [&] {
      json::Object P;
      P.set("profile", ProfileId);
      P.set("shape", Shape);
      return P;
    }());
    ASSERT_TRUE(R.ok()) << Shape << ": " << R.error();
    EXPECT_GT(R->asObject().find("rects")->asArray().size(), 1u) << Shape;
    EXPECT_DOUBLE_EQ(R->asObject().find("total")->asNumber(), 100.0)
        << Shape;
  }
}

TEST_F(PvpTest, FlameRejectsUnknownShape) {
  Result<json::Value> R = Ide.call("pvp/flame", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    P.set("shape", "sideways");
    return P;
  }());
  EXPECT_FALSE(R.ok());
}

TEST_F(PvpTest, FlameRespectsMaxRects) {
  Result<json::Value> R = Ide.call("pvp/flame", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    P.set("maxRects", 2);
    return P;
  }());
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->asObject().find("rects")->asArray().size(), 2u);
}

TEST_F(PvpTest, CodeLinkMandatoryAction) {
  Result<bool> Linked = Ide.clickNode(ProfileId, nodeNamed("kernel"));
  ASSERT_TRUE(Linked.ok()) << Linked.error();
  EXPECT_TRUE(*Linked);
  ASSERT_EQ(Ide.navigations().size(), 1u);
  EXPECT_EQ(Ide.navigations()[0].File, "comp.cc");
  EXPECT_EQ(Ide.navigations()[0].Line, 30u);
}

TEST_F(PvpTest, CodeLinkUnavailableWithoutMapping) {
  Result<bool> Linked = Ide.clickNode(ProfileId, nodeNamed("memcpy"));
  ASSERT_TRUE(Linked.ok());
  EXPECT_FALSE(*Linked);
  EXPECT_TRUE(Ide.navigations().empty());
}

TEST_F(PvpTest, HoverListsAllMetrics) {
  Result<std::string> Hover = Ide.hoverNode(ProfileId, nodeNamed("compute"));
  ASSERT_TRUE(Hover.ok()) << Hover.error();
  EXPECT_NE(Hover->find("compute"), std::string::npos);
  EXPECT_NE(Hover->find("inclusive"), std::string::npos);
  EXPECT_NE(Hover->find("exclusive"), std::string::npos);
  EXPECT_NE(Hover->find("time"), std::string::npos);
}

TEST_F(PvpTest, CodeLensAggregatesPerLine) {
  Result<json::Value> R = Ide.call("pvp/codeLens", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    P.set("file", "comp.cc");
    return P;
  }());
  ASSERT_TRUE(R.ok()) << R.error();
  const json::Array &Lenses = R->asObject().find("lenses")->asArray();
  ASSERT_EQ(Lenses.size(), 2u); // Lines 20 (compute) and 30 (kernel).
  EXPECT_EQ(Lenses[0].asObject().find("line")->asInt(), 20);
  EXPECT_NE(Lenses[1].asObject().find("text")->stringOr("").find("time"),
            std::string::npos);
}

TEST_F(PvpTest, SummaryAction) {
  Result<json::Value> R = Ide.call("pvp/summary", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    return P;
  }());
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R->asObject().find("text")->asString().find("contexts: 6"),
            std::string::npos);
}

TEST_F(PvpTest, SearchFindsNodes) {
  Result<json::Value> R = Ide.call("pvp/search", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    P.set("pattern", "compute");
    return P;
  }());
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->asObject().find("count")->asInt(), 1);
}

TEST_F(PvpTest, TreeTableReturnsRows) {
  Result<json::Value> R = Ide.call("pvp/treeTable", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    return P;
  }());
  ASSERT_TRUE(R.ok());
  EXPECT_GE(R->asObject().find("rows")->asArray().size(), 4u);
  EXPECT_NE(R->asObject().find("text")->asString().find("kernel"),
            std::string::npos);
}

TEST_F(PvpTest, AggregateAndHistogram) {
  // Open the same bytes twice more, then aggregate all three.
  int64_t Id2 = *Ide.openProfile("s2", Bytes);
  int64_t Id3 = *Ide.openProfile("s3", Bytes);
  Result<json::Value> Agg = Ide.call("pvp/aggregate", [&] {
    json::Object P;
    json::Array Ids;
    Ids.push_back(ProfileId);
    Ids.push_back(Id2);
    Ids.push_back(Id3);
    P.set("profiles", std::move(Ids));
    return P;
  }());
  ASSERT_TRUE(Agg.ok()) << Agg.error();
  int64_t AggId = Agg->asObject().find("profile")->asInt();
  EXPECT_EQ(Agg->asObject().find("inputs")->asInt(), 3);

  // Histogram of the kernel context across the three "snapshots".
  const Profile *Merged = Ide.server().profile(AggId);
  ASSERT_NE(Merged, nullptr);
  NodeId Kernel = InvalidNode;
  for (NodeId Id = 0; Id < Merged->nodeCount(); ++Id)
    if (Merged->nameOf(Id) == "kernel")
      Kernel = Id;
  Result<json::Value> Hist = Ide.call("pvp/histogram", [&] {
    json::Object P;
    P.set("aggregate", AggId);
    P.set("node", Kernel);
    P.set("metric", 0);
    return P;
  }());
  ASSERT_TRUE(Hist.ok()) << Hist.error();
  const json::Array &Series = Hist->asObject().find("series")->asArray();
  ASSERT_EQ(Series.size(), 3u);
  EXPECT_DOUBLE_EQ(Series[0].asNumber(), 40.0);
}

TEST_F(PvpTest, DiffCountsTags) {
  int64_t Id2 = *Ide.openProfile("other", Bytes);
  Result<json::Value> R = Ide.call("pvp/diff", [&] {
    json::Object P;
    P.set("base", ProfileId);
    P.set("test", Id2);
    return P;
  }());
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->asObject().find("added")->asInt(), 0);
  EXPECT_EQ(R->asObject().find("deleted")->asInt(), 0);
}

TEST_F(PvpTest, QueryRunsEvql) {
  Result<json::Value> R = Ide.call("pvp/query", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    P.set("program", "derive x = 2 * exclusive(\"time\");"
                     "print total(\"time\");");
    return P;
  }());
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->asObject().find("printed")->asArray()[0].asString(), "100");
  EXPECT_EQ(R->asObject().find("derived")->asArray()[0].asString(), "x");
  int64_t NewId = R->asObject().find("profile")->asInt();
  EXPECT_NE(Ide.server().profile(NewId), nullptr);
}

TEST_F(PvpTest, QuerySurfacesLanguageErrors) {
  Result<json::Value> R = Ide.call("pvp/query", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    P.set("program", "derive x = metric(\"missing\");");
    return P;
  }());
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("missing"), std::string::npos);
}

TEST_F(PvpTest, UnknownMethodError) {
  Result<json::Value> R = Ide.call("pvp/teleport", json::Object());
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("unknown method"), std::string::npos);
}

TEST_F(PvpTest, MissingProfileError) {
  Result<json::Value> R = Ide.call("pvp/summary", [] {
    json::Object P;
    P.set("profile", 4242);
    return P;
  }());
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("4242"), std::string::npos);
}

TEST_F(PvpTest, CloseRemovesProfile) {
  Result<json::Value> R = Ide.call("pvp/close", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    return P;
  }());
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R->asObject().find("closed")->asBool());
  EXPECT_EQ(Ide.server().profile(ProfileId), nullptr);
}

TEST(PvpServerWire, BadFrameYieldsParseError) {
  PvpServer Server;
  std::string Out = Server.handleWire("Content-Length: 2\r\n\r\n!!");
  EXPECT_NE(Out.find("-32700"), std::string::npos);
}

TEST(PvpServerWire, RequestWithoutMethodRejected) {
  PvpServer Server;
  json::Object Msg;
  Msg.set("jsonrpc", "2.0");
  Msg.set("id", 5);
  std::string Out = Server.handleWire(rpc::frame(json::Value(Msg)));
  EXPECT_NE(Out.find("-32600"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Wire resilience: split delivery, resynchronization, frame caps
//===----------------------------------------------------------------------===

namespace {

/// Deframes a handleWire() reply into its individual JSON payloads.
std::vector<json::Value> deframe(std::string_view Wire) {
  rpc::FrameReader Reader;
  Reader.feed(Wire);
  std::vector<json::Value> Out;
  while (auto V = Reader.poll())
    Out.push_back(std::move(*V));
  return Out;
}

/// A pvp/open request frame carrying the fixed profile inline.
std::string openFrame(int64_t Id, const std::string &Bytes) {
  json::Object P;
  P.set("name", "wire.evprof");
  P.set("dataBase64", base64Encode(Bytes));
  return rpc::frame(rpc::makeRequest(Id, "pvp/open", P));
}

bool isErrorWithCode(const json::Value &Resp, int Code) {
  const json::Value *E = Resp.asObject().find("error");
  return E && E->asObject().find("code")->asInt() == Code;
}

bool isSuccess(const json::Value &Resp) {
  return Resp.asObject().find("result") != nullptr;
}

} // namespace

TEST(PvpServerWire, SplitDeliveryProducesAllResponses) {
  // Two requests, delivered one byte at a time: fragment boundaries land
  // inside headers and bodies, yet both requests are answered exactly once.
  PvpServer Server;
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  json::Object SummaryParams;
  SummaryParams.set("profile", 1);
  std::string Wire = openFrame(1, Bytes) +
                     rpc::frame(rpc::makeRequest(2, "pvp/summary",
                                                 SummaryParams));
  std::string Out;
  for (size_t I = 0; I < Wire.size(); ++I)
    Out += Server.handleWire(Wire.substr(I, 1));

  std::vector<json::Value> Responses = deframe(Out);
  ASSERT_EQ(Responses.size(), 2u);
  EXPECT_TRUE(isSuccess(Responses[0]));
  EXPECT_TRUE(isSuccess(Responses[1]));
  EXPECT_EQ(Server.wireReader().bufferedBytes(), 0u);
}

TEST(PvpServerWire, CorruptHeaderThenValidFrameRecovers) {
  // A mangled Content-Length poisons one frame only: the server reports
  // it and the following request on the same stream still succeeds.
  PvpServer Server;
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  std::string Wire = "Content-Length: zzz\r\n\r\n{\"oops\":1}";
  Wire += openFrame(7, Bytes);
  std::string Out = Server.handleWire(Wire);

  std::vector<json::Value> Responses = deframe(Out);
  ASSERT_GE(Responses.size(), 2u);
  EXPECT_TRUE(isErrorWithCode(Responses.front(), rpc::ParseError));
  EXPECT_TRUE(isSuccess(Responses.back()));
  EXPECT_GE(Server.wireReader().resyncCount(), 1u);
  EXPECT_GT(Server.wireReader().droppedBytes(), 0u);
}

TEST(PvpServerWire, NegativeContentLengthRejectedAndRecovered) {
  PvpServer Server;
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  std::string Wire = "Content-Length: -5\r\n\r\n";
  Wire += openFrame(9, Bytes);
  std::string Out = Server.handleWire(Wire);

  std::vector<json::Value> Responses = deframe(Out);
  ASSERT_GE(Responses.size(), 2u);
  EXPECT_TRUE(isErrorWithCode(Responses.front(), rpc::ParseError));
  EXPECT_NE(Out.find("negative"), std::string::npos);
  EXPECT_TRUE(isSuccess(Responses.back()));
}

TEST(PvpServerWire, OversizedFrameSkippedWithoutBuffering) {
  ServerLimits L;
  L.Wire.MaxFrameBytes = 128;
  PvpServer Server(L);

  // Announce a body far over the cap; the reader must discard it as it
  // arrives instead of accumulating it.
  std::string Huge(4096, 'x');
  std::string Wire = "Content-Length: 4096\r\n\r\n" + Huge;

  std::string Out = Server.handleWire(Wire);
  EXPECT_NE(Out.find("-32000"), std::string::npos);
  // The oversized body was never buffered.
  EXPECT_LE(Server.wireReader().bufferedBytes(), 128u);

  // The session keeps answering once frames under the cap resume.
  std::string Small =
      rpc::frame(rpc::makeRequest(4, "pvp/teleport", json::Object()));
  Out = Server.handleWire(Small);
  EXPECT_NE(Out.find("-32601"), std::string::npos);
}

TEST(PvpServerWire, GarbageBetweenFramesIsSkipped) {
  PvpServer Server;
  std::string Bytes = writeEvProf(test::makeFixedProfile());
  std::string Wire = openFrame(1, Bytes);
  Wire += "\x01\x02garbage bytes with no header\x7f";
  Wire += openFrame(2, Bytes);
  std::string Out = Server.handleWire(Wire);

  std::vector<json::Value> Responses = deframe(Out);
  size_t Successes = 0;
  for (const json::Value &R : Responses)
    Successes += isSuccess(R);
  EXPECT_EQ(Successes, 2u);
  EXPECT_EQ(Server.profileCount(), 2u);
}

//===----------------------------------------------------------------------===
// Guardrails: deadlines, degradation, open limits, retry
//===----------------------------------------------------------------------===

TEST(PvpServerLimits, RequestDeadlineMapsToTimeoutCode) {
  ServerLimits L;
  L.RequestDeadlineMs = 5;
  PvpServer Server(L);
  int64_t Id = Server.addProfile(test::makeRandomProfile(7));

  // Every clock read advances far past the deadline, so the first
  // in-handler check trips.
  uint64_t Now = 0;
  Server.setClock([&Now] {
    Now += 1000000;
    return Now;
  });

  json::Object P;
  P.set("profile", Id);
  P.set("pattern", "fn");
  json::Value Resp = Server.handleMessage(rpc::makeRequest(3, "pvp/search", P));
  ASSERT_TRUE(isErrorWithCode(Resp, rpc::RequestTimeout));
  EXPECT_NE(Resp.asObject()
                .find("error")
                ->asObject()
                .find("message")
                ->asString()
                .find("deadline"),
            std::string::npos);

  // Restoring the real clock un-wedges the session.
  Server.setClock(nullptr);
  Resp = Server.handleMessage(rpc::makeRequest(4, "pvp/search", P));
  EXPECT_TRUE(isSuccess(Resp));
}

TEST(PvpServerLimits, FlameDegradesInsteadOfFailing) {
  ServerLimits L;
  L.MaxFlameRects = 3;
  PvpServer Server(L);
  int64_t Id = Server.addProfile(test::makeFixedProfile());

  json::Object P;
  P.set("profile", Id);
  json::Value Resp = Server.handleMessage(rpc::makeRequest(1, "pvp/flame", P));
  ASSERT_TRUE(isSuccess(Resp));
  const json::Object &R = Resp.asObject().find("result")->asObject();
  EXPECT_LE(R.find("rects")->asArray().size(), 3u);
  EXPECT_TRUE(R.find("truncated")->asBool());
  EXPECT_GT(R.find("droppedRects")->asInt(), 0);
}

TEST(PvpServerLimits, TreeTableDegradesInsteadOfFailing) {
  ServerLimits L;
  L.MaxTreeTableRows = 2;
  PvpServer Server(L);
  int64_t Id = Server.addProfile(test::makeFixedProfile());

  json::Object P;
  P.set("profile", Id);
  json::Value Resp =
      Server.handleMessage(rpc::makeRequest(1, "pvp/treeTable", P));
  ASSERT_TRUE(isSuccess(Resp));
  const json::Object &R = Resp.asObject().find("result")->asObject();
  EXPECT_LE(R.find("rows")->asArray().size(), 2u);
  EXPECT_TRUE(R.find("truncated")->asBool());
  EXPECT_GT(R.find("droppedRows")->asInt(), 0);
}

TEST(PvpServerLimits, OpenRejectsOversizedPayload) {
  ServerLimits L;
  L.MaxOpenBytes = 64;
  PvpServer Server(L);

  std::string Bytes = writeEvProf(test::makeFixedProfile());
  ASSERT_GT(Bytes.size(), 64u);
  json::Object P;
  P.set("name", "big.evprof");
  P.set("dataBase64", base64Encode(Bytes));
  json::Value Resp = Server.handleMessage(rpc::makeRequest(1, "pvp/open", P));
  ASSERT_FALSE(isSuccess(Resp));
  EXPECT_NE(Resp.asObject()
                .find("error")
                ->asObject()
                .find("message")
                ->asString()
                .find("exceeds"),
            std::string::npos);
  EXPECT_EQ(Server.profileCount(), 0u);
}

TEST(PvpServerLimits, OpenByPathRetriesTransientFailures) {
  std::string Path = "/tmp/evtool_test_open_retry.evprof";
  ASSERT_TRUE(writeFile(Path, writeEvProf(test::makeFixedProfile())).ok());

  // Fail the first two read attempts; the third succeeds. Record the
  // backoff schedule instead of sleeping.
  unsigned Attempts = 0;
  setReadFaultHook([&Attempts](const std::string &, unsigned Attempt,
                               std::string &Message) {
    ++Attempts;
    if (Attempt < 2) {
      Message = "simulated transient read failure";
      return true;
    }
    return false;
  });
  std::vector<uint64_t> Sleeps;
  setRetrySleepHook([&Sleeps](uint64_t Ms) { Sleeps.push_back(Ms); });

  PvpServer Server;
  json::Object P;
  P.set("path", Path);
  json::Value Resp = Server.handleMessage(rpc::makeRequest(1, "pvp/open", P));

  setReadFaultHook(nullptr);
  setRetrySleepHook(nullptr);
  std::remove(Path.c_str());

  ASSERT_TRUE(isSuccess(Resp));
  EXPECT_EQ(Attempts, 3u);
  ASSERT_EQ(Sleeps.size(), 2u);
  EXPECT_EQ(Sleeps[0], 10u);
  EXPECT_EQ(Sleeps[1], 20u); // Doubled, still under MaxBackoffMs.
  EXPECT_EQ(Server.profileCount(), 1u);
}

TEST(PvpServerLimits, OpenByPathGivesUpAfterBoundedAttempts) {
  setReadFaultHook([](const std::string &, unsigned, std::string &Message) {
    Message = "persistent failure";
    return true;
  });
  setRetrySleepHook([](uint64_t) {});

  PvpServer Server;
  json::Object P;
  P.set("path", "/tmp/evtool_test_never_readable.evprof");
  json::Value Resp = Server.handleMessage(rpc::makeRequest(1, "pvp/open", P));

  setReadFaultHook(nullptr);
  setRetrySleepHook(nullptr);

  ASSERT_FALSE(isSuccess(Resp));
  EXPECT_NE(Resp.asObject()
                .find("error")
                ->asObject()
                .find("message")
                ->asString()
                .find("attempts"),
            std::string::npos);
}

TEST(PvpServerLimits, DecodeLimitsRejectHostileProfile) {
  ServerLimits L;
  L.Decode.MaxNodes = 3; // Fixed profile has 6 nodes.
  PvpServer Server(L);

  std::string Bytes = writeEvProf(test::makeFixedProfile());
  json::Object P;
  P.set("name", "dense.evprof");
  P.set("dataBase64", base64Encode(Bytes));
  json::Value Resp = Server.handleMessage(rpc::makeRequest(1, "pvp/open", P));
  ASSERT_FALSE(isSuccess(Resp));
  EXPECT_NE(Resp.asObject()
                .find("error")
                ->asObject()
                .find("message")
                ->asString()
                .find("limit"),
            std::string::npos);
}

//===----------------------------------------------------------------------===
// pvp/diagnostics
//===----------------------------------------------------------------------===

TEST_F(PvpTest, DiagnosticsRoundTripThroughWire) {
  // Program findings and profile validation batched in one reply, driven
  // through the real Content-Length framing by the mock editor.
  Result<json::Value> R = Ide.call("pvp/diagnostics", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    P.set("program", "let unused = 1;\nprint total(\"bogus\");");
    return P;
  }());
  ASSERT_TRUE(R.ok()) << R.error();
  const json::Object &Reply = R->asObject();
  const json::Array &Diags = Reply.find("diagnostics")->asArray();
  ASSERT_GE(Diags.size(), 2u);

  bool SawUnusedBinding = false, SawUnknownMetric = false;
  for (const json::Value &DV : Diags) {
    const json::Object &D = DV.asObject();
    EXPECT_FALSE(D.find("id")->asString().empty());
    EXPECT_FALSE(D.find("severity")->asString().empty());
    EXPECT_FALSE(D.find("message")->asString().empty());
    if (D.find("id")->asString() == "EVQL009") {
      SawUnusedBinding = true;
      EXPECT_EQ(D.find("line")->asInt(), 1);
      EXPECT_EQ(D.find("column")->asInt(), 1);
    }
    if (D.find("id")->asString() == "EVQL006")
      SawUnknownMetric = true;
  }
  EXPECT_TRUE(SawUnusedBinding);
  EXPECT_TRUE(SawUnknownMetric);
  EXPECT_GE(Reply.find("errors")->asInt(), 1);
  EXPECT_GE(Reply.find("warnings")->asInt(), 1);
  EXPECT_FALSE(Reply.find("truncated")->asBool());
}

TEST_F(PvpTest, DiagnosticsCleanProfileAndProgram) {
  Result<json::Value> R = Ide.call("pvp/diagnostics", [&] {
    json::Object P;
    P.set("profile", ProfileId);
    P.set("program", "print total(\"time\");");
    return P;
  }());
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_TRUE(R->asObject().find("diagnostics")->asArray().empty());
  EXPECT_EQ(R->asObject().find("errors")->asInt(), 0);
  EXPECT_EQ(R->asObject().find("warnings")->asInt(), 0);
}

TEST_F(PvpTest, DiagnosticsRequiresProgramOrProfile) {
  Result<json::Value> R = Ide.call("pvp/diagnostics", json::Object());
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("program"), std::string::npos);
}

TEST_F(PvpTest, DiagnosticsRejectsBadOptions) {
  Result<json::Value> Bad = Ide.call("pvp/diagnostics", [&] {
    json::Object P;
    P.set("program", "print 1;");
    P.set("minSeverity", "catastrophic");
    return P;
  }());
  EXPECT_FALSE(Bad.ok());

  Result<json::Value> Unknown = Ide.call("pvp/diagnostics", [&] {
    json::Object P;
    P.set("program", "print 1;");
    json::Array Disable;
    Disable.push_back(json::Value("no-such-rule"));
    P.set("disable", std::move(Disable));
    return P;
  }());
  EXPECT_FALSE(Unknown.ok());
}

TEST_F(PvpTest, DiagnosticsSeverityAndDisableFilters) {
  // EVQL009 is a warning: a minSeverity of "error" suppresses it...
  Result<json::Value> Filtered = Ide.call("pvp/diagnostics", [&] {
    json::Object P;
    P.set("program", "let unused = 1;");
    P.set("minSeverity", "error");
    return P;
  }());
  ASSERT_TRUE(Filtered.ok()) << Filtered.error();
  EXPECT_TRUE(Filtered->asObject().find("diagnostics")->asArray().empty());
  EXPECT_EQ(Filtered->asObject().find("warnings")->asInt(), 0);

  // ...and so does disabling the rule by name.
  Result<json::Value> Disabled = Ide.call("pvp/diagnostics", [&] {
    json::Object P;
    P.set("program", "let unused = 1;");
    json::Array Disable;
    Disable.push_back(json::Value("unused-binding"));
    P.set("disable", std::move(Disable));
    return P;
  }());
  ASSERT_TRUE(Disabled.ok()) << Disabled.error();
  EXPECT_TRUE(Disabled->asObject().find("diagnostics")->asArray().empty());
}

TEST_F(PvpTest, DiagnosticsHonorsMaxDiagnostics) {
  std::string Program;
  for (int I = 0; I < 10; ++I)
    Program += "print undef" + std::to_string(I) + ";\n";
  Result<json::Value> R = Ide.call("pvp/diagnostics", [&] {
    json::Object P;
    P.set("program", Program);
    P.set("maxDiagnostics", 3);
    return P;
  }());
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_LE(R->asObject().find("diagnostics")->asArray().size(), 3u);
  EXPECT_TRUE(R->asObject().find("truncated")->asBool());
  EXPECT_GT(R->asObject().find("dropped")->asInt(), 0);
}

TEST(PvpServerLimits, DiagnosticsDeadlineDegradesToTruncatedReply) {
  ServerLimits L;
  L.RequestDeadlineMs = 5;
  PvpServer Server(L);

  uint64_t Now = 0;
  Server.setClock([&Now] {
    Now += 1000000;
    return Now;
  });

  // Analysis completed; only serialization ran out of deadline — the
  // findings degrade to a truncated (but successful) reply, never an
  // error that would discard them.
  json::Object P;
  P.set("program", "print undefined_name;");
  json::Value Resp =
      Server.handleMessage(rpc::makeRequest(9, "pvp/diagnostics", P));
  ASSERT_TRUE(isSuccess(Resp));
  const json::Object &R = Resp.asObject().find("result")->asObject();
  EXPECT_TRUE(R.find("truncated")->asBool());
  EXPECT_TRUE(R.find("deadlineExpired")->asBool());
  EXPECT_GT(R.find("dropped")->asInt(), 0);
}

//===----------------------------------------------------------------------===
// Strict numeric parameter validation
//===----------------------------------------------------------------------===
//
// asInt() on a hostile double used to truncate silently (UB for NaN).
// Every id-bearing parameter now goes through getInteger(): anything that
// is not an exact int64 answers InvalidParams (-32602) instead of being
// folded onto some unrelated profile id.

namespace {

json::Value nanValue() { return json::Value(std::nan("")); }

} // namespace

TEST(PvpServerParams, NanProfileIdRejected) {
  PvpServer Server;
  Server.addProfile(test::makeFixedProfile());
  json::Object P;
  P.set("profile", nanValue());
  json::Value R = Server.handleMessage(rpc::makeRequest(1, "pvp/flame", P));
  EXPECT_TRUE(isErrorWithCode(R, rpc::InvalidParams));
}

TEST(PvpServerParams, FractionalProfileIdRejected) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  // 1.5 would have truncated onto profile 1 before; it must not resolve.
  json::Object P;
  P.set("profile", static_cast<double>(Id) + 0.5);
  for (const char *Method : {"pvp/flame", "pvp/treeTable", "pvp/summary",
                             "pvp/close"}) {
    json::Value R = Server.handleMessage(rpc::makeRequest(1, Method, P));
    EXPECT_TRUE(isErrorWithCode(R, rpc::InvalidParams)) << Method;
  }
  // The real id still works after all those rejections.
  json::Object Good;
  Good.set("profile", Id);
  EXPECT_TRUE(isSuccess(
      Server.handleMessage(rpc::makeRequest(2, "pvp/summary", Good))));
}

TEST(PvpServerParams, OutOfRangeProfileIdRejected) {
  PvpServer Server;
  Server.addProfile(test::makeFixedProfile());
  json::Object P;
  P.set("profile", 1e300); // Far beyond int64: must not wrap or truncate.
  json::Value R =
      Server.handleMessage(rpc::makeRequest(1, "pvp/treeTable", P));
  EXPECT_TRUE(isErrorWithCode(R, rpc::InvalidParams));
}

TEST(PvpServerParams, NegativeAndNanMaxRectsRejected) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  for (json::Value Bad : {json::Value(-1), nanValue(), json::Value(2.5)}) {
    json::Object P;
    P.set("profile", Id);
    P.set("maxRects", std::move(Bad));
    json::Value R =
        Server.handleMessage(rpc::makeRequest(1, "pvp/flame", P));
    EXPECT_TRUE(isErrorWithCode(R, rpc::InvalidParams));
  }
}

TEST(PvpServerParams, DiffRejectsNonIntegerIds) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  json::Object P;
  P.set("base", nanValue());
  P.set("test", Id);
  json::Value R = Server.handleMessage(rpc::makeRequest(1, "pvp/diff", P));
  EXPECT_TRUE(isErrorWithCode(R, rpc::InvalidParams));
}
