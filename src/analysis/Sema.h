//===- analysis/Sema.h - EVQL semantic analyzer ---------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static semantic analysis for EVQL programs, powering the editor-side
/// diagnostics of the paper's "profile query" view: the checker walks a
/// parsed (or error-recovered) program and reports IDE-style findings with
/// line:column spans and stable ids — without ever executing the program.
///
/// Checks implemented (catalogued with examples in docs/ANALYSIS.md):
///   EVQL001 syntax-error          parse failures (with statement recovery)
///   EVQL002 undefined-identifier  use of a name with no 'let' binding
///   EVQL003 unknown-builtin       call target is not a builtin
///   EVQL004 wrong-arity           builtin called with wrong argument count
///   EVQL005 type-mismatch         flow-insensitive type-lattice violations
///   EVQL006 unknown-metric        metric name absent from the profile
///   EVQL007 division-by-zero      '/' or '%' by a constant zero
///   EVQL008 constant-condition    condition folds to always-true/false
///   EVQL009 unused-binding        'let' binding never referenced
///   EVQL010 unreachable-code      statements after 'return'
///   EVQL011 node-context          node builtin outside derive/prune/keep
///   EVQL012 expr-too-deep         nesting beyond AnalysisLimits
///   EVQL013 program-too-large     source beyond AnalysisLimits
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_SEMA_H
#define EASYVIEW_ANALYSIS_SEMA_H

#include "analysis/Diagnostic.h"
#include "query/Ast.h"
#include "support/Limits.h"

#include <string_view>

namespace ev {

/// The flow-insensitive type lattice the checker infers over. Unknown is
/// both top (no information) and the recovery type after an error, so one
/// mistake produces one diagnostic instead of a cascade. NodeSet is the
/// type of the implicit selection prune/keep statements operate on; no
/// expression produces it today, but the lattice reserves it so rules can
/// speak about statement-level values uniformly.
enum class SemaType : uint8_t { Number, String, Bool, NodeSet, Unknown };

/// \returns a stable lowercase name ("number", "string", ...).
std::string_view semaTypeName(SemaType Type);

/// Registry entry describing one semantic check.
struct SemaCheckInfo {
  std::string_view Id;   ///< Stable id, e.g. "EVQL002".
  std::string_view Name; ///< Stable kebab-case name.
  Severity DefaultSev;
  std::string_view Description;
};

/// The full check registry, in id order.
const std::vector<SemaCheckInfo> &semaChecks();

/// Looks a check up by id ("EVQL005") or name ("type-mismatch").
/// \returns nullptr when unknown.
const SemaCheckInfo *findSemaCheck(std::string_view IdOrName);

/// Configuration for a semantic check.
struct SemaOptions {
  /// When set, metric-name arguments of metric()/exclusive()/inclusive()/
  /// total()/share() that are string constants are validated against this
  /// profile's metric table (plus metrics derived earlier in the program).
  /// When null the EVQL006 check is skipped.
  const Profile *MetricSource = nullptr;
  AnalysisLimits Limits = AnalysisLimits::defaults();
};

/// The EVQL semantic analyzer. Stateless across runs; one instance can
/// check many programs.
class SemaChecker {
public:
  explicit SemaChecker(SemaOptions Opts = {}) : Opts(Opts) {}

  /// Checks a parsed program, appending findings to \p Out.
  void check(const evql::Program &Prog, DiagnosticSet &Out) const;

  /// Parses \p Source with statement-level error recovery (syntax errors
  /// become EVQL001 findings) and checks whatever parsed. The combined
  /// entry point 'evtool check' and pvp/diagnostics use.
  void checkSource(std::string_view Source, DiagnosticSet &Out) const;

  const SemaOptions &options() const { return Opts; }

private:
  SemaOptions Opts;
};

} // namespace ev

#endif // EASYVIEW_ANALYSIS_SEMA_H
