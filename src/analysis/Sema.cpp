//===- analysis/Sema.cpp - EVQL semantic analyzer -------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Sema.h"

#include "query/Parser.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

namespace ev {

std::string_view semaTypeName(SemaType Type) {
  switch (Type) {
  case SemaType::Number:
    return "number";
  case SemaType::String:
    return "string";
  case SemaType::Bool:
    return "bool";
  case SemaType::NodeSet:
    return "node-set";
  case SemaType::Unknown:
    return "unknown";
  }
  return "unknown";
}

const std::vector<SemaCheckInfo> &semaChecks() {
  static const std::vector<SemaCheckInfo> Checks = {
      {"EVQL001", "syntax-error", Severity::Error,
       "the statement does not parse; recovery resumes at the next ';'"},
      {"EVQL002", "undefined-identifier", Severity::Error,
       "use of a name no 'let' statement binds"},
      {"EVQL003", "unknown-builtin", Severity::Error,
       "call target is not an EVQL builtin"},
      {"EVQL004", "wrong-arity", Severity::Error,
       "builtin called with the wrong number of arguments"},
      {"EVQL005", "type-mismatch", Severity::Error,
       "value of one type used where another is required"},
      {"EVQL006", "unknown-metric", Severity::Error,
       "metric name not present in the profile or derived earlier"},
      {"EVQL007", "division-by-zero", Severity::Warning,
       "'/' or '%' by a constant zero (EVQL defines the result as 0)"},
      {"EVQL008", "constant-condition", Severity::Warning,
       "condition folds to a compile-time constant"},
      {"EVQL009", "unused-binding", Severity::Warning,
       "'let' binding never referenced"},
      {"EVQL010", "unreachable-code", Severity::Warning,
       "statements after 'return' never execute"},
      {"EVQL011", "node-context", Severity::Error,
       "node builtin used outside derive/prune/keep"},
      {"EVQL012", "expr-too-deep", Severity::Error,
       "expression nesting exceeds AnalysisLimits::MaxExprDepth"},
      {"EVQL013", "program-too-large", Severity::Error,
       "source exceeds AnalysisLimits::MaxProgramBytes"},
  };
  return Checks;
}

const SemaCheckInfo *findSemaCheck(std::string_view IdOrName) {
  for (const SemaCheckInfo &Check : semaChecks())
    if (Check.Id == IdOrName || Check.Name == IdOrName)
      return &Check;
  return nullptr;
}

namespace {

using evql::Expr;
using evql::Program;
using evql::Stmt;
using evql::TokenKind;

/// A folded compile-time constant. Folding mirrors the interpreter exactly
/// (x / 0 == 0, bool-to-number coercion, ...) so EVQL008/EVQL007 never
/// claim something the runtime would contradict.
struct ConstVal {
  enum class Kind : uint8_t { None, Num, Str, Bool };
  Kind K = Kind::None;
  double Num = 0.0;
  bool B = false;
  std::string Str;

  static ConstVal num(double V) {
    ConstVal C;
    C.K = Kind::Num;
    C.Num = V;
    return C;
  }
  static ConstVal str(std::string V) {
    ConstVal C;
    C.K = Kind::Str;
    C.Str = std::move(V);
    return C;
  }
  static ConstVal boolean(bool V) {
    ConstVal C;
    C.K = Kind::Bool;
    C.B = V;
    return C;
  }
};

/// Truthiness under the interpreter's evalBool: bools as-is, numbers
/// against zero, strings are not conditions.
std::optional<bool> truthy(const ConstVal &C) {
  if (C.K == ConstVal::Kind::Bool)
    return C.B;
  if (C.K == ConstVal::Kind::Num)
    return C.Num != 0.0;
  return std::nullopt;
}

/// Numeric value under the interpreter's evalNumber coercions.
std::optional<double> asNumber(const ConstVal &C) {
  if (C.K == ConstVal::Kind::Num)
    return C.Num;
  if (C.K == ConstVal::Kind::Bool)
    return C.B ? 1.0 : 0.0;
  return std::nullopt;
}

/// What the checker knows about one expression.
struct ExprInfo {
  SemaType Type = SemaType::Unknown;
  ConstVal Const;
};

/// Signature of one interpreter builtin (query/Interpreter.cpp evalCall is
/// the source of truth; sema_test locks the two tables together).
struct BuiltinSig {
  std::string_view Name;
  uint8_t Arity;
  SemaType Args[2];
  SemaType Ret;
  bool NeedsNode;   ///< Usable only under derive/prune/keep.
  bool MetricName;  ///< First argument names a metric column.
};

constexpr SemaType TyN = SemaType::Number;
constexpr SemaType TyS = SemaType::String;
constexpr SemaType TyB = SemaType::Bool;
constexpr SemaType TyAny = SemaType::Unknown;

constexpr BuiltinSig Builtins[] = {
    {"metric", 1, {TyS, TyAny}, TyN, true, true},
    {"exclusive", 1, {TyS, TyAny}, TyN, true, true},
    {"inclusive", 1, {TyS, TyAny}, TyN, true, true},
    {"total", 1, {TyS, TyAny}, TyN, false, true},
    {"share", 1, {TyS, TyAny}, TyN, true, true},
    {"nodecount", 0, {TyAny, TyAny}, TyN, false, false},
    {"name", 0, {TyAny, TyAny}, TyS, true, false},
    {"file", 0, {TyAny, TyAny}, TyS, true, false},
    {"module", 0, {TyAny, TyAny}, TyS, true, false},
    {"kind", 0, {TyAny, TyAny}, TyS, true, false},
    {"line", 0, {TyAny, TyAny}, TyN, true, false},
    {"depth", 0, {TyAny, TyAny}, TyN, true, false},
    {"nchildren", 0, {TyAny, TyAny}, TyN, true, false},
    {"isleaf", 0, {TyAny, TyAny}, TyB, true, false},
    {"parentname", 0, {TyAny, TyAny}, TyS, true, false},
    {"hasancestor", 1, {TyS, TyAny}, TyB, true, false},
    {"min", 2, {TyN, TyN}, TyN, false, false},
    {"max", 2, {TyN, TyN}, TyN, false, false},
    {"ratio", 2, {TyN, TyN}, TyN, false, false},
    {"abs", 1, {TyN, TyAny}, TyN, false, false},
    {"log", 1, {TyN, TyAny}, TyN, false, false},
    {"sqrt", 1, {TyN, TyAny}, TyN, false, false},
    {"floor", 1, {TyN, TyAny}, TyN, false, false},
    {"ceil", 1, {TyN, TyAny}, TyN, false, false},
    {"contains", 2, {TyS, TyS}, TyB, false, false},
    {"startswith", 2, {TyS, TyS}, TyB, false, false},
    {"endswith", 2, {TyS, TyS}, TyB, false, false},
    {"str", 1, {TyAny, TyAny}, TyS, false, false},
    {"fmt", 2, {TyN, TyN}, TyS, false, false},
};

const BuiltinSig *findBuiltin(std::string_view Name) {
  for (const BuiltinSig &Sig : Builtins)
    if (Sig.Name == Name)
      return &Sig;
  return nullptr;
}

/// Can a value of \p Actual flow where \p Want is required, under the
/// interpreter's coercions? Unknown on either side stays quiet: one
/// diagnostic per root cause, no cascades.
bool compatible(SemaType Actual, SemaType Want) {
  if (Actual == SemaType::Unknown || Want == SemaType::Unknown)
    return true;
  if (Actual == Want)
    return true;
  if (Want == SemaType::Number)
    return Actual == SemaType::Bool;
  if (Want == SemaType::Bool)
    return Actual == SemaType::Number;
  return false;
}

/// Bounded Levenshtein distance for did-you-mean hints.
size_t editDistance(std::string_view A, std::string_view B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Prev = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Cur = Row[J];
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1,
                         Prev + (A[I - 1] == B[J - 1] ? 0 : 1)});
      Prev = Cur;
    }
  }
  return Row[B.size()];
}

/// "did you mean 'X'?" when some candidate is plausibly a typo of \p Name.
template <typename Range, typename NameOf>
std::string suggestFrom(std::string_view Name, const Range &Candidates,
                        NameOf GetName) {
  std::string_view Best;
  size_t BestDist = Name.size() >= 6 ? 3 : 2; // strictly-better threshold
  for (const auto &C : Candidates) {
    // The view is kept across iterations, so the projection must not
    // return a temporary string.
    static_assert(std::is_same_v<decltype(GetName(C)), std::string_view>,
                  "suggestFrom projection must return std::string_view");
    std::string_view Candidate = GetName(C);
    if (Candidate == Name)
      continue;
    size_t D = editDistance(Name, Candidate);
    if (D < BestDist) {
      BestDist = D;
      Best = Candidate;
    }
  }
  if (Best.empty())
    return "";
  return "did you mean '" + std::string(Best) + "'?";
}

/// One checking run over one program.
class Checker {
public:
  Checker(const SemaOptions &Opts, DiagnosticSet &Out)
      : Opts(Opts), Out(Out) {}

  void run(const Program &Prog) {
    size_t ReturnLine = 0;
    bool Returned = false;
    for (const Stmt &S : Prog.Statements) {
      if (Returned) {
        report("EVQL010", Severity::Warning, S.Line, S.Column,
               "unreachable statement: execution stops at the 'return' on "
               "line " + std::to_string(ReturnLine),
               "unreachable-code",
               "remove the statement or move it before the 'return'");
        break; // One finding covers the whole dead tail.
      }
      switch (S.TheKind) {
      case Stmt::Kind::Let: {
        ExprInfo V = checkExpr(*S.Value, /*NodeCtx=*/false, 0);
        Binding &Slot = Bindings[S.Name];
        if (Slot.Line == 0)
          BindingOrder.push_back(S.Name);
        Slot = Binding{V.Type, V.Const, S.Line, S.Column, false};
        break;
      }
      case Stmt::Kind::Derive: {
        ExprInfo V = checkExpr(*S.Value, /*NodeCtx=*/true, 0);
        if (V.Type == SemaType::String)
          report("EVQL005", Severity::Error, S.Value->Line, S.Value->Column,
                 "derived metric '" + S.Name +
                     "' must be a number, found a string",
                 "type-mismatch", "wrap the formula in a numeric expression");
        DerivedMetrics.push_back(S.Name);
        break;
      }
      case Stmt::Kind::Prune:
      case Stmt::Kind::Keep: {
        bool IsPrune = S.TheKind == Stmt::Kind::Prune;
        ExprInfo C = checkExpr(*S.Value, /*NodeCtx=*/true, 0);
        if (C.Type == SemaType::String)
          report("EVQL005", Severity::Error, S.Value->Line, S.Value->Column,
                 "expected a condition, found a string", "type-mismatch",
                 "compare the string with '==' or use contains()");
        if (std::optional<bool> T = truthy(C.Const)) {
          std::string Effect;
          if (IsPrune)
            Effect = *T ? "this elides every node below the root"
                        : "this statement has no effect";
          else
            Effect = *T ? "this statement has no effect"
                        : "this elides every node below the root";
          report("EVQL008", Severity::Warning, S.Value->Line,
                 S.Value->Column,
                 std::string(IsPrune ? "'prune when'" : "'keep when'") +
                     " condition is always " + (*T ? "true" : "false"),
                 "constant-condition", Effect);
        }
        break;
      }
      case Stmt::Kind::Print:
        checkExpr(*S.Value, /*NodeCtx=*/false, 0);
        break;
      case Stmt::Kind::Return:
        checkExpr(*S.Value, /*NodeCtx=*/false, 0);
        Returned = true;
        ReturnLine = S.Line;
        break;
      }
    }

    for (const std::string &Name : BindingOrder) {
      const Binding &Slot = Bindings[Name];
      if (!Slot.Used)
        report("EVQL009", Severity::Warning, Slot.Line, Slot.Column,
               "unused binding '" + Name + "'", "unused-binding",
               "remove the 'let' or reference the binding");
    }
  }

private:
  struct Binding {
    SemaType Type = SemaType::Unknown;
    ConstVal Const;
    size_t Line = 0; ///< 0 marks a never-filled slot.
    size_t Column = 0;
    bool Used = false;
  };

  void report(const char *Id, Severity Sev, size_t Line, size_t Column,
              std::string Message, const char *Rule, std::string Hint) {
    Diagnostic D;
    D.Id = Id;
    D.Sev = Sev;
    D.Message = std::move(Message);
    D.Rule = Rule;
    D.Hint = std::move(Hint);
    D.Line = Line;
    D.Column = Column;
    Out.add(std::move(D));
  }

  ExprInfo checkExpr(const Expr &E, bool NodeCtx, size_t Depth) {
    if (Depth >= Opts.Limits.MaxExprDepth) {
      report("EVQL012", Severity::Error, E.Line, E.Column,
             "expression nesting exceeds the analysis limit of " +
                 std::to_string(Opts.Limits.MaxExprDepth),
             "expr-too-deep", "split the expression across 'let' bindings");
      return {};
    }
    switch (E.TheKind) {
    case Expr::Kind::NumberLit:
      return {SemaType::Number, ConstVal::num(E.Number)};
    case Expr::Kind::StringLit:
      return {SemaType::String, ConstVal::str(E.Text)};
    case Expr::Kind::BoolLit:
      return {SemaType::Bool, ConstVal::boolean(E.BoolValue)};
    case Expr::Kind::Ident: {
      auto It = Bindings.find(E.Text);
      if (It == Bindings.end()) {
        std::string Hint =
            suggestFrom(E.Text, BindingOrder,
                        [](const std::string &S) { return std::string_view(S); });
        if (Hint.empty() && findBuiltin(E.Text))
          Hint = "'" + E.Text + "' is a builtin; call it: " + E.Text + "(...)";
        report("EVQL002", Severity::Error, E.Line, E.Column,
               "undefined identifier '" + E.Text + "'",
               "undefined-identifier", std::move(Hint));
        return {};
      }
      It->second.Used = true;
      return {It->second.Type, It->second.Const};
    }
    case Expr::Kind::Unary:
      return checkUnary(E, NodeCtx, Depth);
    case Expr::Kind::Ternary:
      return checkTernary(E, NodeCtx, Depth);
    case Expr::Kind::Binary:
      return checkBinary(E, NodeCtx, Depth);
    case Expr::Kind::Call:
      return checkCall(E, NodeCtx, Depth);
    }
    return {};
  }

  ExprInfo checkUnary(const Expr &E, bool NodeCtx, size_t Depth) {
    ExprInfo V = checkExpr(*E.Operands[0], NodeCtx, Depth + 1);
    if (E.Op == TokenKind::Minus) {
      if (V.Type == SemaType::String)
        report("EVQL005", Severity::Error, E.Operands[0]->Line,
               E.Operands[0]->Column, "cannot negate a string",
               "type-mismatch", "");
      ExprInfo R{SemaType::Number, {}};
      if (std::optional<double> N = asNumber(V.Const))
        R.Const = ConstVal::num(-*N);
      return R;
    }
    // '!'.
    if (V.Type == SemaType::String)
      report("EVQL005", Severity::Error, E.Operands[0]->Line,
             E.Operands[0]->Column, "expected a condition, found a string",
             "type-mismatch", "");
    ExprInfo R{SemaType::Bool, {}};
    if (std::optional<bool> T = truthy(V.Const))
      R.Const = ConstVal::boolean(!*T);
    return R;
  }

  ExprInfo checkTernary(const Expr &E, bool NodeCtx, size_t Depth) {
    ExprInfo C = checkExpr(*E.Operands[0], NodeCtx, Depth + 1);
    if (C.Type == SemaType::String)
      report("EVQL005", Severity::Error, E.Operands[0]->Line,
             E.Operands[0]->Column,
             "ternary condition cannot be a string", "type-mismatch", "");
    ExprInfo Then = checkExpr(*E.Operands[1], NodeCtx, Depth + 1);
    ExprInfo Else = checkExpr(*E.Operands[2], NodeCtx, Depth + 1);
    if (std::optional<bool> T = truthy(C.Const)) {
      report("EVQL008", Severity::Warning, E.Operands[0]->Line,
             E.Operands[0]->Column,
             std::string("ternary condition is always ") +
                 (*T ? "true" : "false"),
             "constant-condition",
             std::string("only the '") + (*T ? "then" : "else") +
                 "' branch can execute");
      return *T ? Then : Else;
    }
    if (Then.Type == Else.Type)
      return {Then.Type, {}};
    return {};
  }

  ExprInfo checkBinary(const Expr &E, bool NodeCtx, size_t Depth) {
    const Expr &L = *E.Operands[0];
    const Expr &R = *E.Operands[1];
    ExprInfo Lhs = checkExpr(L, NodeCtx, Depth + 1);
    ExprInfo Rhs = checkExpr(R, NodeCtx, Depth + 1);

    auto StringOperandError = [&](const Expr &Op) {
      report("EVQL005", Severity::Error, Op.Line, Op.Column,
             "string operand in numeric expression", "type-mismatch",
             "convert with a comparison, or format numbers with str()/fmt()");
    };

    switch (E.Op) {
    case TokenKind::AmpAmp:
    case TokenKind::PipePipe: {
      if (Lhs.Type == SemaType::String)
        report("EVQL005", Severity::Error, L.Line, L.Column,
               "expected a condition, found a string", "type-mismatch", "");
      if (Rhs.Type == SemaType::String)
        report("EVQL005", Severity::Error, R.Line, R.Column,
               "expected a condition, found a string", "type-mismatch", "");
      ExprInfo Out{SemaType::Bool, {}};
      std::optional<bool> A = truthy(Lhs.Const);
      std::optional<bool> B = truthy(Rhs.Const);
      bool IsAnd = E.Op == TokenKind::AmpAmp;
      if (A && *A != IsAnd) // Short-circuit: false&&x, true||x.
        Out.Const = ConstVal::boolean(!IsAnd);
      else if (A && B)
        Out.Const = ConstVal::boolean(IsAnd ? (*A && *B) : (*A || *B));
      return Out;
    }
    case TokenKind::EqualEqual:
    case TokenKind::BangEqual: {
      ExprInfo Out{SemaType::Bool, {}};
      bool BothStrings = Lhs.Const.K == ConstVal::Kind::Str &&
                         Rhs.Const.K == ConstVal::Kind::Str;
      if (BothStrings) {
        bool Equal = Lhs.Const.Str == Rhs.Const.Str;
        Out.Const = ConstVal::boolean(E.Op == TokenKind::EqualEqual
                                          ? Equal
                                          : !Equal);
      } else if (asNumber(Lhs.Const) && asNumber(Rhs.Const)) {
        bool Equal = *asNumber(Lhs.Const) == *asNumber(Rhs.Const);
        Out.Const = ConstVal::boolean(E.Op == TokenKind::EqualEqual
                                          ? Equal
                                          : !Equal);
      }
      return Out;
    }
    case TokenKind::Less:
    case TokenKind::LessEqual:
    case TokenKind::Greater:
    case TokenKind::GreaterEqual: {
      bool LStr = Lhs.Type == SemaType::String;
      bool RStr = Rhs.Type == SemaType::String;
      if (LStr != RStr && Lhs.Type != SemaType::Unknown &&
          Rhs.Type != SemaType::Unknown)
        StringOperandError(LStr ? L : R);
      ExprInfo Out{SemaType::Bool, {}};
      auto Fold = [&](double Cmp) {
        switch (E.Op) {
        case TokenKind::Less:
          return Cmp < 0;
        case TokenKind::LessEqual:
          return Cmp <= 0;
        case TokenKind::Greater:
          return Cmp > 0;
        default:
          return Cmp >= 0;
        }
      };
      if (Lhs.Const.K == ConstVal::Kind::Str &&
          Rhs.Const.K == ConstVal::Kind::Str)
        Out.Const = ConstVal::boolean(
            Fold(static_cast<double>(Lhs.Const.Str.compare(Rhs.Const.Str))));
      else if (asNumber(Lhs.Const) && asNumber(Rhs.Const))
        Out.Const = ConstVal::boolean(
            Fold(*asNumber(Lhs.Const) - *asNumber(Rhs.Const)));
      return Out;
    }
    case TokenKind::Plus: {
      if (Lhs.Type == SemaType::String && Rhs.Type == SemaType::String) {
        ExprInfo Out{SemaType::String, {}};
        if (Lhs.Const.K == ConstVal::Kind::Str &&
            Rhs.Const.K == ConstVal::Kind::Str)
          Out.Const = ConstVal::str(Lhs.Const.Str + Rhs.Const.Str);
        return Out;
      }
      if (Lhs.Type == SemaType::String || Rhs.Type == SemaType::String) {
        if (Lhs.Type != SemaType::Unknown && Rhs.Type != SemaType::Unknown)
          StringOperandError(Lhs.Type == SemaType::String ? L : R);
        return {};
      }
      if (Lhs.Type == SemaType::Unknown || Rhs.Type == SemaType::Unknown)
        return {}; // Could still be string concatenation at runtime.
      ExprInfo Out{SemaType::Number, {}};
      if (asNumber(Lhs.Const) && asNumber(Rhs.Const))
        Out.Const =
            ConstVal::num(*asNumber(Lhs.Const) + *asNumber(Rhs.Const));
      return Out;
    }
    case TokenKind::Minus:
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: {
      if (Lhs.Type == SemaType::String)
        StringOperandError(L);
      if (Rhs.Type == SemaType::String)
        StringOperandError(R);
      bool IsDiv =
          E.Op == TokenKind::Slash || E.Op == TokenKind::Percent;
      std::optional<double> A = asNumber(Lhs.Const);
      std::optional<double> B = asNumber(Rhs.Const);
      if (IsDiv && B && *B == 0.0)
        report("EVQL007", Severity::Warning, R.Line, R.Column,
               std::string("right operand of '") +
                   (E.Op == TokenKind::Slash ? "/" : "%") +
                   "' is the constant 0",
               "division-by-zero",
               "EVQL defines x / 0 as 0; spell that out with ratio() if "
               "intended");
      ExprInfo Out{SemaType::Number, {}};
      if (A && B) {
        switch (E.Op) {
        case TokenKind::Minus:
          Out.Const = ConstVal::num(*A - *B);
          break;
        case TokenKind::Star:
          Out.Const = ConstVal::num(*A * *B);
          break;
        case TokenKind::Slash:
          Out.Const = ConstVal::num(*B == 0.0 ? 0.0 : *A / *B);
          break;
        default:
          Out.Const = ConstVal::num(*B == 0.0 ? 0.0 : std::fmod(*A, *B));
          break;
        }
      }
      return Out;
    }
    default:
      return {};
    }
  }

  ExprInfo checkCall(const Expr &E, bool NodeCtx, size_t Depth) {
    const BuiltinSig *Sig = findBuiltin(E.Text);
    if (!Sig) {
      for (const evql::ExprPtr &Arg : E.Operands)
        checkExpr(*Arg, NodeCtx, Depth + 1);
      report("EVQL003", Severity::Error, E.Line, E.Column,
             "unknown builtin '" + E.Text + "'", "unknown-builtin",
             suggestFrom(E.Text, Builtins,
                         [](const BuiltinSig &S) { return S.Name; }));
      return {};
    }
    if (E.Operands.size() != Sig->Arity) {
      for (const evql::ExprPtr &Arg : E.Operands)
        checkExpr(*Arg, NodeCtx, Depth + 1);
      report("EVQL004", Severity::Error, E.Line, E.Column,
             "'" + E.Text + "' expects " + std::to_string(Sig->Arity) +
                 " argument(s), got " + std::to_string(E.Operands.size()),
             "wrong-arity", "");
      return {Sig->Ret, {}};
    }
    if (Sig->NeedsNode && !NodeCtx)
      report("EVQL011", Severity::Error, E.Line, E.Column,
             "'" + E.Text + "()' needs a node context", "node-context",
             "use it inside 'derive', 'prune when', or 'keep when'");
    for (size_t I = 0; I < E.Operands.size(); ++I) {
      ExprInfo Arg = checkExpr(*E.Operands[I], NodeCtx, Depth + 1);
      if (!compatible(Arg.Type, Sig->Args[I]))
        report("EVQL005", Severity::Error, E.Operands[I]->Line,
               E.Operands[I]->Column,
               "argument " + std::to_string(I + 1) + " of '" + E.Text +
                   "' must be a " +
                   std::string(semaTypeName(Sig->Args[I])) + ", found a " +
                   std::string(semaTypeName(Arg.Type)),
               "type-mismatch", "");
      if (I == 0 && Sig->MetricName &&
          Arg.Const.K == ConstVal::Kind::Str && Opts.MetricSource)
        checkMetricName(Arg.Const.Str, *E.Operands[0]);
    }
    return {Sig->Ret, {}};
  }

  void checkMetricName(const std::string &Name, const Expr &At) {
    const Profile &P = *Opts.MetricSource;
    if (P.findMetric(Name) != Profile::InvalidMetric)
      return;
    for (const std::string &D : DerivedMetrics)
      if (D == Name)
        return;
    std::string Hint = suggestFrom(
        Name, P.metrics(),
        [](const MetricDescriptor &M) { return std::string_view(M.Name); });
    if (Hint.empty()) {
      Hint = "known metrics:";
      size_t Shown = 0;
      for (const MetricDescriptor &M : P.metrics()) {
        if (Shown++ == 5) {
          Hint += " ...";
          break;
        }
        Hint += " '" + M.Name + "'";
      }
      if (P.metrics().empty())
        Hint = "";
    }
    report("EVQL006", Severity::Error, At.Line, At.Column,
           "unknown metric '" + Name + "'", "unknown-metric",
           std::move(Hint));
  }

  const SemaOptions &Opts;
  DiagnosticSet &Out;
  std::unordered_map<std::string, Binding> Bindings;
  std::vector<std::string> BindingOrder;
  std::vector<std::string> DerivedMetrics;
};

} // namespace

void SemaChecker::check(const evql::Program &Prog, DiagnosticSet &Out) const {
  Checker(Opts, Out).run(Prog);
}

void SemaChecker::checkSource(std::string_view Source,
                              DiagnosticSet &Out) const {
  if (Source.size() > Opts.Limits.MaxProgramBytes) {
    Diagnostic D;
    D.Id = "EVQL013";
    D.Sev = Severity::Error;
    D.Message = "program of " + std::to_string(Source.size()) +
                " bytes exceeds the analysis limit of " +
                std::to_string(Opts.Limits.MaxProgramBytes);
    D.Rule = "program-too-large";
    D.Line = 1;
    D.Column = 1;
    Out.add(std::move(D));
    Out.markTruncated();
    return;
  }
  evql::RecoveredProgram Recovered = evql::parseProgramRecover(Source);
  for (const evql::SyntaxError &E : Recovered.Errors) {
    Diagnostic D;
    D.Id = "EVQL001";
    D.Sev = Severity::Error;
    D.Message = E.Message;
    D.Rule = "syntax-error";
    D.Line = E.Line;
    D.Column = E.Column;
    Out.add(std::move(D));
  }
  check(Recovered.Prog, Out);
}

} // namespace ev
