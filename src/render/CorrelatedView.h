//===- render/CorrelatedView.h - Correlated multi-pane flame graphs -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correlated flame-graph view (paper Fig. 7): multi-context metric
/// groups (reuse tuples, redundancy pairs, races) render as linked panes.
/// Pane 0 shows the contexts playing role 0 across all groups of a kind
/// (e.g. every array allocation); selecting a context filters the groups
/// and populates pane 1 (e.g. the uses of that array); selecting again
/// populates pane 2 (the reuses), and so on for however many roles the
/// group kind carries.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_RENDER_CORRELATEDVIEW_H
#define EASYVIEW_RENDER_CORRELATEDVIEW_H

#include "profile/Profile.h"
#include "render/FlameLayout.h"

#include <memory>
#include <string>
#include <vector>

namespace ev {

/// Interactive state over the context groups of one kind.
class CorrelatedView {
public:
  /// Builds the view over all groups of \p Kind (e.g. "reuse") in \p P.
  CorrelatedView(const Profile &P, std::string_view Kind);

  /// Number of roles per group (all groups of a kind must agree; the
  /// constructor asserts this).
  size_t roleCount() const { return Roles; }

  /// Number of groups matching the current selection prefix.
  size_t activeGroupCount() const { return ActiveGroups.size(); }

  /// The selection prefix: Selection[r] is the context chosen in pane r.
  const std::vector<NodeId> &selection() const { return Selection; }

  /// Selects \p Context in pane \p Role. Panes to the right reset. The
  /// context must appear in that pane's current population.
  /// \returns false when the context is not present in the pane.
  bool select(size_t Role, NodeId Context);

  /// Clears the selection from pane \p Role rightwards.
  void clearFrom(size_t Role);

  /// Builds the pane-\p Role flame graph under the current selection:
  /// a tree over the call paths of the role-\p Role contexts of all active
  /// groups, weighted by group value. Panes beyond the selection depth + 1
  /// are empty.
  Profile paneProfile(size_t Role) const;

  /// Contexts populating pane \p Role under the current selection, with
  /// their summed group values, hottest first.
  std::vector<std::pair<NodeId, double>> paneContexts(size_t Role) const;

  /// Renders all panes as text side notes (used by examples/tests).
  std::string renderText() const;

private:
  void refilter();

  const Profile *P;
  StringId KindId = 0;
  size_t Roles = 0;
  std::vector<size_t> AllGroups;    ///< Indices into P->groups() of Kind.
  std::vector<size_t> ActiveGroups; ///< Filtered by Selection.
  std::vector<NodeId> Selection;
};

} // namespace ev

#endif // EASYVIEW_RENDER_CORRELATEDVIEW_H
