//===- tool/CliDriver.h - The evtool command-line driver ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the `evtool` command line, separated from main() so
/// the test suite can drive it in-process with captured output.
///
/// \code
///   evtool info <profile>
///   evtool summary <profile>
///   evtool flame <profile> [--shape top-down|bottom-up|flat]
///                [--metric NAME] [--svg <out.svg>] [--columns N]
///   evtool table <profile> [--rows N]
///   evtool convert <in> <out> [--to evprof|pprof|collapsed|speedscope|
///                                   chrome]
///   evtool diff <base> <test> [--metric NAME]
///   evtool aggregate <out.evprof> <in...>
///   evtool query <profile> (-e <program> | --file <program.evql>)
///   evtool butterfly <profile> <function> [--metric NAME]
///   evtool report <profile> <out.html>
/// \endcode
///
/// Profiles load through format auto-detection, so any supported input
/// format works everywhere a <profile> is expected.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_TOOL_CLIDRIVER_H
#define EASYVIEW_TOOL_CLIDRIVER_H

#include <string>
#include <vector>

namespace ev {
namespace tool {

/// Exit codes, distinct per failure mode so scripted pipelines can tell
/// "you invoked me wrong" from "your data is bad" without scraping stderr.
enum ExitCode : int {
  ExitSuccess = 0,
  /// A profile failed to load, decode, or process (I/O errors, malformed
  /// input, missing functions/metrics, query runtime errors).
  ExitDataError = 1,
  /// The command line itself is wrong: unknown command, bad argument
  /// count, unknown option value, missing required option.
  ExitUsageError = 2,
};

/// Runs one evtool invocation. \p Args excludes the program name.
/// \returns the process exit code (an ExitCode); normal output accumulates
/// in \p Out, diagnostics in \p Err.
int runEvTool(const std::vector<std::string> &Args, std::string &Out,
              std::string &Err);

/// The usage text printed for `evtool help` and argument errors.
std::string usageText();

} // namespace tool
} // namespace ev

#endif // EASYVIEW_TOOL_CLIDRIVER_H
