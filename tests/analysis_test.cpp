//===- tests/analysis_test.cpp - Analysis engine tests --------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Aggregate.h"
#include "analysis/Diff.h"
#include "analysis/LeakDetector.h"
#include "analysis/MetricEngine.h"
#include "analysis/Prune.h"
#include "analysis/Transform.h"
#include "analysis/Traversal.h"

#include "TestHelpers.h"
#include "workload/GrpcLeakWorkload.h"

#include <gtest/gtest.h>

using namespace ev;

namespace {

NodeId findByName(const Profile &P, std::string_view Name) {
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    if (P.nameOf(Id) == Name)
      return Id;
  return InvalidNode;
}

} // namespace

//===----------------------------------------------------------------------===
// Traversal
//===----------------------------------------------------------------------===

TEST(Traversal, PreOrderVisitsParentsFirst) {
  Profile P = test::makeFixedProfile();
  std::vector<NodeId> Order;
  preOrder(P, [&](NodeId Id, unsigned) { Order.push_back(Id); });
  EXPECT_EQ(Order.size(), P.nodeCount());
  std::vector<bool> Seen(P.nodeCount(), false);
  for (NodeId Id : Order) {
    if (Id != P.root()) {
      EXPECT_TRUE(Seen[P.node(Id).Parent]);
    }
    Seen[Id] = true;
  }
}

TEST(Traversal, PostOrderVisitsChildrenFirst) {
  Profile P = test::makeFixedProfile();
  std::vector<bool> Seen(P.nodeCount(), false);
  postOrder(P, [&](NodeId Id, unsigned) {
    for (NodeId Child : P.node(Id).Children)
      EXPECT_TRUE(Seen[Child]);
    Seen[Id] = true;
  });
  EXPECT_TRUE(Seen[P.root()]);
}

TEST(Traversal, DepthsAreCorrect) {
  Profile P = test::makeFixedProfile();
  preOrder(P, [&](NodeId Id, unsigned Depth) {
    EXPECT_EQ(Depth, P.depth(Id));
  });
  postOrder(P, [&](NodeId Id, unsigned Depth) {
    EXPECT_EQ(Depth, P.depth(Id));
  });
}

TEST(Traversal, SubtreeTraversal) {
  Profile P = test::makeFixedProfile();
  NodeId Compute = findByName(P, "compute");
  std::vector<NodeId> Ids = preOrderIds(P, Compute);
  EXPECT_EQ(Ids.size(), 3u); // compute, kernel, memcpy.
  EXPECT_EQ(Ids.front(), Compute);
}

//===----------------------------------------------------------------------===
// MetricEngine
//===----------------------------------------------------------------------===

TEST(MetricEngine, InclusiveAccumulatesUpward) {
  Profile P = test::makeFixedProfile();
  std::vector<double> Incl = inclusiveColumn(P, 0);
  EXPECT_DOUBLE_EQ(Incl[P.root()], 100.0);
  EXPECT_DOUBLE_EQ(Incl[findByName(P, "main")], 100.0);
  EXPECT_DOUBLE_EQ(Incl[findByName(P, "compute")], 75.0);
  EXPECT_DOUBLE_EQ(Incl[findByName(P, "kernel")], 40.0);
  EXPECT_DOUBLE_EQ(Incl[findByName(P, "parse")], 20.0);
}

TEST(MetricEngine, ExclusiveMatchesStoredValues) {
  Profile P = test::makeFixedProfile();
  std::vector<double> Excl = exclusiveColumn(P, 0);
  EXPECT_DOUBLE_EQ(Excl[findByName(P, "main")], 5.0);
  EXPECT_DOUBLE_EQ(Excl[findByName(P, "memcpy")], 25.0);
}

TEST(MetricEngine, TotalEqualsRootInclusive) {
  Profile P = test::makeRandomProfile(99);
  MetricView View(P, 0);
  EXPECT_DOUBLE_EQ(metricTotal(P, 0), View.total());
}

TEST(MetricEngine, HottestExclusiveRanksAndLimits) {
  Profile P = test::makeFixedProfile();
  std::vector<HotNode> Hot = hottestExclusive(P, 0, 2);
  ASSERT_EQ(Hot.size(), 2u);
  EXPECT_EQ(P.nameOf(Hot[0].Node), "kernel");
  EXPECT_DOUBLE_EQ(Hot[0].Value, 40.0);
  EXPECT_EQ(P.nameOf(Hot[1].Node), "memcpy");
}

TEST(MetricEngine, MetricViewInclusiveExclusiveAgree) {
  Profile P = test::makeRandomProfile(5);
  MetricView View(P, 0);
  std::vector<double> Incl = inclusiveColumn(P, 0);
  std::vector<double> Excl = exclusiveColumn(P, 0);
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
    EXPECT_DOUBLE_EQ(View.inclusive(Id), Incl[Id]);
    EXPECT_DOUBLE_EQ(View.exclusive(Id), Excl[Id]);
    EXPECT_GE(View.inclusive(Id), View.exclusive(Id)); // Nonneg values.
  }
}

//===----------------------------------------------------------------------===
// Transforms
//===----------------------------------------------------------------------===

TEST(Transform, TopDownCopyPreservesEverything) {
  Profile P = test::makeFixedProfile();
  Profile Copy = topDownTree(P);
  EXPECT_EQ(Copy.nodeCount(), P.nodeCount());
  EXPECT_DOUBLE_EQ(metricTotal(Copy, 0), metricTotal(P, 0));
  EXPECT_TRUE(Copy.verify().ok());
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    EXPECT_EQ(Copy.nameOf(Id), P.nameOf(Id));
}

TEST(Transform, BottomUpFirstLevelAggregatesLeafCosts) {
  Profile P = test::makeFixedProfile();
  Profile Up = bottomUpTree(P);
  EXPECT_TRUE(Up.verify().ok());
  EXPECT_DOUBLE_EQ(metricTotal(Up, 0), metricTotal(P, 0));

  // First level of the bottom-up tree: every context that recorded
  // exclusive cost, keyed by its own frame.
  MetricView View(Up, 0);
  double KernelTotal = 0.0;
  for (NodeId Child : Up.node(Up.root()).Children)
    if (Up.nameOf(Child) == "kernel")
      KernelTotal = View.inclusive(Child);
  EXPECT_DOUBLE_EQ(KernelTotal, 40.0);
}

TEST(Transform, BottomUpReversesCallPaths) {
  Profile P = test::makeFixedProfile();
  Profile Up = bottomUpTree(P);
  // kernel's child in the bottom-up tree must be its caller, compute.
  NodeId Kernel = InvalidNode;
  for (NodeId Child : Up.node(Up.root()).Children)
    if (Up.nameOf(Child) == "kernel")
      Kernel = Child;
  ASSERT_NE(Kernel, InvalidNode);
  ASSERT_EQ(Up.node(Kernel).Children.size(), 1u);
  EXPECT_EQ(Up.nameOf(Up.node(Kernel).Children[0]), "compute");
}

TEST(Transform, FlatTreeGroupsByModuleFileFunction) {
  Profile P = test::makeFixedProfile();
  Profile Flat = flatTree(P);
  EXPECT_TRUE(Flat.verify().ok());
  EXPECT_DOUBLE_EQ(metricTotal(Flat, 0), metricTotal(P, 0));

  // Root children are modules: app and libc.so.
  std::vector<std::string> Modules;
  for (NodeId Child : Flat.node(Flat.root()).Children)
    Modules.emplace_back(Flat.nameOf(Child));
  EXPECT_EQ(Modules.size(), 2u);

  // The flat inclusive column for "compute" counts its subtree once.
  MetricId Incl = Flat.findMetric("time (inclusive)");
  ASSERT_NE(Incl, Profile::InvalidMetric);
  NodeId Compute = findByName(Flat, "compute");
  ASSERT_NE(Compute, InvalidNode);
  EXPECT_DOUBLE_EQ(Flat.node(Compute).metricOr(Incl), 75.0);
}

TEST(Transform, FlatInclusiveCountsRecursionOnce) {
  ProfileBuilder B("rec");
  MetricId M = B.addMetric("m", "count");
  FrameId A = B.functionFrame("rec", "r.cc", 1, "app");
  std::vector<FrameId> Path = {A, A, A};
  B.addSample(Path, M, 10); // Innermost.
  Profile P = B.take();
  Profile Flat = flatTree(P);
  MetricId Incl = Flat.findMetric("m (inclusive)");
  NodeId Rec = findByName(Flat, "rec");
  // Only the outermost occurrence contributes: inclusive = 10, not 30.
  EXPECT_DOUBLE_EQ(Flat.node(Rec).metricOr(Incl), 10.0);
  EXPECT_DOUBLE_EQ(Flat.node(Rec).metricOr(0), 10.0);
}

TEST(Transform, CollapseRecursionMergesSelfChains) {
  ProfileBuilder B("rec");
  MetricId M = B.addMetric("m", "count");
  FrameId A = B.functionFrame("rec");
  FrameId C = B.functionFrame("other");
  std::vector<FrameId> Path = {A, A, A, C};
  B.addSample(Path, M, 7);
  Profile P = B.take();
  ASSERT_EQ(P.nodeCount(), 5u);
  Profile Collapsed = collapseRecursion(P);
  // ROOT + rec + other.
  EXPECT_EQ(Collapsed.nodeCount(), 3u);
  EXPECT_DOUBLE_EQ(metricTotal(Collapsed, 0), 7.0);
  EXPECT_TRUE(Collapsed.verify().ok());
}

TEST(Transform, LimitDepthFoldsDeepCosts) {
  Profile P = test::makeFixedProfile();
  Profile Limited = limitDepth(P, 2);
  EXPECT_DOUBLE_EQ(metricTotal(Limited, 0), metricTotal(P, 0));
  // kernel (depth 3) must be folded into compute (depth 2).
  EXPECT_EQ(findByName(Limited, "kernel"), InvalidNode);
  NodeId Compute = findByName(Limited, "compute");
  EXPECT_DOUBLE_EQ(Limited.node(Compute).metricOr(0), 75.0);
}

//===----------------------------------------------------------------------===
// Prune / filter
//===----------------------------------------------------------------------===

TEST(Prune, ByFractionConservesTotals) {
  Profile P = test::makeFixedProfile();
  Profile Pruned = pruneByFraction(P, 0, 0.25); // Threshold: 25 units.
  EXPECT_DOUBLE_EQ(metricTotal(Pruned, 0), 100.0);
  // parse (inclusive 20) is pruned; kernel (40) stays.
  EXPECT_EQ(findByName(Pruned, "parse"), InvalidNode);
  EXPECT_NE(findByName(Pruned, "kernel"), InvalidNode);
  EXPECT_TRUE(Pruned.verify().ok());
}

TEST(Prune, ZeroFractionKeepsEverything) {
  Profile P = test::makeFixedProfile();
  Profile Pruned = pruneByFraction(P, 0, 0.0);
  EXPECT_EQ(Pruned.nodeCount(), P.nodeCount());
}

TEST(Prune, FoldedValueLandsInParentExclusive) {
  Profile P = test::makeFixedProfile();
  Profile Pruned = pruneByFraction(P, 0, 0.25);
  // main's exclusive absorbs parse's inclusive 20: 5 + 20 = 25.
  NodeId Main = findByName(Pruned, "main");
  EXPECT_DOUBLE_EQ(Pruned.node(Main).metricOr(0), 25.0);
}

TEST(FilterNodes, ElisionReattachesChildren) {
  Profile P = test::makeFixedProfile();
  // Elide "compute": kernel and memcpy re-attach to main.
  Profile Filtered = filterNodes(P, [](const Profile &Prof, NodeId Id) {
    return Prof.nameOf(Id) != "compute";
  });
  EXPECT_EQ(findByName(Filtered, "compute"), InvalidNode);
  NodeId Kernel = findByName(Filtered, "kernel");
  ASSERT_NE(Kernel, InvalidNode);
  EXPECT_EQ(Filtered.nameOf(Filtered.node(Kernel).Parent), "main");
  // compute's exclusive 10 folded into main: 5 + 10 = 15.
  NodeId Main = findByName(Filtered, "main");
  EXPECT_DOUBLE_EQ(Filtered.node(Main).metricOr(0), 15.0);
  EXPECT_DOUBLE_EQ(metricTotal(Filtered, 0), 100.0);
  EXPECT_TRUE(Filtered.verify().ok());
}

TEST(FilterNodes, KeepEverythingIsIdentityShape) {
  Profile P = test::makeRandomProfile(11);
  Profile Filtered = filterNodes(P, [](const Profile &, NodeId) {
    return true;
  });
  EXPECT_EQ(Filtered.nodeCount(), P.nodeCount());
  EXPECT_DOUBLE_EQ(metricTotal(Filtered, 0), metricTotal(P, 0));
}

//===----------------------------------------------------------------------===
// Aggregate
//===----------------------------------------------------------------------===

TEST(Aggregate, SumsAcrossProfiles) {
  Profile A = test::makeFixedProfile();
  Profile B = test::makeFixedProfile();
  const Profile *Inputs[] = {&A, &B};
  AggregatedProfile Agg = aggregate(Inputs);
  EXPECT_EQ(Agg.profileCount(), 2u);
  // Identical trees merge 1:1; sums double.
  EXPECT_EQ(Agg.merged().nodeCount(), A.nodeCount());
  EXPECT_DOUBLE_EQ(metricTotal(Agg.merged(), 0), 200.0);
}

TEST(Aggregate, PerProfileSeriesKeepsSlots) {
  Profile A = test::makeFixedProfile();
  Profile B = test::makeFixedProfile();
  // Make B's kernel hotter.
  NodeId KernelB = findByName(B, "kernel");
  B.node(KernelB).Metrics[0].Value = 60.0;

  const Profile *Inputs[] = {&A, &B};
  AggregatedProfile Agg = aggregate(Inputs);
  NodeId Kernel = findByName(Agg.merged(), "kernel");
  ASSERT_NE(Kernel, InvalidNode);
  std::vector<double> Excl = Agg.perProfileExclusive(Kernel, 0);
  ASSERT_EQ(Excl.size(), 2u);
  EXPECT_DOUBLE_EQ(Excl[0], 40.0);
  EXPECT_DOUBLE_EQ(Excl[1], 60.0);

  std::vector<double> Incl = Agg.perProfileInclusive(Kernel, 0);
  EXPECT_DOUBLE_EQ(Incl[0], 40.0);
  EXPECT_DOUBLE_EQ(Incl[1], 60.0);
}

TEST(Aggregate, DerivedStatColumns) {
  Profile A = test::makeFixedProfile();
  Profile B = test::makeFixedProfile();
  NodeId KernelB = findByName(B, "kernel");
  B.node(KernelB).Metrics[0].Value = 60.0;

  AggregateOptions Opt;
  Opt.WithMin = Opt.WithMax = Opt.WithMean = Opt.WithStddev = true;
  const Profile *Inputs[] = {&A, &B};
  AggregatedProfile Agg = aggregate(Inputs, Opt);
  const Profile &M = Agg.merged();
  NodeId Kernel = findByName(M, "kernel");

  EXPECT_DOUBLE_EQ(M.node(Kernel).metricOr(M.findMetric("time")), 100.0);
  EXPECT_DOUBLE_EQ(M.node(Kernel).metricOr(M.findMetric("time.min")), 40.0);
  EXPECT_DOUBLE_EQ(M.node(Kernel).metricOr(M.findMetric("time.max")), 60.0);
  EXPECT_DOUBLE_EQ(M.node(Kernel).metricOr(M.findMetric("time.mean")), 50.0);
  EXPECT_DOUBLE_EQ(M.node(Kernel).metricOr(M.findMetric("time.stddev")),
                   10.0);
}

TEST(Aggregate, DisjointTreesUnionContexts) {
  ProfileBuilder BA("a");
  MetricId MA = BA.addMetric("time", "nanoseconds");
  std::vector<FrameId> PA = {BA.functionFrame("onlyA")};
  BA.addSample(PA, MA, 3);
  Profile A = BA.take();

  ProfileBuilder BB("b");
  MetricId MB = BB.addMetric("time", "nanoseconds");
  std::vector<FrameId> PB = {BB.functionFrame("onlyB")};
  BB.addSample(PB, MB, 4);
  Profile B = BB.take();

  const Profile *Inputs[] = {&A, &B};
  AggregatedProfile Agg = aggregate(Inputs);
  EXPECT_NE(findByName(Agg.merged(), "onlyA"), InvalidNode);
  EXPECT_NE(findByName(Agg.merged(), "onlyB"), InvalidNode);
  EXPECT_DOUBLE_EQ(metricTotal(Agg.merged(), 0), 7.0);
  NodeId OnlyA = findByName(Agg.merged(), "onlyA");
  std::vector<double> Series = Agg.perProfileExclusive(OnlyA, 0);
  ASSERT_EQ(Series.size(), 2u);
  EXPECT_DOUBLE_EQ(Series[1], 0.0); // Absent from profile B.
}

TEST(Aggregate, SingleProfileIsIdentity) {
  Profile A = test::makeRandomProfile(21);
  const Profile *Inputs[] = {&A};
  AggregatedProfile Agg = aggregate(Inputs);
  EXPECT_EQ(Agg.merged().nodeCount(), A.nodeCount());
  EXPECT_DOUBLE_EQ(metricTotal(Agg.merged(), 0), metricTotal(A, 0));
  EXPECT_DOUBLE_EQ(metricTotal(Agg.merged(), 1), metricTotal(A, 1));
}

//===----------------------------------------------------------------------===
// Diff
//===----------------------------------------------------------------------===

TEST(Diff, IdenticalProfilesAllCommon) {
  Profile A = test::makeFixedProfile();
  DiffResult D = diffProfiles(A, A, 0);
  for (NodeId Id = 0; Id < D.Merged.nodeCount(); ++Id) {
    EXPECT_EQ(D.Tags[Id], DiffTag::Common);
    EXPECT_DOUBLE_EQ(D.Merged.node(Id).metricOr(D.DeltaMetric), 0.0);
  }
}

TEST(Diff, AddedAndDeletedContexts) {
  Profile A = test::makeFixedProfile();
  Profile B = test::makeFixedProfile();
  // Remove "parse" from B and add "newStage".
  B = filterNodes(B, [](const Profile &P, NodeId Id) {
    return P.nameOf(Id) != "parse";
  });
  {
    // Add a context only B has, under main.
    NodeId Main = findByName(B, "main");
    Frame F;
    F.Name = B.strings().intern("newStage");
    F.Loc.File = B.strings().intern("new.cc");
    F.Loc.Line = 4;
    NodeId New = B.createNode(Main, B.internFrame(F));
    B.node(New).addMetric(0, 30.0);
  }
  DiffResult D = diffProfiles(A, B, 0);
  NodeId Parse = findByName(D.Merged, "parse");
  ASSERT_NE(Parse, InvalidNode);
  EXPECT_EQ(D.Tags[Parse], DiffTag::Deleted);
  NodeId NewStage = findByName(D.Merged, "newStage");
  ASSERT_NE(NewStage, InvalidNode);
  EXPECT_EQ(D.Tags[NewStage], DiffTag::Added);
}

TEST(Diff, IncreasedAndDecreasedByInclusiveValue) {
  Profile A = test::makeFixedProfile();
  Profile B = test::makeFixedProfile();
  NodeId KernelB = findByName(B, "kernel");
  B.node(KernelB).Metrics[0].Value = 80.0; // +40.
  NodeId MemcpyB = findByName(B, "memcpy");
  B.node(MemcpyB).Metrics[0].Value = 10.0; // -15.

  DiffResult D = diffProfiles(A, B, 0);
  EXPECT_EQ(D.Tags[findByName(D.Merged, "kernel")], DiffTag::Increased);
  EXPECT_EQ(D.Tags[findByName(D.Merged, "memcpy")], DiffTag::Decreased);
  // compute's inclusive rose 40 - 15 = +25.
  NodeId Compute = findByName(D.Merged, "compute");
  EXPECT_EQ(D.Tags[Compute], DiffTag::Increased);
  EXPECT_DOUBLE_EQ(D.TestInclusive[Compute] - D.BaseInclusive[Compute],
                   25.0);
}

TEST(Diff, DeltaColumnQuantifies) {
  Profile A = test::makeFixedProfile();
  Profile B = test::makeFixedProfile();
  NodeId KernelB = findByName(B, "kernel");
  B.node(KernelB).Metrics[0].Value = 55.0;
  DiffResult D = diffProfiles(A, B, 0);
  NodeId Kernel = findByName(D.Merged, "kernel");
  EXPECT_DOUBLE_EQ(D.Merged.node(Kernel).metricOr(D.DeltaMetric), 15.0);
}

TEST(Diff, TagLabels) {
  EXPECT_EQ(diffTagLabel(DiffTag::Added), "[A]");
  EXPECT_EQ(diffTagLabel(DiffTag::Deleted), "[D]");
  EXPECT_EQ(diffTagLabel(DiffTag::Increased), "[+]");
  EXPECT_EQ(diffTagLabel(DiffTag::Decreased), "[-]");
}

//===----------------------------------------------------------------------===
// Leak detector
//===----------------------------------------------------------------------===

TEST(LeakDetector, TrendSlopeLeastSquares) {
  EXPECT_DOUBLE_EQ(trendSlope({1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(trendSlope({4, 3, 2, 1}), -1.0);
  EXPECT_DOUBLE_EQ(trendSlope({5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(trendSlope({7}), 0.0);
  EXPECT_DOUBLE_EQ(trendSlope({}), 0.0);
}

TEST(LeakDetector, FindsGroundTruthLeaks) {
  workload::GrpcLeakOptions Opt;
  Opt.Snapshots = 80;
  workload::GrpcLeakWorkload W = workload::generateGrpcLeakWorkload(Opt);
  std::vector<const Profile *> Inputs;
  for (const Profile &P : W.Snapshots)
    Inputs.push_back(&P);
  AggregatedProfile Agg = aggregate(Inputs);
  std::vector<LeakSuspect> Suspects = findLeakSuspects(Agg, 0);

  auto Flagged = [&](std::string_view Name) {
    for (const LeakSuspect &S : Suspects)
      if (Agg.merged().nameOf(S.Node) == Name)
        return true;
    return false;
  };
  for (const std::string &Leak : W.LeakingFunctions)
    EXPECT_TRUE(Flagged(Leak)) << Leak;
  for (const std::string &Healthy : W.HealthyFunctions)
    EXPECT_FALSE(Flagged(Healthy)) << Healthy;
}

TEST(LeakDetector, LeaksRankAboveNoise) {
  workload::GrpcLeakOptions Opt;
  Opt.Snapshots = 80;
  workload::GrpcLeakWorkload W = workload::generateGrpcLeakWorkload(Opt);
  std::vector<const Profile *> Inputs;
  for (const Profile &P : W.Snapshots)
    Inputs.push_back(&P);
  AggregatedProfile Agg = aggregate(Inputs);
  std::vector<LeakSuspect> Suspects = findLeakSuspects(Agg, 0);
  ASSERT_GE(Suspects.size(), 2u);
  // The top two suspects are the two true leaks.
  std::vector<std::string> Top = {
      std::string(Agg.merged().nameOf(Suspects[0].Node)),
      std::string(Agg.merged().nameOf(Suspects[1].Node))};
  for (const std::string &Leak : W.LeakingFunctions)
    EXPECT_TRUE(Top[0] == Leak || Top[1] == Leak) << Leak;
}

TEST(LeakDetector, RespectsMinPeak) {
  workload::GrpcLeakWorkload W = workload::generateGrpcLeakWorkload(
      {7, 40, 64.0 * 1024});
  std::vector<const Profile *> Inputs;
  for (const Profile &P : W.Snapshots)
    Inputs.push_back(&P);
  AggregatedProfile Agg = aggregate(Inputs);
  LeakOptions Opt;
  Opt.MinPeakBytes = 1e15; // Nothing is that large.
  EXPECT_TRUE(findLeakSuspects(Agg, 0, Opt).empty());
}
