//===- query/Interpreter.cpp - EVQL evaluation over profiles --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "query/Interpreter.h"

#include "analysis/MetricEngine.h"
#include "analysis/Prune.h"
#include "analysis/Transform.h"
#include "query/Parser.h"
#include "support/Strings.h"

#include <cmath>
#include <unordered_map>

namespace ev {
namespace evql {

std::string renderNumber(double Value) {
  // A double compares equal to its int64 round-trip only when the cast is
  // defined: comparing against the truncated cast directly (the pre-fix
  // code) was itself UB for values outside int64 range, e.g. 1e19.
  constexpr double Int64Min = -9223372036854775808.0; // -2^63, exact
  constexpr double Int64Max = 9223372036854775808.0;  //  2^63, exact
  if (Value >= Int64Min && Value < Int64Max &&
      Value == static_cast<double>(static_cast<int64_t>(Value)))
    return std::to_string(static_cast<int64_t>(Value));
  return formatDouble(Value, 6);
}

std::string renderFormatted(double Value, double Digits) {
  // formatDouble's buffer caps useful precision far below this; the clamp
  // only exists so the double->int conversion is defined for hostile digit
  // counts (static_cast of 1e19 to int is UB).
  double Clamped = Digits < -1000.0 ? -1000.0
                   : Digits > 1000.0 ? 1000.0
                                     : Digits;
  return formatDouble(Value, static_cast<int>(Clamped));
}

namespace {

/// Runtime value: number, string, or bool.
class RtValue {
public:
  enum class Type : uint8_t { Number, String, Bool };

  RtValue() : TheType(Type::Number) {}
  static RtValue number(double N) {
    RtValue V;
    V.TheType = Type::Number;
    V.Num = N;
    return V;
  }
  static RtValue boolean(bool B) {
    RtValue V;
    V.TheType = Type::Bool;
    V.BoolVal = B;
    return V;
  }
  static RtValue string(std::string S) {
    RtValue V;
    V.TheType = Type::String;
    V.Str = std::move(S);
    return V;
  }

  Type type() const { return TheType; }
  double num() const { return Num; }
  bool boolean() const { return BoolVal; }
  const std::string &str() const { return Str; }

  /// Lossy rendering for 'print' and str().
  std::string render() const {
    switch (TheType) {
    case Type::Number:
      return renderNumber(Num);
    case Type::String:
      return Str;
    case Type::Bool:
      return BoolVal ? "true" : "false";
    }
    return "";
  }

private:
  Type TheType;
  double Num = 0.0;
  bool BoolVal = false;
  std::string Str;
};

using EvalResult = Result<RtValue>;

/// Evaluation context: globals plus (optionally) the current node.
struct Context {
  const Profile *P = nullptr;
  const AnalysisLimits *Limits = &AnalysisLimits::defaults();
  std::unordered_map<std::string, RtValue> Globals;
  bool HasNode = false;
  NodeId Node = InvalidNode;
  unsigned NodeDepth = 0;
  /// Metric-name -> (exclusive, inclusive) columns of the CURRENT profile.
  std::unordered_map<std::string, MetricView> Views;

  Result<const MetricView *> viewFor(std::string_view Name, size_t Line) {
    auto It = Views.find(std::string(Name));
    if (It != Views.end())
      return &It->second;
    MetricId Id = P->findMetric(Name);
    if (Id == Profile::InvalidMetric)
      return makeError("unknown metric '" + std::string(Name) +
                       "' at line " + std::to_string(Line));
    auto [Ins, _] =
        Views.emplace(std::string(Name), MetricView(*P, Id));
    return &Ins->second;
  }
};

Error typeError(std::string What, size_t Line) {
  return makeError(std::move(What) + " at line " + std::to_string(Line));
}

EvalResult evalExpr(const Expr &E, Context &Ctx, size_t Depth);

Result<double> evalNumber(const Expr &E, Context &Ctx, size_t Depth) {
  EvalResult V = evalExpr(E, Ctx, Depth);
  if (!V)
    return makeError(V.error());
  switch (V->type()) {
  case RtValue::Type::Number:
    return V->num();
  case RtValue::Type::Bool:
    return V->boolean() ? 1.0 : 0.0;
  case RtValue::Type::String:
    return typeError("expected a number, found a string", E.Line);
  }
  return 0.0;
}

Result<bool> evalBool(const Expr &E, Context &Ctx, size_t Depth) {
  EvalResult V = evalExpr(E, Ctx, Depth);
  if (!V)
    return makeError(V.error());
  switch (V->type()) {
  case RtValue::Type::Bool:
    return V->boolean();
  case RtValue::Type::Number:
    return V->num() != 0.0;
  case RtValue::Type::String:
    return typeError("expected a condition, found a string", E.Line);
  }
  return false;
}

Result<std::string> evalString(const Expr &E, Context &Ctx, size_t Depth) {
  EvalResult V = evalExpr(E, Ctx, Depth);
  if (!V)
    return makeError(V.error());
  if (V->type() != RtValue::Type::String)
    return typeError("expected a string", E.Line);
  return V->str();
}

Result<const Frame *> nodeFrame(const Expr &E, Context &Ctx) {
  if (!Ctx.HasNode)
    return typeError("'" + E.Text + "()' needs a node context (use it in "
                     "'derive', 'prune', or 'keep')",
                     E.Line);
  return &Ctx.P->frameOf(Ctx.Node);
}

EvalResult evalCall(const Expr &E, Context &Ctx, size_t Depth) {
  const std::string &Fn = E.Text;
  size_t Argc = E.Operands.size();
  auto WrongArity = [&](const char *Expected) {
    return typeError("'" + Fn + "' expects " + Expected + " argument(s)",
                     E.Line);
  };

  // Node-context builtins.
  if (Fn == "metric" || Fn == "exclusive" || Fn == "inclusive") {
    if (Argc != 1)
      return WrongArity("1");
    Result<std::string> Name = evalString(*E.Operands[0], Ctx, Depth + 1);
    if (!Name)
      return makeError(Name.error());
    if (!Ctx.HasNode)
      return typeError("'" + Fn + "()' needs a node context", E.Line);
    Result<const MetricView *> View = Ctx.viewFor(*Name, E.Line);
    if (!View)
      return makeError(View.error());
    double V = Fn == "inclusive" ? (*View)->inclusive(Ctx.Node)
                                 : (*View)->exclusive(Ctx.Node);
    return RtValue::number(V);
  }
  if (Fn == "total") {
    if (Argc != 1)
      return WrongArity("1");
    Result<std::string> Name = evalString(*E.Operands[0], Ctx, Depth + 1);
    if (!Name)
      return makeError(Name.error());
    Result<const MetricView *> View = Ctx.viewFor(*Name, E.Line);
    if (!View)
      return makeError(View.error());
    return RtValue::number((*View)->total());
  }
  if (Fn == "nodecount") {
    if (Argc != 0)
      return WrongArity("0");
    return RtValue::number(static_cast<double>(Ctx.P->nodeCount()));
  }
  if (Fn == "name" || Fn == "file" || Fn == "module" || Fn == "kind") {
    if (Argc != 0)
      return WrongArity("0");
    Result<const Frame *> F = nodeFrame(E, Ctx);
    if (!F)
      return makeError(F.error());
    if (Fn == "name")
      return RtValue::string(std::string(Ctx.P->text((*F)->Name)));
    if (Fn == "file")
      return RtValue::string(std::string(Ctx.P->text((*F)->Loc.File)));
    if (Fn == "module")
      return RtValue::string(std::string(Ctx.P->text((*F)->Loc.Module)));
    return RtValue::string(std::string(frameKindName((*F)->Kind)));
  }
  if (Fn == "line") {
    if (Argc != 0)
      return WrongArity("0");
    Result<const Frame *> F = nodeFrame(E, Ctx);
    if (!F)
      return makeError(F.error());
    return RtValue::number((*F)->Loc.Line);
  }
  if (Fn == "depth") {
    if (Argc != 0)
      return WrongArity("0");
    if (!Ctx.HasNode)
      return typeError("'depth()' needs a node context", E.Line);
    return RtValue::number(Ctx.NodeDepth);
  }
  if (Fn == "nchildren") {
    if (Argc != 0)
      return WrongArity("0");
    if (!Ctx.HasNode)
      return typeError("'nchildren()' needs a node context", E.Line);
    return RtValue::number(
        static_cast<double>(Ctx.P->node(Ctx.Node).Children.size()));
  }
  if (Fn == "isleaf") {
    if (Argc != 0)
      return WrongArity("0");
    if (!Ctx.HasNode)
      return typeError("'isleaf()' needs a node context", E.Line);
    return RtValue::boolean(Ctx.P->node(Ctx.Node).Children.empty());
  }
  if (Fn == "parentname") {
    if (Argc != 0)
      return WrongArity("0");
    if (!Ctx.HasNode)
      return typeError("'parentname()' needs a node context", E.Line);
    NodeId Parent = Ctx.P->node(Ctx.Node).Parent;
    if (Parent == InvalidNode)
      return RtValue::string("");
    return RtValue::string(std::string(Ctx.P->nameOf(Parent)));
  }
  if (Fn == "hasancestor") {
    if (Argc != 1)
      return WrongArity("1");
    Result<std::string> Name = evalString(*E.Operands[0], Ctx, Depth + 1);
    if (!Name)
      return makeError(Name.error());
    if (!Ctx.HasNode)
      return typeError("'hasancestor()' needs a node context", E.Line);
    for (NodeId Walk = Ctx.P->node(Ctx.Node).Parent; Walk != InvalidNode;
         Walk = Ctx.P->node(Walk).Parent)
      if (Ctx.P->nameOf(Walk) == *Name)
        return RtValue::boolean(true);
    return RtValue::boolean(false);
  }
  if (Fn == "share") {
    if (Argc != 1)
      return WrongArity("1");
    Result<std::string> Name = evalString(*E.Operands[0], Ctx, Depth + 1);
    if (!Name)
      return makeError(Name.error());
    if (!Ctx.HasNode)
      return typeError("'share()' needs a node context", E.Line);
    Result<const MetricView *> View = Ctx.viewFor(*Name, E.Line);
    if (!View)
      return makeError(View.error());
    double Total = (*View)->total();
    return RtValue::number(Total == 0.0
                               ? 0.0
                               : (*View)->inclusive(Ctx.Node) / Total);
  }

  // Pure numeric builtins.
  if (Fn == "min" || Fn == "max" || Fn == "ratio") {
    if (Argc != 2)
      return WrongArity("2");
    Result<double> A = evalNumber(*E.Operands[0], Ctx, Depth + 1);
    if (!A)
      return makeError(A.error());
    Result<double> B = evalNumber(*E.Operands[1], Ctx, Depth + 1);
    if (!B)
      return makeError(B.error());
    if (Fn == "min")
      return RtValue::number(std::min(*A, *B));
    if (Fn == "max")
      return RtValue::number(std::max(*A, *B));
    return RtValue::number(*B == 0.0 ? 0.0 : *A / *B);
  }
  if (Fn == "abs" || Fn == "log" || Fn == "sqrt" || Fn == "floor" ||
      Fn == "ceil") {
    if (Argc != 1)
      return WrongArity("1");
    Result<double> A = evalNumber(*E.Operands[0], Ctx, Depth + 1);
    if (!A)
      return makeError(A.error());
    if (Fn == "abs")
      return RtValue::number(std::abs(*A));
    if (Fn == "log")
      return RtValue::number(*A > 0 ? std::log(*A) : 0.0);
    if (Fn == "sqrt")
      return RtValue::number(*A >= 0 ? std::sqrt(*A) : 0.0);
    if (Fn == "floor")
      return RtValue::number(std::floor(*A));
    return RtValue::number(std::ceil(*A));
  }

  // String builtins.
  if (Fn == "contains" || Fn == "startswith" || Fn == "endswith") {
    if (Argc != 2)
      return WrongArity("2");
    Result<std::string> A = evalString(*E.Operands[0], Ctx, Depth + 1);
    if (!A)
      return makeError(A.error());
    Result<std::string> B = evalString(*E.Operands[1], Ctx, Depth + 1);
    if (!B)
      return makeError(B.error());
    if (Fn == "contains")
      return RtValue::boolean(A->find(*B) != std::string::npos);
    if (Fn == "startswith")
      return RtValue::boolean(startsWith(*A, *B));
    return RtValue::boolean(endsWith(*A, *B));
  }
  if (Fn == "str") {
    if (Argc != 1)
      return WrongArity("1");
    EvalResult V = evalExpr(*E.Operands[0], Ctx, Depth + 1);
    if (!V)
      return V;
    return RtValue::string(V->render());
  }
  if (Fn == "fmt") {
    if (Argc != 2)
      return WrongArity("2");
    Result<double> A = evalNumber(*E.Operands[0], Ctx, Depth + 1);
    if (!A)
      return makeError(A.error());
    Result<double> D = evalNumber(*E.Operands[1], Ctx, Depth + 1);
    if (!D)
      return makeError(D.error());
    return RtValue::string(renderFormatted(*A, *D));
  }

  return typeError("unknown function '" + Fn + "'", E.Line);
}

EvalResult evalExpr(const Expr &E, Context &Ctx, size_t Depth) {
  // Adversarially nested expressions (the parser admits up to its own
  // MaxParseDepth) bound recursion here, mirroring the static checker's
  // EVQL012 wording so both report the same diagnostic.
  if (Depth >= Ctx.Limits->MaxExprDepth)
    return typeError("expression nesting exceeds the analysis limit of " +
                         std::to_string(Ctx.Limits->MaxExprDepth),
                     E.Line);
  switch (E.TheKind) {
  case Expr::Kind::NumberLit:
    return RtValue::number(E.Number);
  case Expr::Kind::StringLit:
    return RtValue::string(E.Text);
  case Expr::Kind::BoolLit:
    return RtValue::boolean(E.BoolValue);
  case Expr::Kind::Ident: {
    auto It = Ctx.Globals.find(E.Text);
    if (It == Ctx.Globals.end())
      return typeError("unknown identifier '" + E.Text + "'", E.Line);
    return It->second;
  }
  case Expr::Kind::Unary: {
    if (E.Op == TokenKind::Minus) {
      Result<double> V = evalNumber(*E.Operands[0], Ctx, Depth + 1);
      if (!V)
        return makeError(V.error());
      return RtValue::number(-*V);
    }
    Result<bool> V = evalBool(*E.Operands[0], Ctx, Depth + 1);
    if (!V)
      return makeError(V.error());
    return RtValue::boolean(!*V);
  }
  case Expr::Kind::Ternary: {
    Result<bool> Cond = evalBool(*E.Operands[0], Ctx, Depth + 1);
    if (!Cond)
      return makeError(Cond.error());
    return evalExpr(*Cond ? *E.Operands[1] : *E.Operands[2], Ctx, Depth + 1);
  }
  case Expr::Kind::Binary: {
    // Short-circuit logic first.
    if (E.Op == TokenKind::AmpAmp || E.Op == TokenKind::PipePipe) {
      Result<bool> Lhs = evalBool(*E.Operands[0], Ctx, Depth + 1);
      if (!Lhs)
        return makeError(Lhs.error());
      if (E.Op == TokenKind::AmpAmp && !*Lhs)
        return RtValue::boolean(false);
      if (E.Op == TokenKind::PipePipe && *Lhs)
        return RtValue::boolean(true);
      Result<bool> Rhs = evalBool(*E.Operands[1], Ctx, Depth + 1);
      if (!Rhs)
        return makeError(Rhs.error());
      return RtValue::boolean(*Rhs);
    }
    EvalResult Lhs = evalExpr(*E.Operands[0], Ctx, Depth + 1);
    if (!Lhs)
      return Lhs;
    EvalResult Rhs = evalExpr(*E.Operands[1], Ctx, Depth + 1);
    if (!Rhs)
      return Rhs;

    bool BothStrings = Lhs->type() == RtValue::Type::String &&
                       Rhs->type() == RtValue::Type::String;
    switch (E.Op) {
    case TokenKind::Plus:
      if (BothStrings)
        return RtValue::string(Lhs->str() + Rhs->str());
      break;
    case TokenKind::EqualEqual:
    case TokenKind::BangEqual: {
      bool Equal;
      if (BothStrings)
        Equal = Lhs->str() == Rhs->str();
      else if (Lhs->type() == RtValue::Type::String ||
               Rhs->type() == RtValue::Type::String)
        Equal = false;
      else {
        double A = Lhs->type() == RtValue::Type::Bool
                       ? (Lhs->boolean() ? 1.0 : 0.0)
                       : Lhs->num();
        double B = Rhs->type() == RtValue::Type::Bool
                       ? (Rhs->boolean() ? 1.0 : 0.0)
                       : Rhs->num();
        Equal = A == B;
      }
      return RtValue::boolean(E.Op == TokenKind::EqualEqual ? Equal : !Equal);
    }
    case TokenKind::Less:
    case TokenKind::LessEqual:
    case TokenKind::Greater:
    case TokenKind::GreaterEqual:
      if (BothStrings) {
        int Cmp = Lhs->str().compare(Rhs->str());
        switch (E.Op) {
        case TokenKind::Less:
          return RtValue::boolean(Cmp < 0);
        case TokenKind::LessEqual:
          return RtValue::boolean(Cmp <= 0);
        case TokenKind::Greater:
          return RtValue::boolean(Cmp > 0);
        default:
          return RtValue::boolean(Cmp >= 0);
        }
      }
      break;
    default:
      break;
    }

    // Numeric path.
    auto AsNumber = [&](const RtValue &V) -> Result<double> {
      switch (V.type()) {
      case RtValue::Type::Number:
        return V.num();
      case RtValue::Type::Bool:
        return V.boolean() ? 1.0 : 0.0;
      case RtValue::Type::String:
        return typeError("string operand in numeric expression", E.Line);
      }
      return 0.0;
    };
    Result<double> A = AsNumber(*Lhs);
    if (!A)
      return makeError(A.error());
    Result<double> B = AsNumber(*Rhs);
    if (!B)
      return makeError(B.error());
    switch (E.Op) {
    case TokenKind::Plus:
      return RtValue::number(*A + *B);
    case TokenKind::Minus:
      return RtValue::number(*A - *B);
    case TokenKind::Star:
      return RtValue::number(*A * *B);
    case TokenKind::Slash:
      return RtValue::number(*B == 0.0 ? 0.0 : *A / *B);
    case TokenKind::Percent:
      return RtValue::number(*B == 0.0 ? 0.0 : std::fmod(*A, *B));
    case TokenKind::Less:
      return RtValue::boolean(*A < *B);
    case TokenKind::LessEqual:
      return RtValue::boolean(*A <= *B);
    case TokenKind::Greater:
      return RtValue::boolean(*A > *B);
    case TokenKind::GreaterEqual:
      return RtValue::boolean(*A >= *B);
    default:
      return typeError("unsupported operator", E.Line);
    }
  }
  case Expr::Kind::Call:
    return evalCall(E, Ctx, Depth);
  }
  return typeError("unreachable expression kind", E.Line);
}

} // namespace

Result<QueryOutput> runProgram(const Profile &P, const Program &Prog,
                               const AnalysisLimits &Limits) {
  QueryOutput Out;
  Out.Result = topDownTree(P);

  Context Ctx;
  Ctx.P = &Out.Result;
  Ctx.Limits = &Limits;

  for (const Stmt &S : Prog.Statements) {
    switch (S.TheKind) {
    case Stmt::Kind::Let: {
      Ctx.HasNode = false;
      EvalResult V = evalExpr(*S.Value, Ctx, 0);
      if (!V)
        return makeError(V.error());
      Ctx.Globals[S.Name] = *V;
      break;
    }
    case Stmt::Kind::Print: {
      Ctx.HasNode = false;
      EvalResult V = evalExpr(*S.Value, Ctx, 0);
      if (!V)
        return makeError(V.error());
      Out.Printed.push_back(V->render());
      break;
    }
    case Stmt::Kind::Return: {
      // Like print, but the program stops here: statements after a return
      // never execute (the static analyzer flags them as unreachable).
      Ctx.HasNode = false;
      EvalResult V = evalExpr(*S.Value, Ctx, 0);
      if (!V)
        return makeError(V.error());
      Out.Printed.push_back(V->render());
      return Out;
    }
    case Stmt::Kind::Derive: {
      // Compute the formula per node against the columns as they were
      // before the new metric exists, then install the column.
      std::vector<double> Column(Out.Result.nodeCount(), 0.0);
      std::vector<uint32_t> Depths = depthColumn(Out.Result);
      for (NodeId Id = 0; Id < Out.Result.nodeCount(); ++Id) {
        Ctx.HasNode = true;
        Ctx.Node = Id;
        Ctx.NodeDepth = Depths[Id];
        Result<double> V = evalNumber(*S.Value, Ctx, 0);
        if (!V)
          return makeError(V.error());
        Column[Id] = *V;
      }
      Ctx.HasNode = false;
      MetricId New = Out.Result.addMetric(S.Name, "derived");
      for (NodeId Id = 0; Id < Out.Result.nodeCount(); ++Id)
        if (Column[Id] != 0.0)
          Out.Result.node(Id).addMetric(New, Column[Id]);
      Out.DerivedMetrics.push_back(S.Name);
      Ctx.Views.clear(); // Schema changed.
      break;
    }
    case Stmt::Kind::Prune:
    case Stmt::Kind::Keep: {
      std::vector<char> Keep(Out.Result.nodeCount(), 1);
      std::vector<uint32_t> Depths = depthColumn(Out.Result);
      for (NodeId Id = 1; Id < Out.Result.nodeCount(); ++Id) {
        Ctx.HasNode = true;
        Ctx.Node = Id;
        Ctx.NodeDepth = Depths[Id];
        Result<bool> V = evalBool(*S.Value, Ctx, 0);
        if (!V)
          return makeError(V.error());
        bool Matches = *V;
        Keep[Id] = S.TheKind == Stmt::Kind::Prune ? !Matches : Matches;
      }
      Ctx.HasNode = false;
      Out.Result = filterNodes(
          Out.Result, [&Keep](const Profile &, NodeId Id) -> bool {
            return Keep[Id] != 0;
          });
      Ctx.P = &Out.Result;
      Ctx.Views.clear(); // Node ids changed.
      break;
    }
    }
  }
  return Out;
}

Result<QueryOutput> runProgram(const Profile &P, const Program &Prog) {
  return runProgram(P, Prog, AnalysisLimits::defaults());
}

Result<QueryOutput> runProgram(const Profile &P, std::string_view Source,
                               const AnalysisLimits &Limits) {
  Result<Program> Prog = parseProgram(Source);
  if (!Prog)
    return makeError(Prog.error());
  return runProgram(P, *Prog, Limits);
}

Result<QueryOutput> runProgram(const Profile &P, std::string_view Source) {
  return runProgram(P, Source, AnalysisLimits::defaults());
}

Result<Profile> deriveMetric(const Profile &P, std::string_view Name,
                             std::string_view Formula) {
  std::string Source =
      "derive " + std::string(Name) + " = " + std::string(Formula) + ";";
  Result<QueryOutput> Out = runProgram(P, Source);
  if (!Out)
    return makeError(Out.error());
  return std::move(Out->Result);
}

} // namespace evql
} // namespace ev
