file(REMOVE_RECURSE
  "CMakeFiles/memory_leak_hunt.dir/memory_leak_hunt.cpp.o"
  "CMakeFiles/memory_leak_hunt.dir/memory_leak_hunt.cpp.o.d"
  "memory_leak_hunt"
  "memory_leak_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_leak_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
