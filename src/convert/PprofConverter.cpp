//===- convert/PprofConverter.cpp - pprof -> generic representation -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts pprof profile.proto bytes (PProf, Cloud Profiler, Go runtime
/// profiles) into the generic representation. pprof samples carry their
/// call stack leaf-first with optional inlined frames per location; the
/// converter reverses to root-first and expands inline frames outermost
/// first, so the resulting CCT matches what `pprof -tree` would display.
///
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "profile/ProfileBuilder.h"
#include "proto/PprofFormat.h"

#include <unordered_map>

namespace ev {
namespace convert {

namespace {

/// Maps a pprof unit string onto the generic unit vocabulary.
std::string_view mapUnit(std::string_view Unit) {
  if (Unit == "nanoseconds" || Unit == "ns")
    return "nanoseconds";
  if (Unit == "microseconds" || Unit == "us")
    return "nanoseconds"; // Values are scaled below.
  if (Unit == "milliseconds" || Unit == "ms")
    return "nanoseconds";
  if (Unit == "seconds" || Unit == "s")
    return "nanoseconds";
  if (Unit == "bytes")
    return "bytes";
  return "count";
}

double unitScale(std::string_view Unit) {
  if (Unit == "microseconds" || Unit == "us")
    return 1e3;
  if (Unit == "milliseconds" || Unit == "ms")
    return 1e6;
  if (Unit == "seconds" || Unit == "s")
    return 1e9;
  return 1.0;
}

} // namespace

Result<Profile> fromPprof(std::string_view Bytes) {
  Result<pprof::PprofProfile> Parsed = pprof::read(Bytes);
  if (!Parsed)
    return makeError(Parsed.error());
  const pprof::PprofProfile &In = *Parsed;
  if (In.SampleTypes.empty())
    return makeError("pprof profile has no sample types");

  ProfileBuilder B("pprof profile");

  std::vector<MetricId> Metrics;
  std::vector<double> Scales;
  for (const pprof::ValueType &VT : In.SampleTypes) {
    std::string_view Type = In.text(VT.Type);
    std::string_view Unit = In.text(VT.Unit);
    Metrics.push_back(B.addMetric(Type.empty() ? "samples" : Type,
                                  mapUnit(Unit)));
    Scales.push_back(unitScale(Unit));
  }

  // Index the tables by their ids (pprof ids are arbitrary, often 1-based
  // and dense, but the format does not guarantee it).
  std::unordered_map<uint64_t, const pprof::Function *> Functions;
  for (const pprof::Function &F : In.Functions)
    Functions.emplace(F.Id, &F);
  std::unordered_map<uint64_t, const pprof::Mapping *> Mappings;
  for (const pprof::Mapping &M : In.Mappings)
    Mappings.emplace(M.Id, &M);
  std::unordered_map<uint64_t, const pprof::Location *> Locations;
  for (const pprof::Location &L : In.Locations)
    Locations.emplace(L.Id, &L);

  // Pre-translate every location into its (possibly multi-frame, for
  // inlining) root-first frame run.
  std::unordered_map<uint64_t, std::vector<FrameId>> LocationFrames;
  LocationFrames.reserve(Locations.size());
  for (const pprof::Location &L : In.Locations) {
    std::vector<FrameId> Run;
    std::string_view ModuleName;
    if (const auto It = Mappings.find(L.MappingId); It != Mappings.end())
      ModuleName = In.text(It->second->Filename);
    if (L.Lines.empty()) {
      // No symbol information: synthesize a frame from the address.
      char Buffer[32];
      std::snprintf(Buffer, sizeof(Buffer), "0x%llx",
                    static_cast<unsigned long long>(L.Address));
      Run.push_back(B.functionFrame(Buffer, "", 0, ModuleName, L.Address));
    } else {
      // pprof stores inline frames innermost-first; emit outermost-first.
      for (size_t I = L.Lines.size(); I > 0; --I) {
        const pprof::Line &Ln = L.Lines[I - 1];
        std::string_view Name = "??";
        std::string_view File;
        auto FIt = Functions.find(Ln.FunctionId);
        if (FIt != Functions.end()) {
          Name = In.text(FIt->second->Name);
          File = In.text(FIt->second->Filename);
        }
        Run.push_back(B.functionFrame(
            Name, File,
            Ln.LineNumber > 0 ? static_cast<uint32_t>(Ln.LineNumber) : 0,
            ModuleName, L.Address));
      }
    }
    LocationFrames.emplace(L.Id, std::move(Run));
  }

  std::vector<FrameId> Path;
  for (const pprof::Sample &S : In.Samples) {
    Path.clear();
    // Sample stacks are leaf-first; build root-first.
    for (size_t I = S.LocationIds.size(); I > 0; --I) {
      auto It = LocationFrames.find(S.LocationIds[I - 1]);
      if (It == LocationFrames.end())
        return makeError("sample references unknown location id " +
                         std::to_string(S.LocationIds[I - 1]));
      Path.insert(Path.end(), It->second.begin(), It->second.end());
    }
    NodeId Leaf = B.pushPath(Path);
    for (size_t M = 0; M < S.Values.size() && M < Metrics.size(); ++M)
      if (S.Values[M] != 0)
        B.addValue(Leaf, Metrics[M],
                   static_cast<double>(S.Values[M]) * Scales[M]);
  }
  return B.take();
}

} // namespace convert
} // namespace ev
