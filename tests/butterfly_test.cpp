//===- tests/butterfly_test.cpp - Butterfly and thread-split tests --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Butterfly.h"
#include "analysis/MetricEngine.h"
#include "analysis/ThreadSplit.h"

#include "TestHelpers.h"
#include "convert/Converters.h"

#include <gtest/gtest.h>

using namespace ev;

//===----------------------------------------------------------------------===
// Butterfly
//===----------------------------------------------------------------------===

TEST(Butterfly, CallersAndCalleesOfCompute) {
  Profile P = test::makeFixedProfile();
  ButterflyResult B = butterfly(P, "compute", 0);
  EXPECT_EQ(B.Occurrences, 1u);
  EXPECT_DOUBLE_EQ(B.TotalInclusive, 75.0);
  EXPECT_DOUBLE_EQ(B.SelfExclusive, 10.0);

  ASSERT_EQ(B.Callers.size(), 1u);
  EXPECT_EQ(B.Callers[0].Name, "main");
  EXPECT_DOUBLE_EQ(B.Callers[0].Value, 75.0);

  ASSERT_EQ(B.Callees.size(), 3u); // kernel, memcpy, (self).
  EXPECT_EQ(B.Callees[0].Name, "kernel");
  EXPECT_DOUBLE_EQ(B.Callees[0].Value, 40.0);
  EXPECT_EQ(B.Callees[1].Name, "memcpy");
  EXPECT_EQ(B.Callees[2].Name, "(self)");
  EXPECT_DOUBLE_EQ(B.Callees[2].Value, 10.0);
}

TEST(Butterfly, MultipleCallSitesMerge) {
  ProfileBuilder Builder("multi");
  MetricId M = Builder.addMetric("m", "count");
  FrameId A = Builder.functionFrame("callerA");
  FrameId C = Builder.functionFrame("callerB");
  FrameId Hot = Builder.functionFrame("hot");
  std::vector<FrameId> P1 = {A, Hot};
  std::vector<FrameId> P2 = {C, Hot};
  Builder.addSample(P1, M, 10);
  Builder.addSample(P2, M, 30);
  Profile P = Builder.take();

  ButterflyResult B = butterfly(P, "hot", 0);
  EXPECT_EQ(B.Occurrences, 2u);
  EXPECT_DOUBLE_EQ(B.TotalInclusive, 40.0);
  ASSERT_EQ(B.Callers.size(), 2u);
  EXPECT_EQ(B.Callers[0].Name, "callerB"); // Hotter first.
  EXPECT_DOUBLE_EQ(B.Callers[0].Value, 30.0);
}

TEST(Butterfly, RecursionCountedOnce) {
  ProfileBuilder Builder("rec");
  MetricId M = Builder.addMetric("m", "count");
  FrameId Caller = Builder.functionFrame("entry");
  FrameId Rec = Builder.functionFrame("rec");
  std::vector<FrameId> Path = {Caller, Rec, Rec, Rec};
  Builder.addSample(Path, M, 12);
  Profile P = Builder.take();

  ButterflyResult B = butterfly(P, "rec", 0);
  EXPECT_EQ(B.Occurrences, 3u);
  // Only the outermost occurrence counts toward the total.
  EXPECT_DOUBLE_EQ(B.TotalInclusive, 12.0);
  ASSERT_EQ(B.Callers.size(), 1u);
  EXPECT_EQ(B.Callers[0].Name, "entry");
  // Self-recursive callee edges fold away; only (self) remains.
  ASSERT_EQ(B.Callees.size(), 1u);
  EXPECT_EQ(B.Callees[0].Name, "(self)");
  EXPECT_DOUBLE_EQ(B.Callees[0].Value, 12.0);
}

TEST(Butterfly, CallerAtRootIsProgramRoot) {
  Profile P = test::makeFixedProfile();
  ButterflyResult B = butterfly(P, "main", 0);
  ASSERT_EQ(B.Callers.size(), 1u);
  EXPECT_EQ(B.Callers[0].Name, "<program root>");
}

TEST(Butterfly, AbsentFunctionHasZeroOccurrences) {
  Profile P = test::makeFixedProfile();
  ButterflyResult B = butterfly(P, "nonexistent", 0);
  EXPECT_EQ(B.Occurrences, 0u);
  EXPECT_TRUE(B.Callers.empty());
  EXPECT_TRUE(B.Callees.empty());
}

TEST(Butterfly, RenderTextShowsBothSides) {
  Profile P = test::makeFixedProfile();
  ButterflyResult B = butterfly(P, "compute", 0);
  std::string Text = renderButterflyText(P, B, "nanoseconds");
  EXPECT_NE(Text.find("callers:"), std::string::npos);
  EXPECT_NE(Text.find("callees:"), std::string::npos);
  EXPECT_NE(Text.find("kernel"), std::string::npos);
  EXPECT_NE(Text.find("(self)"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Thread split
//===----------------------------------------------------------------------===

namespace {

/// Two thread lanes plus a stray GC context outside any lane.
Profile makeThreadedProfile() {
  ProfileBuilder B("threaded");
  MetricId M = B.addMetric("time", "nanoseconds");
  FrameId T1 = B.frame(FrameKind::Thread, "worker-1", "", 0, "");
  FrameId T2 = B.frame(FrameKind::Thread, "worker-2", "", 0, "");
  FrameId Work = B.functionFrame("work", "w.cc", 5, "app");
  FrameId Gc = B.functionFrame("gc", "", 0, "runtime");
  std::vector<FrameId> P1 = {T1, Work};
  std::vector<FrameId> P2 = {T2, Work};
  std::vector<FrameId> P3 = {Gc};
  B.addSample(P1, M, 10);
  B.addSample(P2, M, 20);
  B.addSample(P3, M, 3);
  return B.take();
}

} // namespace

TEST(ThreadSplit, DetectsLanes) {
  EXPECT_TRUE(hasThreadLanes(makeThreadedProfile()));
  EXPECT_FALSE(hasThreadLanes(test::makeFixedProfile()));
}

TEST(ThreadSplit, SplitsPerLanePlusStray) {
  Profile P = makeThreadedProfile();
  std::vector<Profile> Parts = splitByThread(P);
  ASSERT_EQ(Parts.size(), 3u); // worker-1, worker-2, (no thread).
  EXPECT_EQ(Parts[0].name(), "worker-1");
  EXPECT_EQ(Parts[1].name(), "worker-2");
  EXPECT_EQ(Parts[2].name(), "(no thread)");
  EXPECT_DOUBLE_EQ(metricTotal(Parts[0], 0), 10.0);
  EXPECT_DOUBLE_EQ(metricTotal(Parts[1], 0), 20.0);
  EXPECT_DOUBLE_EQ(metricTotal(Parts[2], 0), 3.0);
  for (const Profile &Part : Parts)
    EXPECT_TRUE(Part.verify().ok());
}

TEST(ThreadSplit, TotalsConserve) {
  Profile P = makeThreadedProfile();
  std::vector<Profile> Parts = splitByThread(P);
  double Sum = 0.0;
  for (const Profile &Part : Parts)
    Sum += metricTotal(Part, 0);
  EXPECT_DOUBLE_EQ(Sum, metricTotal(P, 0));
}

TEST(ThreadSplit, NoLanesYieldsSingleCopy) {
  Profile P = test::makeFixedProfile();
  std::vector<Profile> Parts = splitByThread(P);
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0].nodeCount(), P.nodeCount());
  EXPECT_DOUBLE_EQ(metricTotal(Parts[0], 0), metricTotal(P, 0));
}

TEST(ThreadSplit, SpeedscopeMultiProfileSplitsBack) {
  // A multi-thread speedscope file converts to thread lanes, which split
  // back into the original per-thread profiles.
  const char *Json = R"({
    "shared": {"frames": [{"name": "f"}, {"name": "g"}]},
    "profiles": [
      {"type": "sampled", "name": "t1", "samples": [[0]], "weights": [4]},
      {"type": "sampled", "name": "t2", "samples": [[1]], "weights": [6]}
    ]
  })";
  Result<Profile> P = convert::fromSpeedscope(Json);
  ASSERT_TRUE(P.ok()) << P.error();
  std::vector<Profile> Parts = splitByThread(*P);
  ASSERT_EQ(Parts.size(), 2u);
  EXPECT_DOUBLE_EQ(metricTotal(Parts[0], 0), 4.0);
  EXPECT_DOUBLE_EQ(metricTotal(Parts[1], 0), 6.0);
}
