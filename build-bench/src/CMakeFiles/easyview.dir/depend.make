# Empty dependencies file for easyview.
# This may be replaced when dependencies are built.
