//===- tests/TestHelpers.h - Shared fixtures for the test suite -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_TESTS_TESTHELPERS_H
#define EASYVIEW_TESTS_TESTHELPERS_H

#include "profile/ProfileBuilder.h"
#include "proto/EvProf.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace ev {
namespace test {

/// A small fixed profile used by many tests:
///
///   ROOT
///    └─ main (app.cc:1, app)            excl 5
///        ├─ parse (parse.cc:10, app)    excl 20
///        └─ compute (comp.cc:20, app)   excl 10
///            ├─ kernel (comp.cc:30, app)     excl 40
///            └─ memcpy (<none>, libc.so)     excl 25
///
/// Metric 0 = "time" (ns). Total exclusive = 100.
inline Profile makeFixedProfile() {
  ProfileBuilder B("fixed");
  MetricId Time = B.addMetric("time", "nanoseconds");
  FrameId Main = B.functionFrame("main", "app.cc", 1, "app");
  FrameId Parse = B.functionFrame("parse", "parse.cc", 10, "app");
  FrameId Compute = B.functionFrame("compute", "comp.cc", 20, "app");
  FrameId Kernel = B.functionFrame("kernel", "comp.cc", 30, "app");
  FrameId Memcpy = B.functionFrame("memcpy", "", 0, "libc.so");

  std::vector<FrameId> P;
  P = {Main};
  B.addSample(P, Time, 5);
  P = {Main, Parse};
  B.addSample(P, Time, 20);
  P = {Main, Compute};
  B.addSample(P, Time, 10);
  P = {Main, Compute, Kernel};
  B.addSample(P, Time, 40);
  P = {Main, Compute, Memcpy};
  B.addSample(P, Time, 25);
  return B.take();
}

/// Deterministic random profile for property tests: \p Paths call paths of
/// depth up to \p MaxDepth over a pool of \p Functions functions, two
/// metrics ("time", "bytes") with non-negative values.
inline Profile makeRandomProfile(uint64_t Seed, size_t Paths = 200,
                                 unsigned MaxDepth = 12,
                                 size_t Functions = 40) {
  Rng R(Seed);
  ProfileBuilder B("random-" + std::to_string(Seed));
  MetricId Time = B.addMetric("time", "nanoseconds");
  MetricId Bytes = B.addMetric("bytes", "bytes");

  std::vector<FrameId> Pool;
  for (size_t I = 0; I < Functions; ++I)
    Pool.push_back(B.functionFrame(
        "fn" + std::to_string(I), "file" + std::to_string(I % 7) + ".cc",
        static_cast<uint32_t>(10 + I), "mod" + std::to_string(I % 3)));

  std::vector<FrameId> Path;
  for (size_t S = 0; S < Paths; ++S) {
    Path.clear();
    unsigned Depth = static_cast<unsigned>(R.range(1, MaxDepth));
    for (unsigned D = 0; D < Depth; ++D)
      Path.push_back(Pool[R.below(Pool.size())]);
    NodeId Leaf = B.pushPath(Path);
    if (R.chance(0.9))
      B.addValue(Leaf, Time, static_cast<double>(R.range(1, 1000)));
    if (R.chance(0.5))
      B.addValue(Leaf, Bytes, static_cast<double>(R.range(1, 1 << 20)));
  }
  return B.take();
}

/// Canonical .evprof bytes of a profile that grows across \p Stages
/// generations, with the *prefix property*: stage k+1's bytes extend stage
/// k's byte-for-byte. The construction leans on the canonical field order
/// (name, strings, metrics, frames, nodes): every frame (hence every
/// string) exists from stage 0, and each later stage only adds samples
/// whose LEAF nodes are new — no earlier node's values (and therefore no
/// earlier byte) ever changes. Stage k+1 minus stage k is then exactly the
/// appendable section a live profiler would emit.
///
/// \p BaseLeaves widens stage 0 with that many extra leaves under a
/// subtree the growth scheme never touches, so view deltas carry a
/// realistically sized row-order footprint (useful for flood tests)
/// without perturbing the per-stage growth.
inline std::vector<std::string> growthStageBytes(size_t Stages,
                                                 size_t BaseLeaves = 0) {
  std::vector<std::string> Out;
  for (size_t S = 0; S < Stages; ++S) {
    ProfileBuilder B("live");
    MetricId Time = B.addMetric("time", "nanoseconds");
    std::vector<FrameId> Pool;
    for (size_t I = 0; I < 40; ++I)
      Pool.push_back(B.functionFrame(
          "fn" + std::to_string(I), "file" + std::to_string(I % 3) + ".cc",
          static_cast<uint32_t>(10 + I), "mod"));

    std::vector<FrameId> P;
    P = {Pool[0]};
    B.addSample(P, Time, 5);
    P = {Pool[0], Pool[11]};
    B.addSample(P, Time, 40);

    // The wide base lives under {fn0, fn11}: depth-5 paths over digits
    // drawn from Pool[12..39] (base 28), distinct for K < 28^3, and
    // disjoint from the growth subtrees below (which never use Pool[11]
    // at depth 1).
    for (size_t K = 0; K < BaseLeaves; ++K) {
      P = {Pool[0], Pool[11], Pool[12 + K % 28], Pool[12 + (K / 28) % 28],
           Pool[12 + (K / 784) % 28]};
      B.addSample(P, Time, static_cast<double>(K % 97 + 1));
    }

    // Stage G's paths bake G into position 1 and J into position 2, so
    // every (G, J) leaf is distinct from every other stage's and from the
    // base paths above.
    for (size_t G = 1; G <= S; ++G)
      for (size_t J = 0; J < 3; ++J) {
        P = {Pool[0], Pool[1 + (G - 1) % 10], Pool[1 + J]};
        B.addSample(P, Time, static_cast<double>(G * 100 + J * 7 + 1));
      }
    Out.push_back(writeEvProf(B.take()));
  }
  return Out;
}

/// The appended section taking stage \p From to stage \p From + 1 of a
/// growthStageBytes() sequence.
inline std::string sectionBytes(const std::vector<std::string> &Stages,
                                size_t From) {
  return Stages[From + 1].substr(Stages[From].size());
}

} // namespace test
} // namespace ev

#endif // EASYVIEW_TESTS_TESTHELPERS_H
