//===- ide/JsonRpc.h - LSP-style JSON-RPC 2.0 transport -------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON-RPC 2.0 with Language-Server-Protocol framing (Content-Length
/// headers over a byte stream). The paper positions EasyView's IDE actions
/// "like LSP"; this transport is what lets any editor drive the Profile
/// Viewer Protocol server (ide/PvpServer.h) the way editors drive language
/// servers.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_IDE_JSONRPC_H
#define EASYVIEW_IDE_JSONRPC_H

#include "support/Json.h"
#include "support/Result.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ev {
namespace rpc {

/// Standard JSON-RPC error codes (the LSP subset this server uses).
enum ErrorCode : int {
  ParseError = -32700,
  InvalidRequest = -32600,
  MethodNotFound = -32601,
  InvalidParams = -32602,
  InternalError = -32603,
};

/// Builds a request payload.
json::Value makeRequest(int64_t Id, std::string_view Method,
                        json::Value Params);

/// Builds a notification payload (no id, no response expected).
json::Value makeNotification(std::string_view Method, json::Value Params);

/// Builds a success response.
json::Value makeResponse(int64_t Id, json::Value ResultValue);

/// Builds an error response.
json::Value makeErrorResponse(int64_t Id, int Code, std::string_view Message);

/// Wraps \p Payload with the Content-Length header framing.
std::string frame(const json::Value &Payload);

/// Incremental deframer: feed bytes as they arrive, poll complete
/// messages.
class MessageReader {
public:
  /// Appends raw bytes from the wire.
  void feed(std::string_view Bytes) { Buffer.append(Bytes); }

  /// \returns the next complete JSON payload, if one is buffered. Parse
  /// failures set failed().
  std::optional<json::Value> poll();

  bool failed() const { return Failed; }
  const std::string &errorMessage() const { return ErrorMessage; }

private:
  std::string Buffer;
  bool Failed = false;
  std::string ErrorMessage;
};

} // namespace rpc
} // namespace ev

#endif // EASYVIEW_IDE_JSONRPC_H
