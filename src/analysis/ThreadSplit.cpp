//===- analysis/ThreadSplit.cpp - Per-thread profile separation -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/ThreadSplit.h"

#include "analysis/Transform.h"

#include <vector>

namespace ev {

bool hasThreadLanes(const Profile &P) {
  for (NodeId Child : P.node(P.root()).Children)
    if (P.frameOf(Child).Kind == FrameKind::Thread)
      return true;
  return false;
}

namespace {

/// Copies the subtree rooted at \p From (its children; \p From's own
/// frame is dropped — the lane node becomes the new root) into a fresh
/// profile.
Profile extractLane(const Profile &P, NodeId From, std::string Name) {
  Profile Out;
  Out.setName(std::move(Name));
  for (const MetricDescriptor &M : P.metrics())
    Out.addMetric(M.Name, M.Unit, M.Aggregation);

  // Map source nodes under From to output nodes.
  std::vector<std::pair<NodeId, NodeId>> Work; // (source, targetParent)
  for (const MetricValue &MV : P.node(From).Metrics)
    Out.node(Out.root()).addMetric(MV.Metric, MV.Value);
  for (NodeId Child : P.node(From).Children)
    Work.emplace_back(Child, Out.root());

  while (!Work.empty()) {
    auto [Src, TargetParent] = Work.back();
    Work.pop_back();
    const Frame &F = P.frameOf(Src);
    Frame Copy;
    Copy.Kind = F.Kind;
    Copy.Name = Out.strings().intern(P.text(F.Name));
    Copy.Loc.File = Out.strings().intern(P.text(F.Loc.File));
    Copy.Loc.Line = F.Loc.Line;
    Copy.Loc.Module = Out.strings().intern(P.text(F.Loc.Module));
    Copy.Loc.Address = F.Loc.Address;
    NodeId New = Out.createNode(TargetParent, Out.internFrame(Copy));
    for (const MetricValue &MV : P.node(Src).Metrics)
      Out.node(New).addMetric(MV.Metric, MV.Value);
    for (NodeId Child : P.node(Src).Children)
      Work.emplace_back(Child, New);
  }
  return Out;
}

} // namespace

std::vector<Profile> splitByThread(const Profile &P) {
  std::vector<Profile> Out;
  if (!hasThreadLanes(P)) {
    Out.push_back(topDownTree(P));
    return Out;
  }

  bool HasStray = !P.node(P.root()).Metrics.empty();
  std::vector<NodeId> StrayRoots;
  for (NodeId Child : P.node(P.root()).Children) {
    if (P.frameOf(Child).Kind == FrameKind::Thread) {
      Out.push_back(
          extractLane(P, Child, std::string(P.nameOf(Child))));
      continue;
    }
    StrayRoots.push_back(Child);
    HasStray = true;
  }
  if (HasStray) {
    // Collect everything outside thread lanes under one profile.
    Profile Stray;
    Stray.setName("(no thread)");
    for (const MetricDescriptor &M : P.metrics())
      Stray.addMetric(M.Name, M.Unit, M.Aggregation);
    for (const MetricValue &MV : P.node(P.root()).Metrics)
      Stray.node(Stray.root()).addMetric(MV.Metric, MV.Value);
    for (NodeId Root : StrayRoots) {
      Profile Lane = extractLane(P, Root, "(no thread)");
      // Graft the lane's content under Stray's root, keeping the stray
      // node itself (extractLane drops the lane node, so re-add it).
      const Frame &F = P.frameOf(Root);
      Frame Copy;
      Copy.Kind = F.Kind;
      Copy.Name = Stray.strings().intern(P.text(F.Name));
      Copy.Loc.File = Stray.strings().intern(P.text(F.Loc.File));
      Copy.Loc.Line = F.Loc.Line;
      Copy.Loc.Module = Stray.strings().intern(P.text(F.Loc.Module));
      Copy.Loc.Address = F.Loc.Address;
      NodeId Grafted =
          Stray.createNode(Stray.root(), Stray.internFrame(Copy));
      for (const MetricValue &MV : P.node(Root).Metrics)
        Stray.node(Grafted).addMetric(MV.Metric, MV.Value);
      // Re-walk the lane copy (skip its synthetic root).
      std::vector<std::pair<NodeId, NodeId>> Work;
      for (NodeId Child : Lane.node(Lane.root()).Children)
        Work.emplace_back(Child, Grafted);
      while (!Work.empty()) {
        auto [Src, TargetParent] = Work.back();
        Work.pop_back();
        const Frame &LF = Lane.frameOf(Src);
        Frame C2;
        C2.Kind = LF.Kind;
        C2.Name = Stray.strings().intern(Lane.text(LF.Name));
        C2.Loc.File = Stray.strings().intern(Lane.text(LF.Loc.File));
        C2.Loc.Line = LF.Loc.Line;
        C2.Loc.Module = Stray.strings().intern(Lane.text(LF.Loc.Module));
        C2.Loc.Address = LF.Loc.Address;
        NodeId New = Stray.createNode(TargetParent, Stray.internFrame(C2));
        for (const MetricValue &MV : Lane.node(Src).Metrics)
          Stray.node(New).addMetric(MV.Metric, MV.Value);
        for (NodeId Child : Lane.node(Src).Children)
          Work.emplace_back(Child, New);
      }
    }
    if (Stray.nodeCount() > 1 || !Stray.node(Stray.root()).Metrics.empty())
      Out.push_back(std::move(Stray));
  }
  return Out;
}

} // namespace ev
