//===- convert/ChromeTraceConverter.cpp - Chrome trace-event JSON ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts Chrome trace-event JSON (the Chrome profiler / chrome://tracing
/// interchange format) into the generic representation. Supported event
/// phases: "B"/"E" duration pairs and "X" complete events, per (pid, tid)
/// lane. Wall time attributes exclusively: a span's self time is its
/// duration minus its children's durations.
///
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "profile/ProfileBuilder.h"
#include "support/Json.h"

#include <algorithm>
#include <map>

namespace ev {
namespace convert {

namespace {

struct Span {
  std::string Name;
  std::string Cat;
  double Start = 0.0; ///< microseconds.
  double End = 0.0;
  uint64_t Lane = 0; ///< (pid, tid) hash.
};

uint64_t laneKey(double Pid, double Tid) {
  return (static_cast<uint64_t>(Pid) << 32) ^
         static_cast<uint64_t>(static_cast<int64_t>(Tid));
}

} // namespace

Result<Profile> fromChromeTrace(std::string_view Json) {
  Result<json::Value> Doc = json::parse(Json);
  if (!Doc)
    return makeError(Doc.error());

  const json::Array *Events = nullptr;
  if (Doc->isObject()) {
    const json::Value *TE = Doc->asObject().find("traceEvents");
    if (!TE || !TE->isArray())
      return makeError("chrome trace: missing traceEvents array");
    Events = &TE->asArray();
  } else if (Doc->isArray()) {
    Events = &Doc->asArray();
  } else {
    return makeError("chrome trace: document is neither object nor array");
  }

  // Collect complete spans: "X" directly; "B"/"E" by pairing per lane.
  std::vector<Span> Spans;
  std::map<uint64_t, std::vector<Span>> OpenStacks;
  for (const json::Value &EV : *Events) {
    if (!EV.isObject())
      continue;
    const json::Object &E = EV.asObject();
    const json::Value *Ph = E.find("ph");
    if (!Ph || !Ph->isString())
      continue;
    const std::string &Phase = Ph->asString();
    double Ts = E.find("ts") ? E.find("ts")->numberOr(0.0) : 0.0;
    double Pid = E.find("pid") ? E.find("pid")->numberOr(0.0) : 0.0;
    double Tid = E.find("tid") ? E.find("tid")->numberOr(0.0) : 0.0;
    std::string Name(E.find("name") ? E.find("name")->stringOr("(anonymous)")
                                    : "(anonymous)");
    std::string Cat(E.find("cat") ? E.find("cat")->stringOr("") : "");
    uint64_t Lane = laneKey(Pid, Tid);

    if (Phase == "X") {
      double Dur = E.find("dur") ? E.find("dur")->numberOr(0.0) : 0.0;
      Spans.push_back({std::move(Name), std::move(Cat), Ts, Ts + Dur, Lane});
      continue;
    }
    if (Phase == "B") {
      OpenStacks[Lane].push_back({std::move(Name), std::move(Cat), Ts, 0.0,
                                  Lane});
      continue;
    }
    if (Phase == "E") {
      auto &Stack = OpenStacks[Lane];
      if (Stack.empty())
        return makeError("chrome trace: 'E' event without matching 'B'");
      Span S = std::move(Stack.back());
      Stack.pop_back();
      S.End = Ts;
      Spans.push_back(std::move(S));
      continue;
    }
    // Metadata/counter/async events are ignored.
  }
  for (const auto &[Lane, Stack] : OpenStacks)
    if (!Stack.empty())
      return makeError("chrome trace: unclosed 'B' event '" +
                       Stack.back().Name + "'");
  if (Spans.empty())
    return makeError("chrome trace: no duration events");

  // Nest spans by containment per lane: sort by (start asc, end desc) and
  // sweep with a stack.
  std::sort(Spans.begin(), Spans.end(), [](const Span &A, const Span &B) {
    if (A.Lane != B.Lane)
      return A.Lane < B.Lane;
    if (A.Start != B.Start)
      return A.Start < B.Start;
    return A.End > B.End;
  });

  ProfileBuilder B("chrome trace");
  MetricId WallTime = B.addMetric("wall-time", "nanoseconds");

  struct Open {
    const Span *S;
    NodeId Node;
    double ChildTime = 0.0;
  };
  std::vector<Open> Stack;
  // PathFrames mirrors Stack: PathFrames[i] is the frame of Stack[i].
  std::vector<FrameId> PathFrames;
  uint64_t CurLane = ~0ULL;

  auto CloseTo = [&](double Start) {
    while (!Stack.empty() && Stack.back().S->End <= Start) {
      Open Top = Stack.back();
      Stack.pop_back();
      PathFrames.pop_back();
      double Self = (Top.S->End - Top.S->Start) - Top.ChildTime;
      if (Self > 0.0)
        B.addValue(Top.Node, WallTime, Self * 1e3); // us -> ns
      if (!Stack.empty())
        Stack.back().ChildTime += Top.S->End - Top.S->Start;
    }
  };

  for (const Span &S : Spans) {
    if (S.Lane != CurLane) {
      CloseTo(1e300); // Drain the previous lane entirely.
      CurLane = S.Lane;
    }
    CloseTo(S.Start);
    PathFrames.push_back(B.functionFrame(S.Name, S.Cat, 0, ""));
    NodeId Node = B.pushPath(PathFrames);
    Stack.push_back({&S, Node, 0.0});
  }
  CloseTo(1e300);

  return B.take();
}

} // namespace convert
} // namespace ev
