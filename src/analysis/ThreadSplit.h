//===- analysis/ThreadSplit.h - Per-thread profile separation -------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Separation of a multi-thread profile into per-thread profiles (paper
/// §V-A(c): tools "produce separate profiles for different threads,
/// processes, or executions"; EasyView manages them as multiple trees).
/// Thread lanes are recognized as FrameKind::Thread contexts directly
/// under the root — the shape the speedscope converter and thread-aware
/// builders produce. The inverse direction is aggregate() from
/// analysis/Aggregate.h.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_THREADSPLIT_H
#define EASYVIEW_ANALYSIS_THREADSPLIT_H

#include "profile/Profile.h"

#include <vector>

namespace ev {

/// \returns true when the profile has at least one Thread context under
/// the root.
bool hasThreadLanes(const Profile &P);

/// Splits \p P into one profile per Thread context under the root, each
/// named after its thread. Metrics recorded outside any thread lane go to
/// an additional "(no thread)" profile. When the profile has no thread
/// lanes, the result is a single whole-profile copy.
std::vector<Profile> splitByThread(const Profile &P);

} // namespace ev

#endif // EASYVIEW_ANALYSIS_THREADSPLIT_H
