file(REMOVE_RECURSE
  "libeasyview.a"
)
