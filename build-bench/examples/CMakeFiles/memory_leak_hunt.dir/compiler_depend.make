# Empty compiler generated dependencies file for memory_leak_hunt.
# This may be replaced when dependencies are built.
