//===- workload/FleetWorkload.h - Fleet regression corpus -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes the fleet-scale differential corpus that exercises the
/// EVL3xx regression analyzer (analysis/Regression.h): N services, M
/// release versions, R replicas per version. Every replica of a version
/// shares the same call tree; per-replica values carry seeded
/// multiplicative noise (~N(1, NoiseSigma)), modeling run-to-run jitter
/// across a production fleet.
///
/// The LAST version additionally carries a catalogue of PLANTED
/// regressions, one per analyzer rule family:
///
///   EVL300 exclusive-time regression   checkout::charge_card  x1.6
///   EVL301 exclusive-time improvement  cache_lookup           x0.45
///   EVL302 new hot path                tls_resume_cache       (new, ~2%)
///   EVL303 disappeared frame           legacy_codec_decode    (removed)
///   EVL304 inclusive-share shift       render_pipeline        x1.6 subtree
///   EVL305 fan-out explosion           shard_router           3 -> 24 kids
///   EVL306 allocation drift            arena_alloc            x1.6 bytes
///   EVL308 total regression            alloc-bytes total      +~20%
///
/// So for M versions v0..v(M-1): (v(M-3)..v(M-2)) — any adjacent pair
/// before the last — differ by noise only and must yield ZERO findings,
/// while (v(M-2), v(M-1)) must yield every planted finding (plus benign
/// collateral such as EVL300 on the boosted render leaves). The planted
/// list names, for each expected rule, a frame whose name must appear in
/// some finding's message — the recall contract asserted by the tests.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_WORKLOAD_FLEETWORKLOAD_H
#define EASYVIEW_WORKLOAD_FLEETWORKLOAD_H

#include "profile/Profile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ev {
namespace workload {

struct FleetOptions {
  uint64_t Seed = 97;
  /// Distinct services per fleet snapshot. The first three carry the
  /// planted regressions; extras are filler dispatch trees. Clamped to 3.
  unsigned Services = 4;
  /// Release versions; the last one carries the plants. Clamped to 3.
  unsigned Versions = 3;
  /// Replicas (= cohort members) per version.
  unsigned Replicas = 8;
  /// Multiplicative per-sample noise sigma.
  double NoiseSigma = 0.03;
};

/// One regression the generator planted: analyzing the last two versions
/// must produce a finding with \p RuleId whose message mentions \p Frame.
struct PlantedRegression {
  std::string RuleId;
  std::string Frame;
};

struct FleetWorkload {
  /// [version][replica] fleet snapshots. All replicas of one version share
  /// a tree; only the last version's tree (and values) carry the plants.
  std::vector<std::vector<Profile>> Versions;
  /// The recall contract for cohorts (Versions[M-2], Versions[M-1]).
  std::vector<PlantedRegression> Planted;
};

FleetWorkload generateFleetWorkload(const FleetOptions &Options = {});

} // namespace workload
} // namespace ev

#endif // EASYVIEW_WORKLOAD_FLEETWORKLOAD_H
