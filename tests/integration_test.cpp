//===- tests/integration_test.cpp - Cross-module end-to-end tests ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end pipelines matching the paper's case studies: profiler output
/// bytes -> converter -> analysis -> view -> IDE action, all through
/// public APIs.
///
//===----------------------------------------------------------------------===//

#include "analysis/LeakDetector.h"
#include "analysis/MetricEngine.h"
#include "analysis/Transform.h"
#include "baseline/GolandTreeTable.h"
#include "baseline/PprofFlameView.h"
#include "core/EasyView.h"
#include "proto/EvProf.h"
#include "render/CorrelatedView.h"
#include "support/Strings.h"
#include "workload/GrpcLeakWorkload.h"
#include "workload/LuleshWorkload.h"
#include "workload/ReuseWorkload.h"
#include "workload/SparkWorkload.h"
#include "workload/SyntheticProfile.h"

#include <gtest/gtest.h>

using namespace ev;

TEST(Integration, HpctoolkitToBottomUpHotspot) {
  // The Fig. 6 pipeline: experiment.xml -> converter -> engine ->
  // bottom-up view -> hottest leaf is libc!brk -> code link on a lulesh
  // frame works.
  EasyViewEngine Engine;
  std::string Xml = workload::generateLuleshExperimentXml({});
  Result<int64_t> Id = Engine.openProfileBytes(Xml, "lulesh-db");
  ASSERT_TRUE(Id.ok()) << Id.error();

  Profile Up = bottomUpTree(*Engine.profile(*Id));
  MetricView View(Up, 0);
  NodeId Hottest = InvalidNode;
  double Best = -1.0;
  for (NodeId Child : Up.node(Up.root()).Children)
    if (View.inclusive(Child) > Best) {
      Best = View.inclusive(Child);
      Hottest = Child;
    }
  EXPECT_EQ(Up.nameOf(Hottest), "brk");

  // Click a source-mapped frame in the original profile.
  const Profile *P = Engine.profile(*Id);
  NodeId Mapped = InvalidNode;
  for (NodeId N = 0; N < P->nodeCount(); ++N)
    if (P->nameOf(N) == "CalcHourglassControlForElems")
      Mapped = N;
  ASSERT_NE(Mapped, InvalidNode);
  Result<bool> Linked = Engine.ide().clickNode(*Id, Mapped);
  ASSERT_TRUE(Linked.ok());
  EXPECT_TRUE(*Linked);
  EXPECT_EQ(Engine.ide().navigations().back().File, "lulesh.cc");
}

TEST(Integration, LeakHuntOverPvp) {
  // The Fig. 4 pipeline over the wire protocol: open every snapshot,
  // aggregate server-side, fetch the leak context's histogram, and check
  // the rising trend that flags the leak.
  MockIde Ide;
  workload::GrpcLeakOptions Opt;
  Opt.Snapshots = 40;
  workload::GrpcLeakWorkload W = workload::generateGrpcLeakWorkload(Opt);

  json::Array Ids;
  for (const Profile &Snap : W.Snapshots) {
    Result<int64_t> Id = Ide.openProfile(Snap.name(), writeEvProf(Snap));
    ASSERT_TRUE(Id.ok()) << Id.error();
    Ids.push_back(*Id);
  }
  Result<json::Value> Agg = Ide.call("pvp/aggregate", [&] {
    json::Object P;
    P.set("profiles", std::move(Ids));
    return P;
  }());
  ASSERT_TRUE(Agg.ok()) << Agg.error();
  int64_t AggId = Agg->asObject().find("profile")->asInt();

  const Profile *Merged = Ide.server().profile(AggId);
  NodeId Leak = InvalidNode;
  for (NodeId N = 0; N < Merged->nodeCount(); ++N)
    if (Merged->nameOf(N) == "transport.newBufWriter")
      Leak = N;
  ASSERT_NE(Leak, InvalidNode);

  Result<json::Value> Hist = Ide.call("pvp/histogram", [&] {
    json::Object P;
    P.set("aggregate", AggId);
    P.set("node", Leak);
    return P;
  }());
  ASSERT_TRUE(Hist.ok()) << Hist.error();
  std::vector<double> Series;
  for (const json::Value &V : Hist->asObject().find("series")->asArray())
    Series.push_back(V.asNumber());
  ASSERT_EQ(Series.size(), W.Snapshots.size());
  EXPECT_GT(trendSlope(Series), 0.0);
  EXPECT_GT(Series.back(), 0.8 * *std::max_element(Series.begin(),
                                                   Series.end()));
}

TEST(Integration, SparkDiffOverEngine) {
  // The Fig. 3 pipeline: two stored profiles -> engine diff -> tag counts
  // and headline contexts.
  EasyViewEngine Engine;
  workload::SparkWorkload W = workload::generateSparkWorkload();
  int64_t Base = Engine.addProfile(std::move(W.Rdd));
  int64_t Test = Engine.addProfile(std::move(W.Sql));
  Result<DiffResult> D = Engine.diff(Base, Test, 0);
  ASSERT_TRUE(D.ok()) << D.error();

  size_t Added = 0, Deleted = 0;
  for (DiffTag Tag : D->Tags) {
    Added += Tag == DiffTag::Added;
    Deleted += Tag == DiffTag::Deleted;
  }
  EXPECT_GT(Added, 0u);
  EXPECT_GT(Deleted, 0u);
  // The root shows an overall improvement ([-]).
  EXPECT_EQ(D->Tags[D->Merged.root()], DiffTag::Decreased);
}

TEST(Integration, AllViewersAgreeOnTotals) {
  // Fig. 5 sanity: EasyView and both baselines open the same pprof bytes
  // and must agree on the data (totals / node counts where comparable).
  workload::SyntheticOptions Opt;
  Opt.TargetBytes = 64 << 10;
  std::string Bytes = workload::generatePprofBytes(Opt);

  EasyViewEngine Engine;
  Result<int64_t> Id = Engine.openProfileBytes(Bytes, "svc");
  ASSERT_TRUE(Id.ok()) << Id.error();
  const Profile *P = Engine.profile(*Id);

  Result<baseline::GolandViewResult> Goland =
      baseline::openWithGolandView(Bytes);
  ASSERT_TRUE(Goland.ok()) << Goland.error();
  EXPECT_GT(Goland->Rows, P->nodeCount() / 2);
  EXPECT_LE(Goland->Rows, P->nodeCount() + 1);

  Result<baseline::PprofViewResult> Pprof =
      baseline::openWithPprofView(Bytes);
  ASSERT_TRUE(Pprof.ok()) << Pprof.error();
  EXPECT_GT(Pprof->FlameFrames, 0u);
}

TEST(Integration, ReuseCorrelationDrivesOptimization) {
  // The Fig. 7 pipeline: reuse groups -> correlated view -> hot pair ->
  // the modeled locality fix pays off.
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  CorrelatedView View(W.P, "reuse");
  auto Pane0 = View.paneContexts(0);
  ASSERT_FALSE(Pane0.empty());
  EXPECT_EQ(W.P.nameOf(Pane0.front().first), W.HotArray);
  ASSERT_TRUE(View.select(0, Pane0.front().first));
  auto Pane1 = View.paneContexts(1);
  ASSERT_TRUE(View.select(1, Pane1.front().first));
  auto Pane2 = View.paneContexts(2);
  ASSERT_FALSE(Pane2.empty());
  EXPECT_EQ(W.P.nameOf(Pane2.front().first), W.HotFunction);

  double Before = workload::luleshRuntimeUsec(
      workload::generateLuleshProfile(
          {11, workload::LuleshVariant::WithTcmalloc, 500.0}));
  double After = workload::luleshRuntimeUsec(
      workload::generateLuleshProfile(
          {11, workload::LuleshVariant::WithLocalityFix, 500.0}));
  EXPECT_GT(Before / After, 1.2);
}

TEST(Integration, EvqlOverPvpMatchesDirectRun) {
  MockIde Ide;
  Profile P = workload::generateLuleshProfile({});
  int64_t Id = Ide.server().addProfile(topDownTree(P));

  const char *Program =
      "derive share = 100 * inclusive(\"CPUTIME (usec):Sum\") / "
      "total(\"CPUTIME (usec):Sum\");"
      "print fmt(total(\"CPUTIME (usec):Sum\") / 1e9, 1);";
  Result<json::Value> R = Ide.call("pvp/query", [&] {
    json::Object Params;
    Params.set("profile", Id);
    Params.set("program", Program);
    return Params;
  }());
  ASSERT_TRUE(R.ok()) << R.error();

  Result<evql::QueryOutput> Direct = evql::runProgram(P, Program);
  ASSERT_TRUE(Direct.ok()) << Direct.error();
  EXPECT_EQ(R->asObject().find("printed")->asArray()[0].asString(),
            Direct->Printed[0]);
}

TEST(Integration, FullReportFromForeignFormat) {
  // collapsed text -> engine -> HTML report containing all views.
  EasyViewEngine Engine;
  Result<int64_t> Id = Engine.openProfileBytes(
      "main;net.Serve;handler.Process 60\n"
      "main;net.Serve;codec.Encode 25\n"
      "main;gc.background 15\n",
      "service.folded");
  ASSERT_TRUE(Id.ok()) << Id.error();
  for (const char *Shape : {"top-down", "bottom-up", "flat"}) {
    FlameRenderOptions Opt;
    Opt.Shape = Shape;
    Result<std::string> Svg = Engine.flameSvg(*Id, Opt);
    ASSERT_TRUE(Svg.ok()) << Shape;
    EXPECT_NE(Svg->find("handler.Process"), std::string::npos) << Shape;
  }
}
