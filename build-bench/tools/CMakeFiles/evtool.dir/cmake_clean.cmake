file(REMOVE_RECURSE
  "CMakeFiles/evtool.dir/evtool.cpp.o"
  "CMakeFiles/evtool.dir/evtool.cpp.o.d"
  "evtool"
  "evtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
