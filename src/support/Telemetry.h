//===- support/Telemetry.h - Counters, gauges, latency histograms ---------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The self-profiling metrics layer (docs/OBSERVABILITY.md): EasyView's
/// thesis is that profiles belong inside the developer's tooling, so the
/// PVP service observes itself. This header provides the numeric half —
/// counters, gauges, and fixed log2-bucket latency histograms — behind a
/// name-keyed registry; the structural half (spans folded into a CCT) is
/// support/Trace.h.
///
/// Concurrency model: registration (first use of a name) takes a shard
/// mutex, but every later update on the returned handle is a relaxed
/// atomic — handles are stable references, so hot paths pin them once and
/// never look the name up again. The registry is sharded by name hash so
/// concurrent sessions registering distinct metrics rarely contend. This
/// is safe under the SessionManager's cross-session parallelism and clean
/// under TSan at EV_THREADS=4 (tests/telemetry_test.cpp).
///
/// Snapshots are deterministic: names are emitted in sorted order, so two
/// runs that performed the same work produce byte-identical counter
/// sections regardless of thread interleaving.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_TELEMETRY_H
#define EASYVIEW_SUPPORT_TELEMETRY_H

#include "support/Json.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ev {
namespace telemetry {

/// A monotonically increasing event count.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A value that moves both ways (queue depths, retained buffers).
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// A latency histogram over fixed log2-scale buckets. Bucket 0 holds the
/// value 0; bucket i (1 <= i < BucketCount-1) holds [2^(i-1), 2^i); the
/// last bucket is the overflow bucket [2^(BucketCount-2), inf). With 28
/// buckets a microsecond-valued histogram resolves 1us through ~67s, which
/// covers every request the deadline guardrail allows.
///
/// record() is wait-free (relaxed atomics; min/max via CAS), so recording
/// from concurrent sessions never serializes them.
class Histogram {
public:
  static constexpr size_t BucketCount = 28;

  /// \returns the bucket index \p Value falls into.
  static size_t bucketIndex(uint64_t Value);
  /// \returns the inclusive lower bound of bucket \p Index.
  static uint64_t bucketFloor(size_t Index);

  void record(uint64_t Value);

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// \returns the smallest recorded value (0 when empty).
  uint64_t min() const;
  /// \returns the largest recorded value (0 when empty).
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucketCount(size_t Index) const {
    return Buckets[Index].load(std::memory_order_relaxed);
  }

  /// Estimates the \p P-th percentile (0 < P <= 100) by rank-walking the
  /// log2 buckets with linear interpolation inside the winning bucket,
  /// clamped to the observed [min(), max()] range. Within a factor of two
  /// of the true order statistic by construction — exactly the fidelity
  /// the buckets retain. \returns 0 when the histogram is empty.
  double percentileEstimate(double P) const;

  void reset();

private:
  std::atomic<uint64_t> Buckets[BucketCount] = {};
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// Options for Registry::snapshot(). Timing-derived fields (histogram
/// sums, mins, maxes, bucket contents) vary run to run even for identical
/// work; IncludeTimings=false drops them so a snapshot of deterministic
/// work is byte-stable across thread counts (only event counts remain).
struct SnapshotOptions {
  bool IncludeTimings = true;
};

/// The sharded name->metric registry. One process-wide instance
/// (Registry::global()) backs the PVP service; tests may build private
/// instances.
class Registry {
public:
  explicit Registry(size_t Shards = 8);

  /// Finds or registers the named metric. The returned reference is
  /// stable for the registry's lifetime; pin it once on hot paths.
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Serializes every metric, names sorted, as
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  json::Value snapshot(const SnapshotOptions &Opts = {}) const;

  /// Zeroes every registered metric (registrations survive). Tests use
  /// this to isolate workloads; the service never calls it.
  void reset();

  /// The process-wide registry the PVP service reports through
  /// pvp/metrics.
  static Registry &global();

private:
  struct Shard {
    mutable std::mutex Mutex;
    std::unordered_map<std::string, std::unique_ptr<Counter>> Counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> Gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> Histograms;
  };

  Shard &shardFor(std::string_view Name);
  const Shard &shardFor(std::string_view Name) const;

  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace telemetry
} // namespace ev

#endif // EASYVIEW_SUPPORT_TELEMETRY_H
