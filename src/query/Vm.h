//===- query/Vm.h - Batched EVQL bytecode execution -----------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes programs compiled by query/Compiler.h. Instead of walking the
/// AST once per node the way the interpreter does, the VM sweeps each
/// statement's straight-line bytecode over chunks of node lanes against
/// columnar state: typed register banks laid out register-major per chunk,
/// precomputed depth/fan-out/frame-attribute columns (computed once per
/// profile topology, invalidated only by prune/keep), and memoized metric
/// views shared across lanes.
///
/// Contract: the interpreter (query/Interpreter.h) is the oracle. For any
/// program the compiler accepts, runCompiled() produces byte-identical
/// QueryOutput — including error messages and line numbers — at any
/// EV_THREADS setting. Chunks own disjoint lane ranges and errors merge by
/// lowest node id, so results never depend on scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_QUERY_VM_H
#define EASYVIEW_QUERY_VM_H

#include "query/Compiler.h"
#include "query/Interpreter.h"

namespace ev {
namespace evql {

/// Runs a compiled program against \p P. The input profile is not
/// modified; the output holds a transformed copy, exactly like the
/// interpreter's runProgram().
Result<QueryOutput> runCompiled(const Profile &P,
                                const CompiledProgram &Prog);

/// Parses \p Source, compiles it, and runs the VM; falls back to the
/// interpreter for the rare program the compiler rejects (see
/// compileProgram()). This is the engine entry point for callers that do
/// not manage a ProgramCache themselves.
Result<QueryOutput> runProgramAuto(const Profile &P, std::string_view Source,
                                   const AnalysisLimits &Limits);
Result<QueryOutput> runProgramAuto(const Profile &P,
                                   std::string_view Source);

} // namespace evql
} // namespace ev

#endif // EASYVIEW_QUERY_VM_H
