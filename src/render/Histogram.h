//===- render/Histogram.h - Per-context metric histograms -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The histogram attached to a context in the aggregate view (paper §VI-A:
/// "for any context in the aggregate profile, EasyView attaches a histogram
/// to show all the metrics of the same context from different profiles").
/// In Fig. 4 this is the per-snapshot active-memory series whose shape
/// reveals leaks. Rendered as ASCII bars (hover text) or SVG.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_RENDER_HISTOGRAM_H
#define EASYVIEW_RENDER_HISTOGRAM_H

#include <string>
#include <string_view>
#include <vector>

namespace ev {

struct HistogramOptions {
  unsigned Height = 8;    ///< Bar rows (ASCII) or px/12 (SVG).
  unsigned MaxBars = 64;  ///< Series longer than this are re-binned.
  std::string_view Unit;  ///< Metric unit for axis labels.
  std::string Title;
};

/// Renders the per-profile series as ASCII block bars with a value axis
/// and a trend annotation (rising / falling / flat, from the least-squares
/// slope).
std::string renderHistogramAscii(const std::vector<double> &Series,
                                 const HistogramOptions &Options = {});

/// Renders the series as a standalone SVG bar chart.
std::string renderHistogramSvg(const std::vector<double> &Series,
                               const HistogramOptions &Options = {});

/// Downsamples \p Series to at most \p MaxBars bins by averaging.
std::vector<double> rebinSeries(const std::vector<double> &Series,
                                unsigned MaxBars);

} // namespace ev

#endif // EASYVIEW_RENDER_HISTOGRAM_H
