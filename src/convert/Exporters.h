//===- convert/Exporters.h - Generic representation -> foreign formats ----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exporters from the generic representation back to foreign formats. The
/// paper's data builder is bidirectional in spirit — tools emit EasyView's
/// format, and EasyView interoperates with the existing ecosystem — so the
/// library can hand profiles back to FlameGraph scripts (collapsed),
/// speedscope, chrome://tracing, and pprof toolchains. Every exporter has
/// a matching importer in Converters.h; round-trip conservation is
/// property-tested.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_CONVERT_EXPORTERS_H
#define EASYVIEW_CONVERT_EXPORTERS_H

#include "profile/Profile.h"
#include "proto/PprofFormat.h"

#include <string>

namespace ev {
namespace convert {

/// Folded stacks ("a;b;c <value>"), one line per context with a nonzero
/// exclusive value of \p Metric. Values round to the nearest integer
/// (the format carries counts). Frames render as "name" or
/// "name (module)" when a module is known.
std::string toCollapsed(const Profile &P, MetricId Metric);

/// speedscope's sampled-profile JSON: one sample per context with nonzero
/// exclusive value, weights in the metric's unit.
std::string toSpeedscope(const Profile &P, MetricId Metric);

/// Chrome trace-event JSON with "X" complete events; \p Metric must be a
/// time-like metric in nanoseconds (trace timestamps are microseconds).
/// Event nesting mirrors the CCT: each context becomes a span covering
/// its inclusive time.
std::string toChromeTrace(const Profile &P, MetricId Metric);

/// pprof object model with every profile metric as a sample type and one
/// sample per context carrying the exclusive values (leaf-first location
/// ids, as pprof specifies).
pprof::PprofProfile toPprofModel(const Profile &P);

/// Serialized profile.proto bytes of toPprofModel().
std::string toPprof(const Profile &P);

} // namespace convert
} // namespace ev

#endif // EASYVIEW_CONVERT_EXPORTERS_H
