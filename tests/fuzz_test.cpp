//===- tests/fuzz_test.cpp - Failure-injection robustness tests -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fuzz-style checks: every loader must survive random
/// bytes, truncations, and bit flips of valid inputs — returning an error
/// or a verified profile, never crashing or producing an inconsistent
/// tree. This backs the library's rule that untrusted input is reported,
/// not asserted.
///
//===----------------------------------------------------------------------===//

#include "analysis/ProfileLint.h"
#include "analysis/Sema.h"
#include "convert/Converters.h"
#include "proto/EvProf.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Xml.h"

#include "TestHelpers.h"
#include "workload/LuleshWorkload.h"
#include "workload/SyntheticProfile.h"

#include <gtest/gtest.h>

using namespace ev;

namespace {

std::string randomBytes(Rng &R, size_t Length) {
  std::string Out(Length, '\0');
  for (char &C : Out)
    C = static_cast<char>(R.below(256));
  return Out;
}

/// The loader contract under hostile input: error or verified profile.
void expectSafe(Result<Profile> P) {
  if (!P.ok())
    return;
  Result<bool> V = P->verify();
  EXPECT_TRUE(V.ok()) << V.error();
}

} // namespace

class FuzzSeed : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(FuzzSeed, RandomBytesIntoEveryLoader) {
  Rng R(GetParam());
  for (int Round = 0; Round < 20; ++Round) {
    std::string Bytes = randomBytes(R, 16 + R.below(512));
    expectSafe(convert::load(Bytes));
    expectSafe(readEvProf(Bytes));
    expectSafe(convert::fromPprof(Bytes));
    expectSafe(convert::fromCollapsed(Bytes));
    expectSafe(convert::fromPerfScript(Bytes));
    expectSafe(convert::fromChromeTrace(Bytes));
    expectSafe(convert::fromSpeedscope(Bytes));
    expectSafe(convert::fromHpctoolkit(Bytes));
    expectSafe(convert::fromScalene(Bytes));
    expectSafe(convert::fromPyinstrument(Bytes));
    (void)json::parse(Bytes);
    (void)xml::parse(Bytes);
  }
}

TEST_P(FuzzSeed, TruncatedEvprof) {
  Rng R(GetParam());
  std::string Valid = writeEvProf(test::makeRandomProfile(GetParam()));
  for (int Round = 0; Round < 30; ++Round) {
    size_t Cut = R.below(Valid.size());
    expectSafe(readEvProf(Valid.substr(0, Cut)));
  }
}

TEST_P(FuzzSeed, BitFlippedEvprof) {
  Rng R(GetParam());
  std::string Valid = writeEvProf(test::makeRandomProfile(GetParam()));
  for (int Round = 0; Round < 30; ++Round) {
    std::string Mutated = Valid;
    // Flip a handful of random bits past the magic.
    for (int Flip = 0; Flip < 4; ++Flip) {
      size_t At = EvProfMagic.size() +
                  R.below(Mutated.size() - EvProfMagic.size());
      Mutated[At] = static_cast<char>(Mutated[At] ^ (1 << R.below(8)));
    }
    expectSafe(readEvProf(Mutated));
  }
}

TEST_P(FuzzSeed, BitFlippedPprof) {
  Rng R(GetParam());
  workload::SyntheticOptions Opt;
  Opt.Seed = GetParam();
  Opt.TargetBytes = 16 << 10;
  std::string Valid = workload::generatePprofBytes(Opt);
  for (int Round = 0; Round < 20; ++Round) {
    std::string Mutated = Valid;
    for (int Flip = 0; Flip < 4; ++Flip) {
      size_t At = R.below(Mutated.size());
      Mutated[At] = static_cast<char>(Mutated[At] ^ (1 << R.below(8)));
    }
    expectSafe(convert::fromPprof(Mutated));
  }
}

TEST_P(FuzzSeed, MutatedJsonConverters) {
  Rng R(GetParam());
  const char *Valid = R"({
    "shared": {"frames": [{"name": "f"}, {"name": "g"}]},
    "profiles": [{"type": "sampled", "samples": [[0, 1]], "weights": [2]}]
  })";
  std::string Base = Valid;
  for (int Round = 0; Round < 30; ++Round) {
    std::string Mutated = Base;
    size_t At = R.below(Mutated.size());
    Mutated[At] = static_cast<char>(R.below(128));
    expectSafe(convert::fromSpeedscope(Mutated));
    expectSafe(convert::fromChromeTrace(Mutated));
  }
}

TEST_P(FuzzSeed, MutatedHpctoolkitXml) {
  Rng R(GetParam());
  workload::LuleshOptions Opt;
  Opt.Seed = GetParam();
  std::string Valid = workload::generateLuleshExperimentXml(Opt);
  for (int Round = 0; Round < 10; ++Round) {
    std::string Mutated = Valid;
    for (int Flip = 0; Flip < 3; ++Flip) {
      size_t At = R.below(Mutated.size());
      Mutated[At] = static_cast<char>(32 + R.below(95));
    }
    expectSafe(convert::fromHpctoolkit(Mutated));
  }
}

TEST(Fuzz, EmptyInputsEverywhere) {
  expectSafe(convert::load(""));
  expectSafe(readEvProf(""));
  expectSafe(convert::fromPprof(""));
  expectSafe(convert::fromCollapsed(""));
  expectSafe(convert::fromPerfScript(""));
  expectSafe(convert::fromChromeTrace(""));
  expectSafe(convert::fromSpeedscope(""));
  expectSafe(convert::fromHpctoolkit(""));
  expectSafe(convert::fromScalene(""));
  expectSafe(convert::fromPyinstrument(""));
}

TEST(Fuzz, DeepJsonAndXmlDoNotOverflowStack) {
  std::string DeepJson(100000, '[');
  (void)json::parse(DeepJson); // Depth-limited.
  std::string DeepXml;
  for (int I = 0; I < 20000; ++I)
    DeepXml += "<a>";
  Result<std::unique_ptr<xml::Element>> X = xml::parse(DeepXml);
  // Recursion depth equals element depth; builds must not crash. The
  // document is unterminated, so it must fail.
  EXPECT_FALSE(X.ok());
}

//===----------------------------------------------------------------------===
// Static analysis under hostile input
//===----------------------------------------------------------------------===

TEST_P(FuzzSeed, LintSurvivesHostileBytes) {
  Rng R(GetParam());
  // Tight budgets: hostile input must degrade (truncated flags, findings
  // capped), never crash or loop.
  LintOptions Opts;
  Opts.Limits.MaxLintNodes = 64;
  ProfileLinter Linter(Opts);
  DecodeLimits Decode;
  Decode.MaxNodes = 64;
  Decode.MaxStrings = 64;

  for (int Round = 0; Round < 20; ++Round) {
    std::string Bytes = randomBytes(R, 16 + R.below(512));
    DiagnosticSet Plain(32);
    (void)Linter.lint(Bytes, Decode, Plain);
    // A magic prefix routes the same garbage through the wire scan proper.
    DiagnosticSet Prefixed(32);
    bool Decoded =
        Linter.lint(std::string(EvProfMagic) + Bytes, Decode, Prefixed);
    // Whenever the decode fails, the lint run explains why: the wire scan
    // blames a specific corruption or the generic EVL100 stands in.
    if (!Decoded) {
      EXPECT_FALSE(Prefixed.empty());
    }
  }
}

TEST_P(FuzzSeed, LintBitFlippedEvprofExplainsOrPasses) {
  Rng R(GetParam());
  std::string Valid = writeEvProf(test::makeRandomProfile(GetParam()));
  ProfileLinter Linter;
  for (int Round = 0; Round < 20; ++Round) {
    std::string Mutated = Valid;
    for (int Flip = 0; Flip < 4; ++Flip) {
      size_t At = EvProfMagic.size() +
                  R.below(Mutated.size() - EvProfMagic.size());
      Mutated[At] = static_cast<char>(Mutated[At] ^ (1u << R.below(8)));
    }
    DiagnosticSet Diags(64);
    bool Decoded = Linter.lint(Mutated, DecodeLimits(), Diags);
    if (!Decoded) {
      EXPECT_FALSE(Diags.empty());
    }
    (void)Linter.lint(Mutated.substr(0, R.below(Mutated.size())),
                      DecodeLimits(), Diags);
  }
}

TEST_P(FuzzSeed, SemaSurvivesHostileSources) {
  Rng R(GetParam());
  AnalysisLimits Tight;
  Tight.MaxDiagnostics = 16;
  Tight.MaxExprDepth = 16;
  Tight.MaxProgramBytes = 4096;
  SemaOptions Opts;
  Opts.Limits = Tight;
  SemaChecker Checker(Opts);

  // Raw bytes: the lexer/parser must fail cleanly into EVQL001 findings.
  for (int Round = 0; Round < 10; ++Round) {
    DiagnosticSet Diags(Tight.MaxDiagnostics);
    Checker.checkSource(randomBytes(R, R.below(512)), Diags);
  }

  // Token soup: syntactically plausible streams stress recovery and the
  // checker itself. Every outcome is acceptable except a crash.
  static const char *Vocab[] = {
      "let",  "derive", "prune",  "keep",   "when",   "print", "return",
      "x",    "y",      "metric", "(",      ")",      "\"t\"", "0",
      "1",    "+",      "-",      "*",      "/",      "%",     "&&",
      "||",   "!",      "<",      ">",      "==",     "!=",    "?",
      ":",    ";",      "=",      "name",   "total",  ",",     "zz9"};
  for (int Round = 0; Round < 20; ++Round) {
    std::string Source;
    size_t Len = 1 + R.below(120);
    for (size_t I = 0; I < Len; ++I) {
      Source += Vocab[R.below(std::size(Vocab))];
      Source += ' ';
    }
    DiagnosticSet Diags(Tight.MaxDiagnostics);
    Checker.checkSource(Source, Diags);
    EXPECT_LE(Diags.size(), Tight.MaxDiagnostics);
  }

  // Oversized input degrades with the truncated flag, never an abort.
  DiagnosticSet Big(Tight.MaxDiagnostics);
  Checker.checkSource(std::string(8192, 'a'), Big);
  EXPECT_TRUE(Big.truncated());
}
