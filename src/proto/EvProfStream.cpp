//===- proto/EvProfStream.cpp - Incremental .evprof decoding --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "proto/EvProfStream.h"

#include "proto/EvProfFields.h"
#include "support/ProtoWire.h"

namespace ev {

using namespace evprof;

EvProfStreamDecoder::EvProfStreamDecoder(const DecodeLimits &L)
    : Limits(L), Guard(Limits) {}

Result<bool> EvProfStreamDecoder::poison(std::string Message) {
  Poisoned = true;
  Diag = std::move(Message);
  return makeError(Diag);
}

namespace {

/// Raw node exactly as the batch decoder stages it.
struct RawNode {
  uint64_t ParentPlus1 = 0;
  uint64_t FrameRef = 0;
  std::vector<MetricValue> Values;
};

} // namespace

Result<bool> EvProfStreamDecoder::decodeField(uint32_t FieldNumber,
                                              std::string_view Payload) {
  auto MapString = [&](uint64_t Old) -> Result<StringId> {
    if (Old >= StringMap.size())
      return makeError("string reference out of range");
    return StringMap[Old];
  };
  auto MapFrame = [&](uint64_t Old) -> Result<FrameId> {
    if (Old >= FrameMap.size())
      return makeError("frame reference out of range");
    return FrameMap[Old];
  };

  switch (FieldNumber) {
  case FProfileName:
    P.setName(std::string(Payload));
    return true;

  case FProfileString: {
    if (!Guard.chargeString(Payload.size()) ||
        !Guard.chargeAlloc(Payload.size()))
      return poison(Guard.error());
    StringMap.push_back(P.strings().intern(Payload));
    return true;
  }

  case FProfileMetric: {
    if (!Guard.chargeMetric())
      return poison(Guard.error());
    MetricDescriptor M;
    ProtoReader R(Payload);
    while (R.next()) {
      switch (R.fieldNumber()) {
      case FMetricName:
        M.Name = std::string(R.bytes());
        break;
      case FMetricUnit:
        M.Unit = std::string(R.bytes());
        break;
      case FMetricAgg: {
        uint64_t Agg = R.varint();
        if (Agg > static_cast<uint64_t>(MetricAggregation::Last))
          return poison("invalid metric aggregation");
        M.Aggregation = static_cast<MetricAggregation>(Agg);
        break;
      }
      default:
        R.skip();
      }
    }
    if (R.failed())
      return poison("malformed Metric message");
    for (const MetricDescriptor &Seen : P.metrics())
      if (Seen.Name == M.Name)
        return poison("duplicate metric descriptor '" + M.Name +
                      "' at index " + std::to_string(P.metrics().size()));
    P.addMetric(M.Name, M.Unit, M.Aggregation);
    return true;
  }

  case FProfileFrame: {
    if (!Guard.chargeFrame())
      return poison(Guard.error());
    uint64_t Kind = 0, Name = 0, File = 0, Line = 0, Module = 0, Addr = 0;
    ProtoReader R(Payload);
    while (R.next()) {
      switch (R.fieldNumber()) {
      case FFrameKind:
        Kind = R.varint();
        break;
      case FFrameName:
        Name = R.varint();
        break;
      case FFrameFile:
        File = R.varint();
        break;
      case FFrameLine:
        Line = R.varint();
        break;
      case FFrameModule:
        Module = R.varint();
        break;
      case FFrameAddr:
        Addr = R.varint();
        break;
      default:
        R.skip();
      }
    }
    if (R.failed())
      return poison("malformed Frame message");
    if (Kind > static_cast<uint64_t>(FrameKind::Thread))
      return poison("invalid frame kind");
    Frame F;
    F.Kind = static_cast<FrameKind>(Kind);
    Result<StringId> NameId = MapString(Name);
    if (!NameId)
      return poison(NameId.error());
    F.Name = *NameId;
    Result<StringId> FileId = MapString(File);
    if (!FileId)
      return poison(FileId.error());
    F.Loc.File = *FileId;
    if (Line > 0xFFFFFFFFULL)
      return poison("line number out of range");
    F.Loc.Line = static_cast<uint32_t>(Line);
    Result<StringId> ModuleId = MapString(Module);
    if (!ModuleId)
      return poison(ModuleId.error());
    F.Loc.Module = *ModuleId;
    F.Loc.Address = Addr;
    FrameMap.push_back(P.internFrame(F));
    return true;
  }

  case FProfileNode: {
    if (!Guard.chargeNode())
      return poison(Guard.error());
    RawNode N;
    ProtoReader R(Payload);
    while (R.next()) {
      switch (R.fieldNumber()) {
      case FNodeParentPlus1:
        N.ParentPlus1 = R.varint();
        break;
      case FNodeFrame:
        N.FrameRef = R.varint();
        break;
      case FNodeValue: {
        MetricValue MV;
        ProtoReader VR(R.bytes());
        while (VR.next()) {
          switch (VR.fieldNumber()) {
          case FValueMetric:
            MV.Metric = static_cast<MetricId>(VR.varint());
            break;
          case FValueValue:
            MV.Value = VR.fixedDouble();
            break;
          default:
            VR.skip();
          }
        }
        if (VR.failed())
          return poison("malformed MetricValue message");
        if (!Guard.chargeAlloc(sizeof(MetricValue)))
          return poison(Guard.error());
        N.Values.push_back(MV);
        break;
      }
      default:
        R.skip();
      }
    }
    if (R.failed())
      return poison("malformed Node message");
    // Canonical order puts the whole metric schema ahead of the first
    // node, so the batch decoder's end-of-decode range check is
    // equivalent to checking here, eagerly.
    for (const MetricValue &MV : N.Values)
      if (MV.Metric >= P.metrics().size())
        return poison("node metric reference out of range");
    size_t I = WireNodes;
    Result<FrameId> F = MapFrame(N.FrameRef);
    if (!F)
      return poison(F.error());
    if (I == 0) {
      if (N.ParentPlus1 != 0)
        return poison("first node is not a root");
      // Wire node 0 maps onto the implicit root.
      P.node(P.root()).FrameRef = *F;
      P.node(P.root()).Metrics = std::move(N.Values);
      Depths.push_back(0);
    } else {
      if (N.ParentPlus1 == 0 || N.ParentPlus1 > I)
        return poison("node " + std::to_string(I) +
                      " has invalid parent reference");
      uint32_t Depth = Depths[N.ParentPlus1 - 1] + 1;
      if (!Guard.checkDepth(Depth))
        return poison(Guard.error());
      // createNode appends sequentially, so wire ids equal NodeIds.
      NodeId Id = P.createNode(static_cast<NodeId>(N.ParentPlus1 - 1), *F);
      P.node(Id).Metrics = std::move(N.Values);
      Depths.push_back(Depth);
    }
    ++WireNodes;
    return true;
  }

  case FProfileGroup: {
    uint64_t Kind = 0, Metric = 0;
    double Value = 0.0;
    std::vector<uint64_t> Contexts;
    ProtoReader R(Payload);
    while (R.next()) {
      switch (R.fieldNumber()) {
      case FGroupKind:
        Kind = R.varint();
        break;
      case FGroupContext: {
        std::string_view Packed = R.bytes();
        VarintReader VR(Packed.data(), Packed.size());
        while (!VR.atEnd() && !VR.failed()) {
          if (!Guard.chargeAlloc(sizeof(uint64_t)))
            return poison(Guard.error());
          Contexts.push_back(VR.readVarint());
        }
        if (VR.failed())
          return poison("malformed packed context list");
        break;
      }
      case FGroupMetric:
        Metric = R.varint();
        break;
      case FGroupValue:
        Value = R.fixedDouble();
        break;
      default:
        R.skip();
      }
    }
    if (R.failed())
      return poison("malformed Group message");
    ContextGroup Group;
    Result<StringId> KindId = MapString(Kind);
    if (!KindId)
      return poison(KindId.error());
    Group.Kind = *KindId;
    if (Metric >= P.metrics().size())
      return poison("group metric reference out of range");
    Group.Metric = static_cast<MetricId>(Metric);
    Group.Value = Value;
    for (uint64_t Ctx : Contexts) {
      if (Ctx >= P.nodeCount())
        return poison("group context reference out of range");
      Group.Contexts.push_back(static_cast<NodeId>(Ctx));
    }
    P.addGroup(std::move(Group));
    return true;
  }

  default:
    return true; // Unknown top-level fields are tolerated, as in batch.
  }
}

Result<size_t> EvProfStreamDecoder::feed(std::string_view Bytes) {
  if (Poisoned)
    return makeError(Diag);
  Total += Bytes.size();
  if (Total > Limits.MaxInputBytes) {
    poison("input of " + std::to_string(Total) +
           " bytes exceeds the decode limit");
    return makeError(Diag);
  }
  Pending.append(Bytes);

  if (!MagicSeen) {
    if (Pending.size() < EvProfMagic.size())
      return size_t(0);
    if (!isEvProf(Pending)) {
      poison("not an .evprof stream: bad magic");
      return makeError(Diag);
    }
    Pending.erase(0, EvProfMagic.size());
    MagicSeen = true;
  }

  size_t NodesBefore = WireNodes;
  size_t Off = 0;
  for (;;) {
    VarintReader VR(Pending.data() + Off, Pending.size() - Off);
    if (VR.atEnd())
      break;
    size_t Avail = VR.remaining();
    uint64_t Tag = VR.readVarint();
    if (VR.failed()) {
      if (Avail < 10)
        break; // Possibly a varint split across feeds; wait for more.
      poison("malformed EvProfile message");
      return makeError(Diag);
    }
    uint32_t Field = static_cast<uint32_t>(Tag >> 3);
    auto WT = static_cast<WireType>(Tag & 7);

    std::string_view Payload;
    bool Decodable = false;
    if (WT == WireType::LengthDelimited) {
      size_t LenAvail = VR.remaining();
      uint64_t Len = VR.readVarint();
      if (VR.failed()) {
        if (LenAvail < 10)
          break;
        poison("malformed EvProfile message");
        return makeError(Diag);
      }
      if (Len > Limits.MaxInputBytes) {
        poison("input of " + std::to_string(Len) +
               " bytes exceeds the decode limit");
        return makeError(Diag);
      }
      if (VR.remaining() < Len)
        break; // Field body not fully buffered yet.
      Payload = std::string_view(
          reinterpret_cast<const char *>(VR.current()),
          static_cast<size_t>(Len));
      VR.skip(static_cast<size_t>(Len));
      Decodable = true;
    } else if (WT == WireType::Varint) {
      size_t VAvail = VR.remaining();
      VR.readVarint();
      if (VR.failed()) {
        if (VAvail < 10)
          break;
        poison("malformed EvProfile message");
        return makeError(Diag);
      }
    } else if (WT == WireType::Fixed64) {
      if (VR.remaining() < 8)
        break;
      VR.skip(8);
    } else if (WT == WireType::Fixed32) {
      if (VR.remaining() < 4)
        break;
      VR.skip(4);
    } else {
      poison("malformed EvProfile message");
      return makeError(Diag);
    }

    if (Field >= FProfileName && Field <= FProfileGroup && !Decodable) {
      // A known field with the wrong wire type is structural corruption;
      // the batch decoder fails the same way.
      poison("malformed EvProfile message");
      return makeError(Diag);
    }
    if (Decodable)
      if (Result<bool> R = decodeField(Field, Payload); !R)
        return makeError(R.error());
    Off += VR.position();
  }
  Pending.erase(0, Off);
  return WireNodes - NodesBefore;
}

Result<Profile> EvProfStreamDecoder::snapshot() const {
  if (Poisoned)
    return makeError(Diag);
  if (WireNodes == 0)
    return makeError("profile stream has no nodes");
  return Profile(P);
}

} // namespace ev
