//===- analysis/FleetAggregate.h - Streaming fleet-scale aggregation ------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming, pairwise-mergeable aggregation over arbitrarily many
/// profiles. The batch path (analysis/Aggregate.h) holds every decoded
/// input plus a dense (node, metric) x profile matrix — O(N profiles)
/// memory, fine for the paper's 8-input aggregate view but hopeless for a
/// fleet that ships thousands of profiles per release. A CohortAccumulator
/// instead folds profiles into one canonical accumulator CCT as they
/// arrive, keeping only streaming moments (count / mean / M2 / min / max —
/// Welford's algorithm, merged with Chan's parallel update) per
/// (node, metric), so memory is O(merged CCT) regardless of how many
/// profiles stream through.
///
/// Two scalability levers:
///  - add(profile) ingests one decoded profile and discards it — the
///    caller never holds more than one input at a time;
///  - merge(other) combines two accumulators exactly (the moments are
///    pairwise-mergeable), so shards can aggregate independently and
///    reduce.
///
/// Under a node budget the accumulator keeps the top-K heavy hitters by
/// inclusive weight: when the CCT outgrows the budget, the lightest
/// subtrees are folded into per-parent "(pruned)" catch-all children that
/// conserve totals but give up attribution (isFolded() marks them; the
/// regression analyzer skips them).
///
/// This feeds the EVL3xx differential regression rules
/// (analysis/Regression.h): two cohorts in, lint-style findings out.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_FLEETAGGREGATE_H
#define EASYVIEW_ANALYSIS_FLEETAGGREGATE_H

#include "profile/Profile.h"
#include "support/Cancel.h"

#include <unordered_map>
#include <vector>

namespace ev {

class ColumnarProfile;

/// Configuration for one accumulator.
struct FleetAggregateOptions {
  /// Hard cap on accumulator CCT nodes. Exceeding it triggers a
  /// heavy-hitter prune back under the budget. 0 = unbounded.
  size_t NodeBudget = 1u << 16;
  /// After a prune the tree is shrunk to this fraction of the budget so
  /// ingestion does not re-trip the budget on every added profile.
  double PruneTargetFraction = 0.75;
  /// Weight metric for heavy-hitter ranking (index into the FIRST
  /// profile's schema). Nodes are ranked by inclusive sum of this metric.
  MetricId WeightMetric = 0;
};

/// Streaming moments of one (node, metric) pair over the profiles that
/// carried a value for it. Cohort-wide statistics (absent profiles count
/// as zero, matching the batch aggregate's dense matrix) are reconstructed
/// by CohortAccumulator::stats().
struct StreamingMoments {
  uint64_t Present = 0; ///< Profiles that recorded a value at this context.
  double Mean = 0.0;    ///< Mean over the Present values.
  double M2 = 0.0;      ///< Sum of squared deviations over Present values.
  double Min = 0.0;     ///< Smallest present value.
  double Max = 0.0;     ///< Largest present value.

  void push(double Value);
  void mergeFrom(const StreamingMoments &Other);
  double sum() const { return Mean * static_cast<double>(Present); }
};

/// Cohort-wide statistics of one (node, metric): every profile in the
/// cohort contributes, with absent contexts contributing zero.
struct CohortNodeStats {
  uint64_t Profiles = 0; ///< Cohort size (denominator of Mean).
  uint64_t Present = 0;  ///< Profiles that actually carried a value.
  double Sum = 0.0;
  double Mean = 0.0;
  double Stddev = 0.0; ///< Population stddev over the full cohort.
  double Min = 0.0;
  double Max = 0.0;
};

/// The streaming aggregator: one canonical CCT plus per-(node, metric)
/// streaming moments. Not thread-safe; shard across accumulators and
/// merge() instead.
class CohortAccumulator {
public:
  explicit CohortAccumulator(FleetAggregateOptions Opts = {});

  /// Folds \p P into the accumulator. Contexts match by textual frame
  /// identity under a matching parent — the same rule as the batch
  /// aggregate. The input can be destroyed immediately afterwards.
  void add(const Profile &P, const CancelToken &Cancel = {});

  /// Folds a columnar profile (profile/Columnar.h) without materializing
  /// its AoS form: the tree walk sweeps the flat parent/frame columns and
  /// samples come straight from the metric CSR. Produces exactly the
  /// statistics add(P.materialize()) would — the budget-constrained path
  /// for fleet cohorts streaming out of a spilling ProfileStore.
  void add(const ColumnarProfile &P, const CancelToken &Cancel = {});

  /// Exact pairwise merge: afterwards this accumulator reports the same
  /// statistics as if every profile of \p Other had been add()ed here (up
  /// to pruning, which is re-evaluated against this node budget).
  void merge(const CohortAccumulator &Other, const CancelToken &Cancel = {});

  /// Profiles folded in so far (add() calls plus merged counts).
  uint64_t profileCount() const { return Profiles; }

  /// The canonical accumulator CCT. Node metric lists stay empty — the
  /// moments table is authoritative; shape() provides structure, frames,
  /// and the metric schema (adopted from the first profile seen).
  const Profile &shape() const { return Shape; }

  /// Cohort statistics for (\p Node, \p Metric); zeros when the pair never
  /// recorded a value.
  CohortNodeStats stats(NodeId Node, MetricId Metric) const;

  /// Inclusive (subtree) sum of \p Metric at \p Node across the cohort —
  /// the column the share-based regression rules consume. Recomputed
  /// on demand; O(nodes) per call, so callers cache the column.
  std::vector<double> inclusiveSumColumn(MetricId Metric) const;

  /// True when \p Node is a "(pruned)" catch-all that absorbed folded
  /// subtrees: its sums are real but its attribution and distribution
  /// moments are not, so analyses must skip it.
  bool isFolded(NodeId Node) const;

  /// Times the node budget tripped a prune.
  uint64_t pruneCount() const { return Prunes; }

  /// Approximate resident footprint of the accumulator (shape CCT plus
  /// moments table). The whole point of streaming aggregation: this stays
  /// O(merged CCT) while the batch path's footprint grows with N.
  size_t approxMemoryBytes() const;

  const FleetAggregateOptions &options() const { return Opts; }

  /// Internal: key for the sparse moments store.
  static uint64_t momentKey(NodeId Node, MetricId Metric) {
    return (static_cast<uint64_t>(Node) << 16) | Metric;
  }

private:
  NodeId childFor(NodeId Parent, FrameId F);
  void adoptSchema(const Profile &P);
  void adoptSchema(const ColumnarProfile &P);
  void pruneToBudget();
  void pruneOnce(size_t Target);

  FleetAggregateOptions Opts;
  Profile Shape;
  uint64_t Profiles = 0;
  uint64_t Prunes = 0;
  /// (parent << 32 | frame) -> child, for prefix merging.
  std::unordered_map<uint64_t, NodeId> ChildIndex;
  std::unordered_map<uint64_t, StreamingMoments> Moments;
  std::vector<char> Folded; ///< Indexed by NodeId, 1 for "(pruned)" nodes.
};

} // namespace ev

#endif // EASYVIEW_ANALYSIS_FLEETAGGREGATE_H
