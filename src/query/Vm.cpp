//===- query/Vm.cpp - Batched EVQL bytecode execution ---------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Execution model. Node statements (derive/prune/keep) sweep the statement
// bytecode over chunks of EVQL_CHUNK lanes; scalar statements
// (let/print/return) run the same executor with a single lane. Per chunk,
// each register is a contiguous row of lane values (register-major), all
// zero-initialized: a lane that a masked instruction skipped reads zeros,
// which the compiler's mask algebra absorbs by construction. Bool register
// 0 is pinned all-true so Mask == FullMask costs nothing.
//
// Error parity with the interpreter: a Trap (or a failed metric-view
// resolution) kills its active lanes with the interpreter's message; the
// first instruction to kill a lane wins for that lane (instructions are
// emitted in interpreter evaluation order), and across lanes/chunks the
// lowest node id wins (the interpreter stops at the first node that
// errors). That merge is scheduling-independent, which is what keeps
// EV_THREADS=0 and EV_THREADS=4 byte-identical.
//
//===----------------------------------------------------------------------===//

#include "query/Vm.h"

#include "analysis/MetricEngine.h"
#include "analysis/Prune.h"
#include "analysis/Transform.h"
#include "profile/Columnar.h"
#include "query/Parser.h"
#include "support/Strings.h"
#include "support/ThreadPool.h"

#include <cmath>
#include <cstring>
#include <mutex>

namespace ev {
namespace evql {

namespace {

/// Lanes per execution chunk. Large enough to amortize the per-instruction
/// dispatch over a cache-friendly row, small enough that a chunk's banks
/// stay resident.
constexpr size_t ChunkLen = 2048;

/// Per-run mutable state shared by every statement of one program.
struct Run {
  QueryOutput Out;
  // Typed global banks ('let' results), indexed by compile-time slot.
  std::vector<double> NumGlobals;
  std::vector<uint8_t> BoolGlobals;
  std::vector<std::string> StrGlobals;
  // Metric views of the CURRENT working profile, memoized across lanes and
  // chunks; cleared whenever the interpreter clears its map (derive adds a
  // column, prune/keep renumbers nodes).
  std::unordered_map<std::string, MetricView> Views;
  std::mutex ViewsMutex;
  // Topology and frame-attribute columns, computed once per topology
  // version: derive does not invalidate them, prune/keep does.
  bool TopoValid = false;
  std::vector<uint32_t> Parents;
  std::vector<uint32_t> Depths;
  std::vector<uint32_t> ChildCounts;
  std::vector<std::string_view> Names;
  std::vector<std::string_view> Files;
  std::vector<std::string_view> Modules;
  std::vector<std::string_view> Kinds;
  std::vector<double> Lines;

  void invalidateTopo() { TopoValid = false; }

  void ensureTopo() {
    if (TopoValid)
      return;
    const Profile &P = Out.Result;
    size_t N = P.nodeCount();
    Parents.assign(N, InvalidNode);
    ChildCounts.assign(N, 0);
    Names.resize(N);
    Files.resize(N);
    Modules.resize(N);
    Kinds.resize(N);
    Lines.assign(N, 0.0);
    for (NodeId Id = 0; Id < N; ++Id) {
      const CCTNode &Node = P.node(Id);
      Parents[Id] = Node.Parent;
      ChildCounts[Id] = static_cast<uint32_t>(Node.Children.size());
      const Frame &F = P.frameOf(Id);
      Names[Id] = P.text(F.Name);
      Files[Id] = P.text(F.Loc.File);
      Modules[Id] = P.text(F.Loc.Module);
      Kinds[Id] = frameKindName(F.Kind);
      Lines[Id] = F.Loc.Line;
    }
    Depths = depthsFromParents(Parents);
    TopoValid = true;
  }

  /// The interpreter's Context::viewFor, against the working profile.
  /// Successful views are memoized; failures are not (the error kills the
  /// querying lanes anyway), and the message matches byte for byte.
  Result<const MetricView *> viewFor(const std::string &Name,
                                     uint32_t Line) {
    std::lock_guard<std::mutex> Lock(ViewsMutex);
    auto It = Views.find(Name);
    if (It != Views.end())
      return &It->second;
    MetricId Id = Out.Result.findMetric(Name);
    if (Id == Profile::InvalidMetric)
      return makeError("unknown metric '" + Name + "' at line " +
                       std::to_string(Line));
    auto [Ins, _] = Views.emplace(Name, MetricView(Out.Result, Id));
    return &Ins->second;
  }
};

/// One chunk's register banks plus per-lane death bookkeeping.
struct ChunkState {
  size_t Base = 0; ///< Node id of lane 0.
  size_t Len = 0;
  std::vector<double> Num;
  std::vector<uint8_t> Bool;
  std::vector<std::string> Str;
  std::vector<uint8_t> Dead;
  std::vector<std::string> Err;
  bool AnyDead = false;
};

void executeChunk(Run &R, const CompiledStmt &CS, ChunkState &S) {
  const size_t Len = S.Len;
  S.Num.assign(static_cast<size_t>(CS.NumRegs) * Len, 0.0);
  S.Bool.assign(static_cast<size_t>(CS.BoolRegs) * Len, 0);
  S.Str.assign(static_cast<size_t>(CS.StrRegs) * Len, std::string());
  S.Dead.assign(Len, 0);
  S.Err.assign(Len, std::string());
  S.AnyDead = false;
  std::fill_n(S.Bool.begin(), Len, static_cast<uint8_t>(1));

  // Per-chunk memoization of constant-name metric views: resolved at most
  // once per chunk, shared by every lane.
  std::vector<const MetricView *> SlotViews(CS.SlotNames.size(), nullptr);
  std::vector<uint8_t> SlotReady(CS.SlotNames.size(), 0);

  auto NumRow = [&](uint16_t Reg) { return S.Num.data() + size_t(Reg) * Len; };
  auto BoolRow = [&](uint16_t Reg) {
    return S.Bool.data() + size_t(Reg) * Len;
  };
  auto StrRow = [&](uint16_t Reg) { return S.Str.data() + size_t(Reg) * Len; };

  auto Fail = [&](size_t L, std::string Msg) {
    S.Dead[L] = 1;
    S.Err[L] = std::move(Msg);
    S.AnyDead = true;
  };

  for (const Instr &I : CS.Code) {
    const uint8_t *Mask =
        I.Mask == FullMask ? nullptr : BoolRow(I.Mask);
    auto ForLanes = [&](auto &&Body) {
      for (size_t L = 0; L < Len; ++L)
        if (!S.Dead[L] && (!Mask || Mask[L]))
          Body(L);
    };

    switch (I.TheOp) {
    case Op::LoadNum: {
      double *A = NumRow(I.A);
      ForLanes([&](size_t L) { A[L] = I.Imm; });
      break;
    }
    case Op::LoadBool: {
      uint8_t *A = BoolRow(I.A);
      uint8_t V = I.Imm != 0.0 ? 1 : 0;
      ForLanes([&](size_t L) { A[L] = V; });
      break;
    }
    case Op::LoadStr: {
      std::string *A = StrRow(I.A);
      const std::string &V = CS.Pool[I.Str];
      ForLanes([&](size_t L) { A[L] = V; });
      break;
    }
    case Op::LoadGlobalNum: {
      double *A = NumRow(I.A);
      double V = R.NumGlobals[I.Slot];
      ForLanes([&](size_t L) { A[L] = V; });
      break;
    }
    case Op::LoadGlobalBool: {
      uint8_t *A = BoolRow(I.A);
      uint8_t V = R.BoolGlobals[I.Slot];
      ForLanes([&](size_t L) { A[L] = V; });
      break;
    }
    case Op::LoadGlobalStr: {
      std::string *A = StrRow(I.A);
      const std::string &V = R.StrGlobals[I.Slot];
      ForLanes([&](size_t L) { A[L] = V; });
      break;
    }
    case Op::CopyNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B);
      ForLanes([&](size_t L) { A[L] = B[L]; });
      break;
    }
    case Op::CopyBool: {
      uint8_t *A = BoolRow(I.A);
      const uint8_t *B = BoolRow(I.B);
      ForLanes([&](size_t L) { A[L] = B[L]; });
      break;
    }
    case Op::CopyStr: {
      std::string *A = StrRow(I.A);
      const std::string *B = StrRow(I.B);
      ForLanes([&](size_t L) { A[L] = B[L]; });
      break;
    }
    case Op::BoolToNum: {
      double *A = NumRow(I.A);
      const uint8_t *B = BoolRow(I.B);
      ForLanes([&](size_t L) { A[L] = B[L] ? 1.0 : 0.0; });
      break;
    }
    case Op::NumToBool: {
      uint8_t *A = BoolRow(I.A);
      const double *B = NumRow(I.B);
      ForLanes([&](size_t L) { A[L] = B[L] != 0.0 ? 1 : 0; });
      break;
    }
    case Op::NegNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B);
      ForLanes([&](size_t L) { A[L] = -B[L]; });
      break;
    }
    case Op::AddNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B), *C = NumRow(I.C);
      ForLanes([&](size_t L) { A[L] = B[L] + C[L]; });
      break;
    }
    case Op::SubNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B), *C = NumRow(I.C);
      ForLanes([&](size_t L) { A[L] = B[L] - C[L]; });
      break;
    }
    case Op::MulNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B), *C = NumRow(I.C);
      ForLanes([&](size_t L) { A[L] = B[L] * C[L]; });
      break;
    }
    case Op::DivNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B), *C = NumRow(I.C);
      ForLanes([&](size_t L) { A[L] = C[L] == 0.0 ? 0.0 : B[L] / C[L]; });
      break;
    }
    case Op::ModNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B), *C = NumRow(I.C);
      ForLanes(
          [&](size_t L) { A[L] = C[L] == 0.0 ? 0.0 : std::fmod(B[L], C[L]); });
      break;
    }
    case Op::MinNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B), *C = NumRow(I.C);
      ForLanes([&](size_t L) { A[L] = std::min(B[L], C[L]); });
      break;
    }
    case Op::MaxNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B), *C = NumRow(I.C);
      ForLanes([&](size_t L) { A[L] = std::max(B[L], C[L]); });
      break;
    }
    case Op::AbsNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B);
      ForLanes([&](size_t L) { A[L] = std::abs(B[L]); });
      break;
    }
    case Op::LogNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B);
      ForLanes([&](size_t L) { A[L] = B[L] > 0 ? std::log(B[L]) : 0.0; });
      break;
    }
    case Op::SqrtNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B);
      ForLanes([&](size_t L) { A[L] = B[L] >= 0 ? std::sqrt(B[L]) : 0.0; });
      break;
    }
    case Op::FloorNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B);
      ForLanes([&](size_t L) { A[L] = std::floor(B[L]); });
      break;
    }
    case Op::CeilNum: {
      double *A = NumRow(I.A);
      const double *B = NumRow(I.B);
      ForLanes([&](size_t L) { A[L] = std::ceil(B[L]); });
      break;
    }
    case Op::LtNum:
    case Op::LeNum:
    case Op::GtNum:
    case Op::GeNum:
    case Op::EqNum:
    case Op::NeNum: {
      uint8_t *A = BoolRow(I.A);
      const double *B = NumRow(I.B), *C = NumRow(I.C);
      Op O = I.TheOp;
      ForLanes([&](size_t L) {
        bool V = O == Op::LtNum   ? B[L] < C[L]
                 : O == Op::LeNum ? B[L] <= C[L]
                 : O == Op::GtNum ? B[L] > C[L]
                 : O == Op::GeNum ? B[L] >= C[L]
                 : O == Op::EqNum ? B[L] == C[L]
                                  : B[L] != C[L];
        A[L] = V ? 1 : 0;
      });
      break;
    }
    case Op::NotBool: {
      uint8_t *A = BoolRow(I.A);
      const uint8_t *B = BoolRow(I.B);
      ForLanes([&](size_t L) { A[L] = B[L] ? 0 : 1; });
      break;
    }
    case Op::AndBool: {
      uint8_t *A = BoolRow(I.A);
      const uint8_t *B = BoolRow(I.B), *C = BoolRow(I.C);
      ForLanes([&](size_t L) { A[L] = (B[L] && C[L]) ? 1 : 0; });
      break;
    }
    case Op::OrBool: {
      uint8_t *A = BoolRow(I.A);
      const uint8_t *B = BoolRow(I.B), *C = BoolRow(I.C);
      ForLanes([&](size_t L) { A[L] = (B[L] || C[L]) ? 1 : 0; });
      break;
    }
    case Op::AndNotBool: {
      uint8_t *A = BoolRow(I.A);
      const uint8_t *B = BoolRow(I.B), *C = BoolRow(I.C);
      ForLanes([&](size_t L) { A[L] = (B[L] && !C[L]) ? 1 : 0; });
      break;
    }
    case Op::ConcatStr: {
      std::string *A = StrRow(I.A);
      const std::string *B = StrRow(I.B), *C = StrRow(I.C);
      ForLanes([&](size_t L) { A[L] = B[L] + C[L]; });
      break;
    }
    case Op::EqStr:
    case Op::NeStr:
    case Op::LtStr:
    case Op::LeStr:
    case Op::GtStr:
    case Op::GeStr: {
      uint8_t *A = BoolRow(I.A);
      const std::string *B = StrRow(I.B), *C = StrRow(I.C);
      Op O = I.TheOp;
      ForLanes([&](size_t L) {
        bool V;
        if (O == Op::EqStr)
          V = B[L] == C[L];
        else if (O == Op::NeStr)
          V = B[L] != C[L];
        else {
          int Cmp = B[L].compare(C[L]);
          V = O == Op::LtStr   ? Cmp < 0
              : O == Op::LeStr ? Cmp <= 0
              : O == Op::GtStr ? Cmp > 0
                               : Cmp >= 0;
        }
        A[L] = V ? 1 : 0;
      });
      break;
    }
    case Op::ContainsStr: {
      uint8_t *A = BoolRow(I.A);
      const std::string *B = StrRow(I.B), *C = StrRow(I.C);
      ForLanes([&](size_t L) {
        A[L] = B[L].find(C[L]) != std::string::npos ? 1 : 0;
      });
      break;
    }
    case Op::StartsWithStr: {
      uint8_t *A = BoolRow(I.A);
      const std::string *B = StrRow(I.B), *C = StrRow(I.C);
      ForLanes([&](size_t L) { A[L] = startsWith(B[L], C[L]) ? 1 : 0; });
      break;
    }
    case Op::EndsWithStr: {
      uint8_t *A = BoolRow(I.A);
      const std::string *B = StrRow(I.B), *C = StrRow(I.C);
      ForLanes([&](size_t L) { A[L] = endsWith(B[L], C[L]) ? 1 : 0; });
      break;
    }
    case Op::StrFromNum: {
      std::string *A = StrRow(I.A);
      const double *B = NumRow(I.B);
      ForLanes([&](size_t L) { A[L] = renderNumber(B[L]); });
      break;
    }
    case Op::StrFromBool: {
      std::string *A = StrRow(I.A);
      const uint8_t *B = BoolRow(I.B);
      ForLanes([&](size_t L) { A[L] = B[L] ? "true" : "false"; });
      break;
    }
    case Op::FmtStr: {
      std::string *A = StrRow(I.A);
      const double *B = NumRow(I.B), *C = NumRow(I.C);
      ForLanes([&](size_t L) { A[L] = renderFormatted(B[L], C[L]); });
      break;
    }
    case Op::NodeName: {
      std::string *A = StrRow(I.A);
      ForLanes([&](size_t L) { A[L] = std::string(R.Names[S.Base + L]); });
      break;
    }
    case Op::NodeFile: {
      std::string *A = StrRow(I.A);
      ForLanes([&](size_t L) { A[L] = std::string(R.Files[S.Base + L]); });
      break;
    }
    case Op::NodeModule: {
      std::string *A = StrRow(I.A);
      ForLanes([&](size_t L) { A[L] = std::string(R.Modules[S.Base + L]); });
      break;
    }
    case Op::NodeKind: {
      std::string *A = StrRow(I.A);
      ForLanes([&](size_t L) { A[L] = std::string(R.Kinds[S.Base + L]); });
      break;
    }
    case Op::NodeParentName: {
      std::string *A = StrRow(I.A);
      ForLanes([&](size_t L) {
        uint32_t Parent = R.Parents[S.Base + L];
        A[L] = Parent == InvalidNode ? std::string()
                                     : std::string(R.Names[Parent]);
      });
      break;
    }
    case Op::NodeLine: {
      double *A = NumRow(I.A);
      ForLanes([&](size_t L) { A[L] = R.Lines[S.Base + L]; });
      break;
    }
    case Op::NodeDepth: {
      double *A = NumRow(I.A);
      ForLanes([&](size_t L) { A[L] = R.Depths[S.Base + L]; });
      break;
    }
    case Op::NodeChildren: {
      double *A = NumRow(I.A);
      ForLanes([&](size_t L) { A[L] = R.ChildCounts[S.Base + L]; });
      break;
    }
    case Op::NodeIsLeaf: {
      uint8_t *A = BoolRow(I.A);
      ForLanes(
          [&](size_t L) { A[L] = R.ChildCounts[S.Base + L] == 0 ? 1 : 0; });
      break;
    }
    case Op::HasAncestor: {
      uint8_t *A = BoolRow(I.A);
      const std::string *B = StrRow(I.B);
      size_t N = R.Parents.size();
      ForLanes([&](size_t L) {
        bool Found = false;
        for (uint32_t Walk = R.Parents[S.Base + L];
             Walk != InvalidNode && Walk < N; Walk = R.Parents[Walk])
          if (R.Names[Walk] == B[L]) {
            Found = true;
            break;
          }
        A[L] = Found ? 1 : 0;
      });
      break;
    }
    case Op::NodeCountOp: {
      double *A = NumRow(I.A);
      double V = static_cast<double>(R.Out.Result.nodeCount());
      ForLanes([&](size_t L) { A[L] = V; });
      break;
    }
    case Op::TotalOp:
    case Op::MetricExcl:
    case Op::MetricIncl:
    case Op::ShareOp: {
      double *A = NumRow(I.A);
      const std::string *NameRow = StrRow(I.B);
      const MetricView *SlotView = nullptr;
      std::string SlotErr;
      if (I.Slot != NoSlot) {
        if (!SlotReady[I.Slot]) {
          Result<const MetricView *> V = R.viewFor(CS.SlotNames[I.Slot],
                                                   I.Line);
          if (V) {
            SlotViews[I.Slot] = *V;
            SlotReady[I.Slot] = 1;
          } else {
            SlotErr = V.error();
          }
        }
        SlotView = SlotViews[I.Slot];
        if (!SlotView && SlotErr.empty())
          SlotErr = "unknown metric '" + CS.SlotNames[I.Slot] +
                    "' at line " + std::to_string(I.Line);
      }
      Op O = I.TheOp;
      ForLanes([&](size_t L) {
        const MetricView *V = SlotView;
        if (I.Slot != NoSlot && !V) {
          Fail(L, SlotErr);
          return;
        }
        if (!V) {
          Result<const MetricView *> RV = R.viewFor(NameRow[L], I.Line);
          if (!RV) {
            Fail(L, RV.error());
            return;
          }
          V = *RV;
        }
        NodeId Node = static_cast<NodeId>(S.Base + L);
        switch (O) {
        case Op::MetricExcl:
          A[L] = V->exclusive(Node);
          break;
        case Op::MetricIncl:
          A[L] = V->inclusive(Node);
          break;
        case Op::TotalOp:
          A[L] = V->total();
          break;
        default: { // ShareOp
          double Total = V->total();
          A[L] = Total == 0.0 ? 0.0 : V->inclusive(Node) / Total;
          break;
        }
        }
      });
      break;
    }
    case Op::Trap: {
      const std::string &Msg = CS.Pool[I.Str];
      ForLanes([&](size_t L) { Fail(L, Msg); });
      break;
    }
    }
  }
}

/// Renders a scalar statement's result register like RtValue::render().
std::string renderResult(const CompiledStmt &CS, const ChunkState &S) {
  switch (CS.ResultType) {
  case VType::Num:
    return renderNumber(S.Num[size_t(CS.Result) * S.Len]);
  case VType::Bool:
    return S.Bool[size_t(CS.Result) * S.Len] ? "true" : "false";
  case VType::Str:
    return S.Str[size_t(CS.Result) * S.Len];
  }
  return "";
}

/// Runs \p CS once with no node context (let/print/return).
Result<bool> executeScalar(Run &R, const CompiledStmt &CS, ChunkState &S) {
  S.Base = 0;
  S.Len = 1;
  executeChunk(R, CS, S);
  if (S.Dead[0])
    return makeError(S.Err[0]);
  return true;
}

/// Sweeps \p CS over nodes [First, End), calling \p Sink(S) per finished
/// chunk (disjoint lane ranges, so sinks write per-node slots without
/// synchronization). \returns the lowest-node error, if any lane died.
Result<bool> sweep(Run &R, const CompiledStmt &CS, size_t First, size_t End,
                   const std::function<void(const ChunkState &)> &Sink) {
  if (End <= First)
    return true;
  size_t Count = End - First;
  size_t Chunks = (Count + ChunkLen - 1) / ChunkLen;
  std::mutex ErrMutex;
  size_t ErrNode = SIZE_MAX;
  std::string ErrMsg;
  ThreadPool::shared().parallelFor(Chunks, [&](size_t C) {
    ChunkState S;
    S.Base = First + C * ChunkLen;
    S.Len = std::min(ChunkLen, End - S.Base);
    executeChunk(R, CS, S);
    Sink(S);
    if (!S.AnyDead)
      return;
    for (size_t L = 0; L < S.Len; ++L) {
      if (!S.Dead[L])
        continue;
      std::lock_guard<std::mutex> Lock(ErrMutex);
      size_t Node = S.Base + L;
      if (Node < ErrNode) {
        ErrNode = Node;
        ErrMsg = S.Err[L];
      }
      break; // Lowest lane of this chunk; later chunks merge by node id.
    }
  });
  if (ErrNode != SIZE_MAX)
    return makeError(ErrMsg);
  return true;
}

} // namespace

Result<QueryOutput> runCompiled(const Profile &P,
                                const CompiledProgram &Prog) {
  Run R;
  R.Out.Result = topDownTree(P);
  R.NumGlobals.assign(Prog.NumGlobals, 0.0);
  R.BoolGlobals.assign(Prog.BoolGlobals, 0);
  R.StrGlobals.assign(Prog.StrGlobals, std::string());

  for (const CompiledStmt &CS : Prog.Stmts) {
    switch (CS.Kind) {
    case Stmt::Kind::Let: {
      ChunkState S;
      Result<bool> Ok = executeScalar(R, CS, S);
      if (!Ok)
        return makeError(Ok.error());
      switch (CS.ResultType) {
      case VType::Num:
        R.NumGlobals[CS.GlobalSlot] = S.Num[size_t(CS.Result)];
        break;
      case VType::Bool:
        R.BoolGlobals[CS.GlobalSlot] = S.Bool[size_t(CS.Result)];
        break;
      case VType::Str:
        R.StrGlobals[CS.GlobalSlot] = std::move(S.Str[size_t(CS.Result)]);
        break;
      }
      break;
    }
    case Stmt::Kind::Print:
    case Stmt::Kind::Return: {
      ChunkState S;
      Result<bool> Ok = executeScalar(R, CS, S);
      if (!Ok)
        return makeError(Ok.error());
      R.Out.Printed.push_back(renderResult(CS, S));
      if (CS.Kind == Stmt::Kind::Return)
        return std::move(R.Out);
      break;
    }
    case Stmt::Kind::Derive: {
      R.ensureTopo();
      size_t N = R.Out.Result.nodeCount();
      std::vector<double> Column(N, 0.0);
      Result<bool> Ok =
          sweep(R, CS, 0, N, [&](const ChunkState &S) {
            const double *Res = S.Num.data() + size_t(CS.Result) * S.Len;
            for (size_t L = 0; L < S.Len; ++L)
              if (!S.Dead[L])
                Column[S.Base + L] = Res[L];
          });
      if (!Ok)
        return makeError(Ok.error());
      MetricId New = R.Out.Result.addMetric(CS.Name, "derived");
      for (NodeId Id = 0; Id < N; ++Id)
        if (Column[Id] != 0.0)
          R.Out.Result.node(Id).addMetric(New, Column[Id]);
      R.Out.DerivedMetrics.push_back(CS.Name);
      R.Views.clear(); // Schema changed; topology did not.
      break;
    }
    case Stmt::Kind::Prune:
    case Stmt::Kind::Keep: {
      R.ensureTopo();
      size_t N = R.Out.Result.nodeCount();
      std::vector<char> Keep(N, 1);
      bool IsPrune = CS.Kind == Stmt::Kind::Prune;
      Result<bool> Ok =
          sweep(R, CS, 1, N, [&](const ChunkState &S) {
            const uint8_t *Res = S.Bool.data() + size_t(CS.Result) * S.Len;
            for (size_t L = 0; L < S.Len; ++L)
              if (!S.Dead[L]) {
                bool Matches = Res[L] != 0;
                Keep[S.Base + L] = IsPrune ? !Matches : Matches;
              }
          });
      if (!Ok)
        return makeError(Ok.error());
      R.Out.Result = filterNodes(
          R.Out.Result, [&Keep](const Profile &, NodeId Id) -> bool {
            return Keep[Id] != 0;
          });
      R.Views.clear();     // Node ids changed.
      R.invalidateTopo();  // New topology version.
      break;
    }
    }
  }
  return std::move(R.Out);
}

Result<QueryOutput> runProgramAuto(const Profile &P, std::string_view Source,
                                   const AnalysisLimits &Limits) {
  Result<Program> Prog = parseProgram(Source);
  if (!Prog)
    return makeError(Prog.error());
  if (std::shared_ptr<const CompiledProgram> Compiled =
          compileProgram(*Prog, Limits))
    return runCompiled(P, *Compiled);
  return runProgram(P, *Prog, Limits);
}

Result<QueryOutput> runProgramAuto(const Profile &P,
                                   std::string_view Source) {
  return runProgramAuto(P, Source, AnalysisLimits::defaults());
}

} // namespace evql
} // namespace ev
