//===- tests/support_test.cpp - support/ substrate tests ------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/ProtoWire.h"
#include "support/Result.h"
#include "support/Rng.h"
#include "support/StringInterner.h"
#include "support/Strings.h"
#include "support/Varint.h"
#include "support/Xml.h"

#include <clocale>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

using namespace ev;

//===----------------------------------------------------------------------===
// Result
//===----------------------------------------------------------------------===

TEST(Result, HoldsValue) {
  Result<int> R(42);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(*R, 42);
}

TEST(Result, HoldsError) {
  Result<int> R = makeError("boom");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error(), "boom");
}

TEST(Result, TakeMovesValue) {
  Result<std::string> R(std::string("payload"));
  std::string S = R.take();
  EXPECT_EQ(S, "payload");
}

//===----------------------------------------------------------------------===
// Varint
//===----------------------------------------------------------------------===

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, EncodeDecode) {
  std::string Buffer;
  appendVarint(Buffer, GetParam());
  VarintReader R(Buffer);
  EXPECT_EQ(R.readVarint(), GetParam());
  EXPECT_FALSE(R.failed());
  EXPECT_TRUE(R.atEnd());
}

INSTANTIATE_TEST_SUITE_P(Values, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL,
                                           300ULL, 16383ULL, 16384ULL,
                                           (1ULL << 32) - 1, 1ULL << 32,
                                           ~0ULL));

class SignedVarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintRoundTrip, ZigzagEncodeDecode) {
  std::string Buffer;
  appendSignedVarint(Buffer, GetParam());
  VarintReader R(Buffer);
  EXPECT_EQ(R.readSignedVarint(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, SignedVarintRoundTrip,
                         ::testing::Values(0LL, 1LL, -1LL, 63LL, -64LL,
                                           1LL << 40, -(1LL << 40),
                                           INT64_MAX, INT64_MIN));

TEST(Varint, SmallValuesEncodeSmall) {
  std::string Buffer;
  appendVarint(Buffer, 100);
  EXPECT_EQ(Buffer.size(), 1u);
  Buffer.clear();
  appendVarint(Buffer, 1000);
  EXPECT_EQ(Buffer.size(), 2u);
}

TEST(Varint, TruncatedInputFails) {
  std::string Buffer;
  appendVarint(Buffer, ~0ULL);
  VarintReader R(Buffer.data(), Buffer.size() - 1);
  (void)R.readVarint();
  EXPECT_TRUE(R.failed());
}

TEST(Varint, OverlongInputFails) {
  std::string Buffer(11, '\x80');
  VarintReader R(Buffer);
  (void)R.readVarint();
  EXPECT_TRUE(R.failed());
}

TEST(Varint, SkipPastEndFails) {
  VarintReader R("ab", 2);
  R.skip(3);
  EXPECT_TRUE(R.failed());
}

TEST(Varint, TenByteEncodingRoundTripsMax) {
  std::string Buffer;
  appendVarint(Buffer, ~0ULL);
  ASSERT_EQ(Buffer.size(), 10u);
  VarintReader R(Buffer);
  EXPECT_EQ(R.readVarint(), ~0ULL);
  EXPECT_FALSE(R.failed());
}

TEST(Varint, RejectsBitsShiftedPastSixtyFour) {
  // Nine continuation bytes followed by 0x02: the payload bit lands at
  // position 64. Accepting it would decode to the same value as the
  // encoding without it — two distinct encodings, one value.
  std::string Overflowing(9, '\x81');
  Overflowing.push_back('\x02');
  VarintReader R(Overflowing);
  (void)R.readVarint();
  EXPECT_TRUE(R.failed());

  // The same prefix with 0x01 is the canonical top bit and stays valid.
  std::string Valid(9, '\x81');
  Valid.push_back('\x01');
  VarintReader V(Valid);
  (void)V.readVarint();
  EXPECT_FALSE(V.failed());
}

TEST(Varint, RejectsTenByteContinuation) {
  // A continuation bit on the tenth byte always overflows 64 bits.
  std::string Buffer(9, '\x80');
  Buffer.push_back('\x81');
  Buffer.push_back('\x00');
  VarintReader R(Buffer);
  (void)R.readVarint();
  EXPECT_TRUE(R.failed());
}

TEST(Zigzag, MapsSignOntoLowBit) {
  EXPECT_EQ(zigzagEncode(0), 0u);
  EXPECT_EQ(zigzagEncode(-1), 1u);
  EXPECT_EQ(zigzagEncode(1), 2u);
  EXPECT_EQ(zigzagEncode(-2), 3u);
}

//===----------------------------------------------------------------------===
// ProtoWire
//===----------------------------------------------------------------------===

TEST(ProtoWire, VarintField) {
  ProtoWriter W;
  W.writeVarint(3, 777);
  ProtoReader R(W.buffer());
  ASSERT_TRUE(R.next());
  EXPECT_EQ(R.fieldNumber(), 3u);
  EXPECT_EQ(R.wireType(), WireType::Varint);
  EXPECT_EQ(R.varint(), 777u);
  EXPECT_FALSE(R.next());
  EXPECT_FALSE(R.failed());
}

TEST(ProtoWire, DoubleField) {
  ProtoWriter W;
  W.writeDouble(2, 3.25);
  ProtoReader R(W.buffer());
  ASSERT_TRUE(R.next());
  EXPECT_DOUBLE_EQ(R.fixedDouble(), 3.25);
}

TEST(ProtoWire, BytesField) {
  ProtoWriter W;
  W.writeBytes(1, "hello\0world");
  ProtoReader R(W.buffer());
  ASSERT_TRUE(R.next());
  EXPECT_EQ(R.bytes(), "hello");
}

TEST(ProtoWire, NegativeInt64TakesTenBytes) {
  ProtoWriter W;
  W.writeInt64(1, -1);
  // 1 tag byte + 10 varint bytes.
  EXPECT_EQ(W.buffer().size(), 11u);
  ProtoReader R(W.buffer());
  ASSERT_TRUE(R.next());
  EXPECT_EQ(R.int64(), -1);
}

TEST(ProtoWire, PackedVarints) {
  ProtoWriter W;
  uint64_t Values[] = {1, 128, 99999};
  W.writePackedVarints(4, Values, 3);
  ProtoReader R(W.buffer());
  ASSERT_TRUE(R.next());
  std::string_view Packed = R.bytes();
  VarintReader VR(Packed.data(), Packed.size());
  EXPECT_EQ(VR.readVarint(), 1u);
  EXPECT_EQ(VR.readVarint(), 128u);
  EXPECT_EQ(VR.readVarint(), 99999u);
  EXPECT_TRUE(VR.atEnd());
}

TEST(ProtoWire, SkipUnknownFields) {
  ProtoWriter W;
  W.writeVarint(1, 5);
  W.writeBytes(2, "skip me");
  W.writeDouble(3, 1.5);
  W.writeVarint(4, 9);
  ProtoReader R(W.buffer());
  uint64_t Seen = 0;
  while (R.next()) {
    if (R.fieldNumber() == 4)
      Seen = R.varint();
    else
      R.skip();
  }
  EXPECT_FALSE(R.failed());
  EXPECT_EQ(Seen, 9u);
}

TEST(ProtoWire, NextAutoSkipsUnconsumedField) {
  ProtoWriter W;
  W.writeBytes(1, "abc");
  W.writeVarint(2, 7);
  ProtoReader R(W.buffer());
  ASSERT_TRUE(R.next()); // Field 1 never consumed.
  ASSERT_TRUE(R.next());
  EXPECT_EQ(R.fieldNumber(), 2u);
  EXPECT_EQ(R.varint(), 7u);
}

TEST(ProtoWire, MalformedLengthFails) {
  std::string Bad;
  appendVarint(Bad, (1 << 3) | 2); // Field 1, length-delimited.
  appendVarint(Bad, 1000);         // Length longer than the buffer.
  ProtoReader R(Bad);
  ASSERT_TRUE(R.next());
  (void)R.bytes();
  EXPECT_TRUE(R.failed());
}

TEST(ProtoWire, FieldNumberZeroFails) {
  std::string Bad;
  appendVarint(Bad, 0); // Tag with field number 0.
  ProtoReader R(Bad);
  EXPECT_FALSE(R.next());
  EXPECT_TRUE(R.failed());
}

TEST(ProtoWire, WrongTypeAccessFails) {
  ProtoWriter W;
  W.writeVarint(1, 5);
  ProtoReader R(W.buffer());
  ASSERT_TRUE(R.next());
  (void)R.bytes(); // Varint field read as bytes.
  EXPECT_TRUE(R.failed());
}

//===----------------------------------------------------------------------===
// StringInterner
//===----------------------------------------------------------------------===

TEST(StringInterner, EmptyStringIsIdZero) {
  StringInterner I;
  EXPECT_EQ(I.intern(""), 0u);
  EXPECT_EQ(I.text(0), "");
}

TEST(StringInterner, Deduplicates) {
  StringInterner I;
  StringId A = I.intern("hello");
  StringId B = I.intern("world");
  EXPECT_NE(A, B);
  EXPECT_EQ(I.intern("hello"), A);
  EXPECT_EQ(I.size(), 3u);
}

TEST(StringInterner, SurvivesGrowth) {
  StringInterner I;
  std::vector<StringId> Ids;
  for (int K = 0; K < 5000; ++K)
    Ids.push_back(I.intern("key" + std::to_string(K)));
  for (int K = 0; K < 5000; ++K) {
    EXPECT_EQ(I.text(Ids[K]), "key" + std::to_string(K));
    EXPECT_EQ(I.intern("key" + std::to_string(K)), Ids[K]);
  }
}

TEST(StringInterner, TracksPayload) {
  StringInterner I;
  I.intern("abcd");
  EXPECT_EQ(I.payloadBytes(), 4u);
}

//===----------------------------------------------------------------------===
// Strings
//===----------------------------------------------------------------------===

TEST(Strings, SplitKeepsEmptyPieces) {
  auto Pieces = splitString("a;;b", ';');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[1], "");
}

TEST(Strings, SplitLinesHandlesCrLf) {
  auto Lines = splitLines("a\r\nb\nc");
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_EQ(Lines[0], "a");
  EXPECT_EQ(Lines[1], "b");
  EXPECT_EQ(Lines[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(endsWith("foobar", "bar"));
  EXPECT_FALSE(endsWith("ar", "bar"));
}

TEST(Strings, ParseUnsigned) {
  uint64_t V;
  EXPECT_TRUE(parseUnsigned("123", V));
  EXPECT_EQ(V, 123u);
  EXPECT_FALSE(parseUnsigned("12x", V));
  EXPECT_FALSE(parseUnsigned("", V));
  EXPECT_FALSE(parseUnsigned("-3", V));
}

TEST(Strings, ParseDouble) {
  double V;
  EXPECT_TRUE(parseDouble("1.5e3", V));
  EXPECT_DOUBLE_EQ(V, 1500.0);
  EXPECT_FALSE(parseDouble("1.5x", V));
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(1536), "1.5 KB");
  EXPECT_EQ(formatBytes(3.0 * 1024 * 1024), "3.0 MB");
}

TEST(Strings, FormatMetricNanoseconds) {
  EXPECT_EQ(formatMetric(1.5e9, "nanoseconds"), "1.50 s");
  EXPECT_EQ(formatMetric(2.5e6, "nanoseconds"), "2.50 ms");
  EXPECT_EQ(formatMetric(900, "nanoseconds"), "900 ns");
}

TEST(Strings, EscapeXml) {
  EXPECT_EQ(escapeXml("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
}

TEST(Strings, EscapeJson) {
  EXPECT_EQ(escapeJson("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(escapeJson(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Strings, EscapeJsonAllControlChars) {
  // RFC 8259: every byte below 0x20 must be escaped. The writer names
  // the common whitespace escapes \t \n \r; everything else (including
  // \b and \f) gets the \u00XX form, which is equally valid JSON.
  for (int C = 0; C < 0x20; ++C) {
    char Byte = static_cast<char>(C);
    std::string Escaped = escapeJson(std::string_view(&Byte, 1));
    std::string Expected;
    switch (C) {
    case '\t':
      Expected = "\\t";
      break;
    case '\n':
      Expected = "\\n";
      break;
    case '\r':
      Expected = "\\r";
      break;
    default: {
      static const char Hex[] = "0123456789abcdef";
      Expected = "\\u00";
      Expected.push_back(Hex[C >> 4]);
      Expected.push_back(Hex[C & 0xF]);
      break;
    }
    }
    EXPECT_EQ(Escaped, Expected) << "control char " << C;
  }
}

TEST(Strings, EscapeJsonNulRoundTripsThroughParser) {
  // A NUL inside a string must survive dump -> parse, not truncate it.
  std::string Raw("a\0b", 3);
  json::Object O;
  O.set("s", Raw);
  std::string Dumped = json::Value(std::move(O)).dump();
  EXPECT_NE(Dumped.find("\\u0000"), std::string::npos);
  Result<json::Value> Back = json::parse(Dumped);
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_EQ(Back->asObject().find("s")->asString(), Raw);
}

class Base64RoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(Base64RoundTrip, EncodeDecode) {
  std::string Encoded = base64Encode(GetParam());
  std::string Decoded;
  ASSERT_TRUE(base64Decode(Encoded, Decoded));
  EXPECT_EQ(Decoded, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, Base64RoundTrip,
    ::testing::Values("", "a", "ab", "abc", "abcd", std::string("\0\x01\xff", 3),
                      std::string(1000, 'x')));

TEST(Base64, KnownVectors) {
  EXPECT_EQ(base64Encode("Man"), "TWFu");
  EXPECT_EQ(base64Encode("Ma"), "TWE=");
  EXPECT_EQ(base64Encode("M"), "TQ==");
}

TEST(Base64, RejectsBadInput) {
  std::string Out;
  EXPECT_FALSE(base64Decode("abc", Out));   // Not a multiple of 4.
  EXPECT_FALSE(base64Decode("a!cd", Out));  // Invalid character.
  EXPECT_FALSE(base64Decode("=abc", Out));  // Padding in front.
}

//===----------------------------------------------------------------------===
// Json
//===----------------------------------------------------------------------===

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null")->isNull());
  EXPECT_TRUE(json::parse("true")->asBool());
  EXPECT_FALSE(json::parse("false")->asBool());
  EXPECT_DOUBLE_EQ(json::parse("-2.5e2")->asNumber(), -250.0);
  EXPECT_EQ(json::parse("\"hi\"")->asString(), "hi");
}

TEST(Json, ParsesNested) {
  Result<json::Value> Doc =
      json::parse(R"({"a": [1, {"b": "c"}], "d": null})");
  ASSERT_TRUE(Doc.ok());
  const json::Object &Root = Doc->asObject();
  ASSERT_TRUE(Root.find("a")->isArray());
  EXPECT_EQ(Root.find("a")->asArray()[1].asObject().find("b")->asString(),
            "c");
  EXPECT_TRUE(Root.find("d")->isNull());
}

TEST(Json, StringEscapes) {
  Result<json::Value> Doc = json::parse(R"("a\n\t\"\\A")");
  ASSERT_TRUE(Doc.ok());
  EXPECT_EQ(Doc->asString(), "a\n\t\"\\A");
}

TEST(Json, UnicodeEscapeUtf8) {
  Result<json::Value> Doc = json::parse(R"("é")");
  ASSERT_TRUE(Doc.ok());
  EXPECT_EQ(Doc->asString(), "\xc3\xa9");
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(json::parse("{").ok());
  EXPECT_FALSE(json::parse("[1,]").ok());
  EXPECT_FALSE(json::parse("tru").ok());
  EXPECT_FALSE(json::parse("\"unterminated").ok());
  EXPECT_FALSE(json::parse("{\"a\" 1}").ok());
  EXPECT_FALSE(json::parse("1 2").ok());
}

TEST(Json, ErrorsCarryOffset) {
  Result<json::Value> Doc = json::parse("[1, x]");
  ASSERT_FALSE(Doc.ok());
  EXPECT_NE(Doc.error().find("offset"), std::string::npos);
}

TEST(Json, DeepNestingIsRejected) {
  std::string Deep(1000, '[');
  Deep += std::string(1000, ']');
  EXPECT_FALSE(json::parse(Deep).ok());
}

TEST(Json, ObjectPreservesInsertionOrder) {
  json::Object O;
  O.set("z", 1);
  O.set("a", 2);
  EXPECT_EQ(json::Value(O).dump(), R"({"z":1,"a":2})");
}

TEST(Json, SetOverwrites) {
  json::Object O;
  O.set("k", 1);
  O.set("k", 2);
  EXPECT_EQ(O.size(), 1u);
  EXPECT_EQ(O.find("k")->asInt(), 2);
}

TEST(Json, DumpParseRoundTrip) {
  const char *Src = R"({"n":-1.5,"s":"x\"y","b":true,"v":null,"a":[1,2]})";
  Result<json::Value> Doc = json::parse(Src);
  ASSERT_TRUE(Doc.ok());
  Result<json::Value> Again = json::parse(Doc->dump());
  ASSERT_TRUE(Again.ok());
  EXPECT_EQ(Doc->dump(), Again->dump());
}

TEST(Json, IntegersDumpWithoutDecimalPoint) {
  EXPECT_EQ(json::Value(42).dump(), "42");
  EXPECT_EQ(json::Value(-7).dump(), "-7");
}

TEST(Json, TolerantGetters) {
  json::Value V("str");
  EXPECT_DOUBLE_EQ(V.numberOr(5.0), 5.0);
  EXPECT_EQ(json::Value(2.0).stringOr("d"), "d");
  EXPECT_TRUE(json::Value(1.0).boolOr(true));
}

TEST(Json, Int64SurvivesBeyondDoublePrecision) {
  // 2^53 is the last double-exact integer; the values either side of it
  // collapse to the same double. The int64 variant must keep them apart
  // through parse -> asInt -> dump.
  const int64_t P53 = 9007199254740992; // 2^53
  for (int64_t N : {P53 - 1, P53, P53 + 1}) {
    Result<json::Value> Doc = json::parse(std::to_string(N));
    ASSERT_TRUE(Doc.ok());
    EXPECT_TRUE(Doc->isInteger());
    EXPECT_EQ(Doc->asInt(), N);
    EXPECT_EQ(Doc->dump(), std::to_string(N));
  }
}

TEST(Json, Int64ExtremesRoundTrip) {
  for (int64_t N : {INT64_MIN, INT64_MIN + 1, INT64_MAX - 1, INT64_MAX}) {
    Result<json::Value> Doc = json::parse(std::to_string(N));
    ASSERT_TRUE(Doc.ok()) << N;
    EXPECT_EQ(Doc->asInt(), N);
    EXPECT_EQ(Doc->dump(), std::to_string(N));
    // Construction from int64 preserves the exact value too.
    EXPECT_EQ(json::Value(N).dump(), std::to_string(N));
  }
}

TEST(Json, GetIntegerIsStrict) {
  int64_t Out = 0;
  EXPECT_TRUE(json::Value(int64_t{42}).getInteger(Out));
  EXPECT_EQ(Out, 42);
  // Integral doubles are accepted (JSON has one number type on the wire).
  EXPECT_TRUE(json::Value(7.0).getInteger(Out));
  EXPECT_EQ(Out, 7);
  // Fractional, non-finite, out-of-range, and non-numbers are rejected.
  EXPECT_FALSE(json::Value(1.5).getInteger(Out));
  EXPECT_FALSE(json::Value(std::nan("")).getInteger(Out));
  EXPECT_FALSE(
      json::Value(std::numeric_limits<double>::infinity()).getInteger(Out));
  EXPECT_FALSE(json::Value(1e300).getInteger(Out));
  EXPECT_FALSE(json::Value("12").getInteger(Out));
  EXPECT_FALSE(json::Value(true).getInteger(Out));
}

TEST(Json, NumberFormattingIgnoresLocale) {
  // The old snprintf("%.17g") writer emitted "1,5" under a comma-decimal
  // locale — invalid JSON on the PVP wire. std::to_chars is
  // locale-independent by definition; prove it by dumping and parsing
  // with LC_NUMERIC set to a comma-decimal locale.
  const char *Prev = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (!Prev)
    Prev = std::setlocale(LC_NUMERIC, "de_DE.utf8");
  if (!Prev)
    GTEST_SKIP() << "no comma-decimal locale installed in this image";

  json::Object O;
  O.set("half", 0.5);
  O.set("big", 1.25e30);
  O.set("neg", -3.75);
  O.set("int", int64_t{-9007199254740993});
  std::string Dumped = json::Value(std::move(O)).dump();
  Result<json::Value> Back = json::parse(Dumped);

  std::setlocale(LC_NUMERIC, "C"); // Restore before asserting.
  EXPECT_EQ(Dumped.find(','), std::string::npos) << Dumped;
  ASSERT_TRUE(Back.ok()) << Back.error();
  EXPECT_DOUBLE_EQ(Back->asObject().find("half")->asNumber(), 0.5);
  EXPECT_DOUBLE_EQ(Back->asObject().find("big")->asNumber(), 1.25e30);
  EXPECT_DOUBLE_EQ(Back->asObject().find("neg")->asNumber(), -3.75);
  EXPECT_EQ(Back->asObject().find("int")->asInt(), -9007199254740993ll);
}

TEST(Json, DoubleDumpIsShortestRoundTrip) {
  // to_chars picks the shortest digit string that parses back exactly.
  EXPECT_EQ(json::Value(0.1).dump(), "0.1");
  EXPECT_EQ(json::Value(1.0 / 3.0).dump(), "0.3333333333333333");
  for (double D : {0.1, 2.5e-15, 1.7976931348623157e308, -4.9e-324}) {
    Result<json::Value> Back = json::parse(json::Value(D).dump());
    ASSERT_TRUE(Back.ok());
    EXPECT_EQ(Back->asNumber(), D);
  }
}

TEST(Json, NonFiniteDumpsAsNull) {
  EXPECT_EQ(json::Value(std::nan("")).dump(), "null");
  EXPECT_EQ(json::Value(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(Json, FractionalLiteralsAreNotIntegers) {
  Result<json::Value> Doc = json::parse("3.25");
  ASSERT_TRUE(Doc.ok());
  EXPECT_FALSE(Doc->isInteger());
  int64_t Out = 0;
  EXPECT_FALSE(Doc->getInteger(Out));
  // Exponent forms that land on integers still extract.
  Result<json::Value> Exp = json::parse("2e3");
  ASSERT_TRUE(Exp.ok());
  EXPECT_TRUE(Exp->getInteger(Out));
  EXPECT_EQ(Out, 2000);
}

//===----------------------------------------------------------------------===
// Xml
//===----------------------------------------------------------------------===

TEST(Xml, ParsesElementTree) {
  auto Doc = xml::parse("<a x=\"1\"><b>text</b><b y='2'/></a>");
  ASSERT_TRUE(Doc.ok());
  const xml::Element &Root = **Doc;
  EXPECT_EQ(Root.Name, "a");
  EXPECT_EQ(Root.attribute("x"), "1");
  ASSERT_EQ(Root.Children.size(), 2u);
  EXPECT_EQ(Root.Children[0]->Text, "text");
  EXPECT_EQ(Root.Children[1]->attribute("y"), "2");
}

TEST(Xml, SkipsPrologCommentsDoctype) {
  auto Doc = xml::parse("<?xml version=\"1.0\"?>\n"
                        "<!DOCTYPE r [<!ELEMENT r ANY>]>\n"
                        "<!-- comment -->\n<r/>");
  ASSERT_TRUE(Doc.ok());
  EXPECT_EQ((*Doc)->Name, "r");
}

TEST(Xml, DecodesEntities) {
  auto Doc = xml::parse("<a t=\"&lt;&amp;&gt;\">&quot;&#65;&apos;</a>");
  ASSERT_TRUE(Doc.ok());
  EXPECT_EQ((*Doc)->attribute("t"), "<&>");
  EXPECT_EQ((*Doc)->Text, "\"A'");
}

TEST(Xml, HandlesCdata) {
  auto Doc = xml::parse("<a><![CDATA[1 < 2 & 3]]></a>");
  ASSERT_TRUE(Doc.ok());
  EXPECT_EQ((*Doc)->Text, "1 < 2 & 3");
}

TEST(Xml, InnerComments) {
  auto Doc = xml::parse("<a><!-- hi --><b/></a>");
  ASSERT_TRUE(Doc.ok());
  EXPECT_EQ((*Doc)->Children.size(), 1u);
}

TEST(Xml, RejectsMismatchedTags) {
  EXPECT_FALSE(xml::parse("<a><b></a></b>").ok());
}

TEST(Xml, RejectsUnterminated) {
  EXPECT_FALSE(xml::parse("<a>").ok());
  EXPECT_FALSE(xml::parse("<a x=>").ok());
  EXPECT_FALSE(xml::parse("<a x=\"1>").ok());
}

TEST(Xml, FirstChildAndChildren) {
  auto Doc = xml::parse("<a><b i=\"1\"/><c/><b i=\"2\"/></a>");
  ASSERT_TRUE(Doc.ok());
  ASSERT_NE((*Doc)->firstChild("b"), nullptr);
  EXPECT_EQ((*Doc)->firstChild("b")->attribute("i"), "1");
  EXPECT_EQ((*Doc)->children("b").size(), 2u);
  EXPECT_EQ((*Doc)->firstChild("zzz"), nullptr);
}

//===----------------------------------------------------------------------===
// Rng
//===----------------------------------------------------------------------===

TEST(Rng, DeterministicBySeed) {
  Rng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(Rng, UniformInRange) {
  Rng R(1);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
    int64_t V = R.range(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng R(7);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double X = R.normal();
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.08);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng R(9);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    if (R.chance(0.25))
      ++Hits;
  EXPECT_NEAR(Hits / 10000.0, 0.25, 0.03);
}
