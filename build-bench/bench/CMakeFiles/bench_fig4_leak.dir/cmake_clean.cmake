file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_leak.dir/bench_fig4_leak.cpp.o"
  "CMakeFiles/bench_fig4_leak.dir/bench_fig4_leak.cpp.o.d"
  "bench_fig4_leak"
  "bench_fig4_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
