//===- render/Histogram.cpp - Per-context metric histograms ---------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/Histogram.h"

#include "analysis/LeakDetector.h"
#include "support/Strings.h"

#include <algorithm>
#include <cstdio>

namespace ev {

std::vector<double> rebinSeries(const std::vector<double> &Series,
                                unsigned MaxBars) {
  if (MaxBars == 0 || Series.size() <= MaxBars)
    return Series;
  std::vector<double> Out(MaxBars, 0.0);
  std::vector<unsigned> Counts(MaxBars, 0);
  for (size_t I = 0; I < Series.size(); ++I) {
    size_t Bin = I * MaxBars / Series.size();
    Out[Bin] += Series[I];
    ++Counts[Bin];
  }
  for (size_t B = 0; B < MaxBars; ++B)
    if (Counts[B])
      Out[B] /= Counts[B];
  return Out;
}

std::string renderHistogramAscii(const std::vector<double> &Series,
                                 const HistogramOptions &Options) {
  std::string Out;
  if (!Options.Title.empty())
    Out += Options.Title + "\n";
  if (Series.empty())
    return Out + "(empty series)\n";

  std::vector<double> Bars = rebinSeries(Series, Options.MaxBars);
  double Peak = *std::max_element(Bars.begin(), Bars.end());
  if (Peak <= 0.0)
    Peak = 1.0;
  unsigned H = std::max(2u, Options.Height);

  for (unsigned Row = H; Row > 0; --Row) {
    double RowMin = Peak * (Row - 1) / H;
    std::string Line;
    for (double V : Bars)
      Line.push_back(V > RowMin ? '#' : ' ');
    // Left axis label on the top and middle rows.
    if (Row == H)
      Line += "  " + formatMetric(Peak, Options.Unit) + " (peak)";
    Out += Line + "\n";
  }
  Out += std::string(Bars.size(), '-') + "\n";

  double Slope = trendSlope(Series);
  double Relative =
      Peak > 0.0 ? Slope * static_cast<double>(Series.size() - 1) / Peak : 0;
  std::string Trend = "flat";
  if (Relative > 0.25)
    Trend = "rising (possible leak)";
  else if (Relative < -0.25)
    Trend = "falling (reclaimed)";
  Out += "n=" + std::to_string(Series.size()) + ", last=" +
         formatMetric(Series.back(), Options.Unit) + ", trend=" + Trend +
         "\n";
  return Out;
}

std::string renderHistogramSvg(const std::vector<double> &Series,
                               const HistogramOptions &Options) {
  std::vector<double> Bars = rebinSeries(Series, Options.MaxBars);
  unsigned BarW = 8, Gap = 2;
  unsigned Width = static_cast<unsigned>(Bars.size()) * (BarW + Gap) + 8;
  unsigned Height = Options.Height * 12 + 24;
  double Peak =
      Bars.empty() ? 1.0 : *std::max_element(Bars.begin(), Bars.end());
  if (Peak <= 0.0)
    Peak = 1.0;

  std::string Out;
  char Buffer[256];
  std::snprintf(Buffer, sizeof(Buffer),
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%u\" "
                "height=\"%u\" font-family=\"monospace\" font-size=\"10\">\n",
                Width, Height);
  Out += Buffer;
  if (!Options.Title.empty()) {
    std::snprintf(Buffer, sizeof(Buffer),
                  "<text x=\"4\" y=\"12\">%s</text>\n",
                  escapeXml(Options.Title).c_str());
    Out += Buffer;
  }
  unsigned PlotH = Options.Height * 12;
  for (size_t I = 0; I < Bars.size(); ++I) {
    double Frac = Bars[I] / Peak;
    unsigned BarH = static_cast<unsigned>(Frac * PlotH);
    std::snprintf(Buffer, sizeof(Buffer),
                  "<rect x=\"%u\" y=\"%u\" width=\"%u\" height=\"%u\" "
                  "fill=\"#4a7fb5\"><title>%s</title></rect>\n",
                  static_cast<unsigned>(4 + I * (BarW + Gap)),
                  16 + PlotH - BarH, BarW, BarH,
                  formatMetric(Bars[I], Options.Unit).c_str());
    Out += Buffer;
  }
  Out += "</svg>\n";
  return Out;
}

} // namespace ev
