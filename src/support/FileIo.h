//===- support/FileIo.h - Whole-file read/write helpers -------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary-safe whole-file helpers used by the CLI tool and examples.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_FILEIO_H
#define EASYVIEW_SUPPORT_FILEIO_H

#include "support/Result.h"

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// Reads the whole file at \p Path.
Result<std::string> readFile(const std::string &Path);

/// True when \p Path names an existing directory.
bool isDirectory(const std::string &Path);

/// Lists the regular files directly inside \p Path (no recursion, no "."
/// entries), sorted by name so every traversal is deterministic. Entries
/// are returned as full paths.
Result<std::vector<std::string>> listDirectory(const std::string &Path);

/// Writes \p Contents to \p Path, replacing any existing file.
Result<bool> writeFile(const std::string &Path, std::string_view Contents);

/// Bounded exponential backoff for transient I/O failures (network file
/// systems, editors saving over the profile mid-read, fault injection).
struct RetryPolicy {
  unsigned MaxAttempts = 3;       ///< Total attempts, including the first.
  uint64_t InitialBackoffMs = 10; ///< Delay before the second attempt.
  uint64_t MaxBackoffMs = 250;    ///< Ceiling for the doubling backoff.
};

/// Reads \p Path, retrying per \p Policy when the read fails. Each retry
/// waits InitialBackoffMs * 2^(attempt-1), capped at MaxBackoffMs. The
/// final error message reports how many attempts were made.
Result<std::string> readFileWithRetry(const std::string &Path,
                                      const RetryPolicy &Policy = {});

/// Test/chaos hook: decides whether the read of \p Path on \p Attempt
/// (0-based) should be failed artificially; on injection it fills
/// \p Message with the simulated diagnostic and returns true.
using ReadFaultHook =
    std::function<bool(const std::string &Path, unsigned Attempt,
                       std::string &Message)>;

/// Installs (or, with nullptr, clears) the read fault hook. Faults apply
/// to readFile and therefore to readFileWithRetry's attempts.
void setReadFaultHook(ReadFaultHook Hook);

/// Replaces the backoff sleep (milliseconds) used between retries; pass
/// nullptr to restore the real clock. Tests install a recorder so chaos
/// schedules stay deterministic and fast.
void setRetrySleepHook(std::function<void(uint64_t)> Hook);

} // namespace ev

#endif // EASYVIEW_SUPPORT_FILEIO_H
