//===- examples/diff_profiles.cpp - The Fig. 3 differential case study ----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Fig. 3: differencing two Async-Profiler CPU
/// profiles of Spark-Bench — the RDD API run (P1) against the SQL Dataset
/// API run (P2). The differential tree shows [A] contexts for the SQL
/// engine, [D] contexts for the abandoned iterator/shuffle chains, and
/// quantifies the delta per context, explaining why the SQL run wins.
///
//===----------------------------------------------------------------------===//

#include "analysis/Diff.h"
#include "analysis/MetricEngine.h"
#include "render/DiffRenderer.h"
#include "workload/SparkWorkload.h"

#include <cstdio>

using namespace ev;

int main() {
  workload::SparkWorkload W = workload::generateSparkWorkload();

  double RddTotal = metricTotal(W.Rdd, 0) / 1e9;
  double SqlTotal = metricTotal(W.Sql, 0) / 1e9;
  std::printf("P1 (RDD API):        %.1f s CPU\n", RddTotal);
  std::printf("P2 (SQL Dataset API): %.1f s CPU  (%.2fx faster)\n\n",
              SqlTotal, RddTotal / SqlTotal);

  DiffResult Diff = diffProfiles(W.Rdd, W.Sql, 0);

  size_t Added = 0, Deleted = 0, Increased = 0, Decreased = 0;
  for (DiffTag Tag : Diff.Tags) {
    switch (Tag) {
    case DiffTag::Added:
      ++Added;
      break;
    case DiffTag::Deleted:
      ++Deleted;
      break;
    case DiffTag::Increased:
      ++Increased;
      break;
    case DiffTag::Decreased:
      ++Decreased;
      break;
    case DiffTag::Common:
      break;
    }
  }
  std::printf("diff tags: [A]=%zu [D]=%zu [+]=%zu [-]=%zu\n\n", Added,
              Deleted, Increased, Decreased);

  DiffRenderOptions Opt;
  Opt.MaxDepth = 14;
  Opt.MinFraction = 0.01;
  std::printf("differential top-down view (P2 vs P1):\n%s\n",
              renderDiffText(Diff, Opt).c_str());

  // Point at the headline findings, as the paper narrates them.
  const Profile &M = Diff.Merged;
  for (NodeId Id = 0; Id < M.nodeCount(); ++Id) {
    std::string_view Name = M.nameOf(Id);
    if (Name.find("WholeStageCodegen") != std::string_view::npos &&
        Diff.Tags[Id] == DiffTag::Added)
      std::printf("finding: SQL engine context added: %s\n",
                  std::string(Name).c_str());
    if (Name.find("BypassMergeSortShuffleWriter") != std::string_view::npos &&
        Diff.Tags[Id] == DiffTag::Deleted)
      std::printf("finding: costly shuffle removed:   %s\n",
                  std::string(Name).c_str());
  }
  return 0;
}
