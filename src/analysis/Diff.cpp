//===- analysis/Diff.cpp - Profile differencing ---------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diff.h"

#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cmath>
#include <string_view>
#include <unordered_map>

namespace ev {

std::string_view diffTagLabel(DiffTag Tag) {
  switch (Tag) {
  case DiffTag::Common:
    return "[=]";
  case DiffTag::Added:
    return "[A]";
  case DiffTag::Deleted:
    return "[D]";
  case DiffTag::Increased:
    return "[+]";
  case DiffTag::Decreased:
    return "[-]";
  }
  return "[?]";
}

namespace {

/// Read-only per-side index computed before the merge: textual frame
/// identities plus the dense exclusive column of the diffed metric.
struct SidePrep {
  struct CanonFrame {
    FrameKind Kind;
    std::string_view Name;
    std::string_view File;
    std::string_view Module;
    uint32_t Line;
  };
  std::vector<CanonFrame> Frames;
  std::vector<double> Values;
};

SidePrep prepareSide(const Profile &P, MetricId Metric) {
  SidePrep Prep;
  Prep.Frames.reserve(P.frames().size());
  for (const Frame &F : P.frames())
    Prep.Frames.push_back({F.Kind, P.text(F.Name), P.text(F.Loc.File),
                           P.text(F.Loc.Module), F.Loc.Line});
  Prep.Values.resize(P.nodeCount(), 0.0);
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    Prep.Values[Id] = P.node(Id).metricOr(Metric);
  return Prep;
}

} // namespace

DiffResult diffProfiles(const Profile &Base, const Profile &Test,
                        MetricId Metric, double RelativeEpsilon,
                        const CancelToken &Cancel) {
  trace::Span Span("analysis/diffProfiles", "analysis");
  DiffResult Result;
  Profile &Merged = Result.Merged;
  Merged.setName("diff: " + Test.name() + " vs " + Base.name());

  const MetricDescriptor &M = Base.metrics().at(Metric);
  Result.BaseMetric = Merged.addMetric("base " + M.Name, M.Unit);
  Result.TestMetric = Merged.addMetric("test " + M.Name, M.Unit);
  Result.DeltaMetric = Merged.addMetric("delta " + M.Name, M.Unit);

  // The metric may sit at a different id in the test profile; match by name.
  MetricId TestInput = Test.findMetric(M.Name);
  if (TestInput == Profile::InvalidMetric)
    TestInput = Metric;

  // Both sides' indexes (canonical frames + metric column) build
  // concurrently — they only read their own input.
  std::vector<SidePrep> Preps = ThreadPool::shared().parallelMap<SidePrep>(
      2, [&](size_t Side) {
        return Side == 0 ? prepareSide(Base, Metric)
                         : prepareSide(Test, TestInput);
      });

  std::unordered_map<uint64_t, NodeId> ChildIndex;
  auto ChildFor = [&](NodeId Parent, FrameId F) {
    uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | F;
    auto It = ChildIndex.find(Key);
    if (It != ChildIndex.end())
      return It->second;
    NodeId Id = Merged.createNode(Parent, F);
    ChildIndex.emplace(Key, Id);
    return Id;
  };

  // Presence[node]: bit 0 = in base, bit 1 = in test.
  std::vector<uint8_t> Presence;
  Presence.resize(1, 3); // Root is in both.

  // The merges themselves stay sequential (base first, then test) so the
  // merged node ids are identical for every thread count.
  auto MergeSide = [&](const Profile &P, const SidePrep &Prep,
                       MetricId SideMetric, uint8_t Bit) {
    std::vector<NodeId> OutNode(P.nodeCount(), InvalidNode);
    OutNode[P.root()] = Merged.root();
    std::vector<FrameId> FrameMap(P.frames().size(), 0);
    std::vector<bool> FrameMapped(P.frames().size(), false);
    auto MapFrame = [&](FrameId F) {
      if (FrameMapped[F])
        return FrameMap[F];
      const SidePrep::CanonFrame &Canon = Prep.Frames[F];
      Frame Copy;
      Copy.Kind = Canon.Kind;
      Copy.Name = Merged.strings().intern(Canon.Name);
      Copy.Loc.File = Merged.strings().intern(Canon.File);
      Copy.Loc.Line = Canon.Line;
      Copy.Loc.Module = Merged.strings().intern(Canon.Module);
      Copy.Loc.Address = 0;
      FrameMap[F] = Merged.internFrame(Copy);
      FrameMapped[F] = true;
      return FrameMap[F];
    };
    for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
      if ((Id & 8191) == 0)
        Cancel.checkpoint();
      const CCTNode &Node = P.node(Id);
      OutNode[Id] = ChildFor(OutNode[Node.Parent], MapFrame(Node.FrameRef));
      if (Presence.size() <= OutNode[Id])
        Presence.resize(OutNode[Id] + 1, 0);
      Presence[OutNode[Id]] |= Bit;
    }
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
      double V = Prep.Values[Id];
      if (V != 0.0)
        Merged.node(OutNode[Id]).addMetric(SideMetric, V);
    }
  };

  MergeSide(Base, Preps[0], Result.BaseMetric, /*Bit=*/1);
  MergeSide(Test, Preps[1], Result.TestMetric, /*Bit=*/2);
  Presence.resize(Merged.nodeCount(), 0);

  // Delta column (exclusive) and inclusive columns for tagging.
  Result.BaseInclusive.assign(Merged.nodeCount(), 0.0);
  Result.TestInclusive.assign(Merged.nodeCount(), 0.0);
  for (NodeId Id = 0; Id < Merged.nodeCount(); ++Id) {
    if ((Id & 8191) == 0)
      Cancel.checkpoint();
    double B = Merged.node(Id).metricOr(Result.BaseMetric);
    double T = Merged.node(Id).metricOr(Result.TestMetric);
    if (T - B != 0.0)
      Merged.node(Id).addMetric(Result.DeltaMetric, T - B);
    Result.BaseInclusive[Id] = B;
    Result.TestInclusive[Id] = T;
  }
  // The two inclusive sweeps touch disjoint columns, so they run as two
  // independent tasks with bit-identical results.
  ThreadPool::shared().parallelFor(2, [&](size_t Side) {
    std::vector<double> &Column =
        Side == 0 ? Result.BaseInclusive : Result.TestInclusive;
    for (NodeId Id = static_cast<NodeId>(Merged.nodeCount()); Id > 1;) {
      --Id;
      Column[Merged.node(Id).Parent] += Column[Id];
    }
  });

  // Tagging is a pure per-node function of presence bits and the inclusive
  // columns; chunks own disjoint node ranges.
  Result.Tags.assign(Merged.nodeCount(), DiffTag::Common);
  ThreadPool::shared().parallelForChunks(
      Merged.nodeCount(), [&](size_t Begin, size_t End) {
        for (NodeId Id = static_cast<NodeId>(Begin); Id < End; ++Id) {
          bool InBase = Presence[Id] & 1;
          bool InTest = Presence[Id] & 2;
          if (Id == Merged.root()) {
            InBase = true;
            InTest = true;
          }
          if (!InBase && InTest) {
            Result.Tags[Id] = DiffTag::Added;
            continue;
          }
          if (InBase && !InTest) {
            Result.Tags[Id] = DiffTag::Deleted;
            continue;
          }
          double B = Result.BaseInclusive[Id];
          double T = Result.TestInclusive[Id];
          double Scale = std::max(std::abs(B), std::abs(T));
          if (Scale == 0.0 || std::abs(T - B) <= RelativeEpsilon * Scale)
            Result.Tags[Id] = DiffTag::Common;
          else
            Result.Tags[Id] = T > B ? DiffTag::Increased : DiffTag::Decreased;
        }
      });
  return Result;
}

} // namespace ev
