//===- profile/ProfileBuilder.h - High-level data builder -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "data builder" of paper §IV-B: the simple high-level API that lets a
/// profiler emit EasyView's representation directly, or lets a format
/// converter translate a foreign profile. The paper measures that adopting
/// this API takes under 20 lines of code in an existing profiler; the
/// programmability benchmark (bench_table1_programmability) measures the
/// same property for this reproduction.
///
/// Typical use:
/// \code
///   ProfileBuilder B("my run");
///   MetricId Time = B.addMetric("cpu-time", "nanoseconds");
///   std::vector<FrameId> Path = {
///       B.functionFrame("main", "main.c", 10, "a.out"),
///       B.functionFrame("work", "work.c", 42, "a.out")};
///   B.addSample(Path, Time, 1500.0);
///   Profile P = B.take();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_PROFILE_PROFILEBUILDER_H
#define EASYVIEW_PROFILE_PROFILEBUILDER_H

#include "profile/Profile.h"

#include <span>
#include <string_view>
#include <unordered_map>

namespace ev {

class ProfileBuilder {
public:
  explicit ProfileBuilder(std::string Name);

  /// Registers (or finds) a metric column.
  MetricId addMetric(std::string_view Name, std::string_view Unit,
                     MetricAggregation Aggregation = MetricAggregation::Sum);

  /// Interns a function frame with optional code mapping.
  FrameId functionFrame(std::string_view Name, std::string_view File = "",
                        uint32_t Line = 0, std::string_view Module = "",
                        uint64_t Address = 0);

  /// Interns a data-object frame (heap object, static symbol).
  FrameId dataFrame(std::string_view Name, std::string_view File = "",
                    uint32_t Line = 0);

  /// Interns a frame of arbitrary kind.
  FrameId frame(FrameKind Kind, std::string_view Name, std::string_view File,
                uint32_t Line, std::string_view Module, uint64_t Address = 0);

  /// Materializes the CCT path root->...->leaf, merging common prefixes,
  /// and \returns the leaf node.
  NodeId pushPath(std::span<const FrameId> Path);

  /// Records \p Value of \p Metric at the leaf of \p Path (exclusive).
  NodeId addSample(std::span<const FrameId> Path, MetricId Metric,
                   double Value);

  /// Adds \p Value of \p Metric to an existing node.
  void addValue(NodeId Node, MetricId Metric, double Value);

  /// Binds one metric value to several already-materialized contexts
  /// (reuse pairs etc.).
  void addGroup(std::string_view Kind, std::span<const NodeId> Contexts,
                MetricId Metric, double Value);

  /// Read access to the profile under construction.
  const Profile &peek() const { return P; }

  /// Finalizes and moves the profile out; the builder must not be used
  /// afterwards.
  Profile take();

private:
  NodeId childFor(NodeId Parent, FrameId F);

  Profile P;
  /// (parent node, frame) -> child node, for prefix merging without scanning
  /// child lists.
  std::unordered_map<uint64_t, NodeId> ChildIndex;
};

} // namespace ev

#endif // EASYVIEW_PROFILE_PROFILEBUILDER_H
