//===- tests/query_test.cpp - EVQL language tests -------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "query/Interpreter.h"
#include "query/Lexer.h"
#include "query/Parser.h"

#include "TestHelpers.h"
#include "analysis/MetricEngine.h"

#include <gtest/gtest.h>

using namespace ev;
using namespace ev::evql;

//===----------------------------------------------------------------------===
// Lexer
//===----------------------------------------------------------------------===

TEST(Lexer, TokenizesKeywordsAndIdentifiers) {
  Result<std::vector<Token>> Tokens =
      lex("let derive prune keep when print true false name");
  ASSERT_TRUE(Tokens.ok()) << Tokens.error();
  ASSERT_EQ(Tokens->size(), 10u); // Incl. EndOfInput.
  EXPECT_EQ((*Tokens)[0].Kind, TokenKind::KwLet);
  EXPECT_EQ((*Tokens)[5].Kind, TokenKind::KwPrint);
  EXPECT_EQ((*Tokens)[8].Kind, TokenKind::Identifier);
  EXPECT_EQ((*Tokens)[8].Text, "name");
  EXPECT_EQ((*Tokens)[9].Kind, TokenKind::EndOfInput);
}

TEST(Lexer, TokenizesOperators) {
  Result<std::vector<Token>> Tokens = lex("== != <= >= < > && || ! = ? :");
  ASSERT_TRUE(Tokens.ok());
  EXPECT_EQ((*Tokens)[0].Kind, TokenKind::EqualEqual);
  EXPECT_EQ((*Tokens)[1].Kind, TokenKind::BangEqual);
  EXPECT_EQ((*Tokens)[2].Kind, TokenKind::LessEqual);
  EXPECT_EQ((*Tokens)[3].Kind, TokenKind::GreaterEqual);
  EXPECT_EQ((*Tokens)[6].Kind, TokenKind::AmpAmp);
  EXPECT_EQ((*Tokens)[7].Kind, TokenKind::PipePipe);
  EXPECT_EQ((*Tokens)[9].Kind, TokenKind::Assign);
}

TEST(Lexer, NumbersIncludingScientific) {
  Result<std::vector<Token>> Tokens = lex("0 3.5 1e3 2.5e-2");
  ASSERT_TRUE(Tokens.ok());
  EXPECT_DOUBLE_EQ((*Tokens)[0].Number, 0.0);
  EXPECT_DOUBLE_EQ((*Tokens)[1].Number, 3.5);
  EXPECT_DOUBLE_EQ((*Tokens)[2].Number, 1000.0);
  EXPECT_DOUBLE_EQ((*Tokens)[3].Number, 0.025);
}

TEST(Lexer, StringsWithEscapes) {
  Result<std::vector<Token>> Tokens = lex(R"("a\nb\"c")");
  ASSERT_TRUE(Tokens.ok());
  EXPECT_EQ((*Tokens)[0].Text, "a\nb\"c");
}

TEST(Lexer, CommentsSkipped) {
  Result<std::vector<Token>> Tokens = lex("1 # a comment\n2");
  ASSERT_TRUE(Tokens.ok());
  ASSERT_EQ(Tokens->size(), 3u);
  EXPECT_DOUBLE_EQ((*Tokens)[1].Number, 2.0);
  EXPECT_EQ((*Tokens)[1].Line, 2u);
}

TEST(Lexer, RejectsBadInput) {
  EXPECT_FALSE(lex("\"unterminated").ok());
  EXPECT_FALSE(lex("a & b").ok());
  EXPECT_FALSE(lex("a | b").ok());
  EXPECT_FALSE(lex("@").ok());
}

TEST(Lexer, ErrorsCarryLineNumbers) {
  Result<std::vector<Token>> R = lex("ok();\n@");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("line 2"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Parser
//===----------------------------------------------------------------------===

TEST(Parser, StatementKinds) {
  Result<Program> Prog = parseProgram("let x = 1;\n"
                                      "derive m = 2 * x;\n"
                                      "prune when depth() > 5;\n"
                                      "keep when true;\n"
                                      "print \"done\";\n");
  ASSERT_TRUE(Prog.ok()) << Prog.error();
  ASSERT_EQ(Prog->Statements.size(), 5u);
  EXPECT_EQ(Prog->Statements[0].TheKind, Stmt::Kind::Let);
  EXPECT_EQ(Prog->Statements[1].TheKind, Stmt::Kind::Derive);
  EXPECT_EQ(Prog->Statements[1].Name, "m");
  EXPECT_EQ(Prog->Statements[2].TheKind, Stmt::Kind::Prune);
  EXPECT_EQ(Prog->Statements[3].TheKind, Stmt::Kind::Keep);
  EXPECT_EQ(Prog->Statements[4].TheKind, Stmt::Kind::Print);
}

TEST(Parser, PrecedenceMultiplicationBeforeAddition) {
  Result<ExprPtr> E = parseExpression("1 + 2 * 3");
  ASSERT_TRUE(E.ok());
  ASSERT_EQ((*E)->TheKind, Expr::Kind::Binary);
  EXPECT_EQ((*E)->Op, TokenKind::Plus);
  EXPECT_EQ((*E)->Operands[1]->Op, TokenKind::Star);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  Result<ExprPtr> E = parseExpression("(1 + 2) * 3");
  ASSERT_TRUE(E.ok());
  EXPECT_EQ((*E)->Op, TokenKind::Star);
}

TEST(Parser, ComparisonBindsLooserThanArithmetic) {
  Result<ExprPtr> E = parseExpression("1 + 2 < 3 * 4");
  ASSERT_TRUE(E.ok());
  EXPECT_EQ((*E)->Op, TokenKind::Less);
}

TEST(Parser, LogicalOperatorsNest) {
  Result<ExprPtr> E = parseExpression("a() || b() && c()");
  ASSERT_TRUE(E.ok());
  EXPECT_EQ((*E)->Op, TokenKind::PipePipe); // && binds tighter.
}

TEST(Parser, TernaryRightAssociates) {
  Result<ExprPtr> E = parseExpression("a() ? 1 : b() ? 2 : 3");
  ASSERT_TRUE(E.ok());
  ASSERT_EQ((*E)->TheKind, Expr::Kind::Ternary);
  EXPECT_EQ((*E)->Operands[2]->TheKind, Expr::Kind::Ternary);
}

TEST(Parser, CallsWithArguments) {
  Result<ExprPtr> E = parseExpression("min(metric(\"a\"), 2 + 3)");
  ASSERT_TRUE(E.ok());
  EXPECT_EQ((*E)->TheKind, Expr::Kind::Call);
  EXPECT_EQ((*E)->Text, "min");
  ASSERT_EQ((*E)->Operands.size(), 2u);
  EXPECT_EQ((*E)->Operands[0]->TheKind, Expr::Kind::Call);
}

TEST(Parser, RejectsMissingSemicolon) {
  Result<Program> R = parseProgram("print 1");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("';'"), std::string::npos);
}

TEST(Parser, RejectsUnknownStatement) {
  EXPECT_FALSE(parseProgram("frobnicate 3;").ok());
}

TEST(Parser, RejectsMissingWhen) {
  EXPECT_FALSE(parseProgram("prune depth() > 3;").ok());
}

TEST(Parser, RejectsDanglingOperator) {
  EXPECT_FALSE(parseExpression("1 +").ok());
  EXPECT_FALSE(parseExpression("(1").ok());
  EXPECT_FALSE(parseExpression("f(1,").ok());
}

//===----------------------------------------------------------------------===
// Interpreter
//===----------------------------------------------------------------------===

namespace {

std::string evalToString(const Profile &P, const std::string &Expr) {
  Result<QueryOutput> Out = runProgram(P, "print " + Expr + ";");
  EXPECT_TRUE(Out.ok()) << Out.error();
  return Out.ok() && !Out->Printed.empty() ? Out->Printed[0] : "<error>";
}

} // namespace

TEST(Interpreter, Arithmetic) {
  Profile P = test::makeFixedProfile();
  EXPECT_EQ(evalToString(P, "1 + 2 * 3"), "7");
  EXPECT_EQ(evalToString(P, "10 / 4"), "2.500000");
  EXPECT_EQ(evalToString(P, "7 % 3"), "1");
  EXPECT_EQ(evalToString(P, "-(2 + 3)"), "-5");
  EXPECT_EQ(evalToString(P, "5 / 0"), "0"); // Guarded division.
}

TEST(Interpreter, BooleansAndComparisons) {
  Profile P = test::makeFixedProfile();
  EXPECT_EQ(evalToString(P, "1 < 2"), "true");
  EXPECT_EQ(evalToString(P, "2 <= 1"), "false");
  EXPECT_EQ(evalToString(P, "!(1 == 1)"), "false");
  EXPECT_EQ(evalToString(P, "true && false"), "false");
  EXPECT_EQ(evalToString(P, "true || false"), "true");
  EXPECT_EQ(evalToString(P, "\"a\" == \"a\""), "true");
  EXPECT_EQ(evalToString(P, "\"a\" < \"b\""), "true");
}

TEST(Interpreter, TernaryAndStrings) {
  Profile P = test::makeFixedProfile();
  EXPECT_EQ(evalToString(P, "1 < 2 ? \"yes\" : \"no\""), "yes");
  EXPECT_EQ(evalToString(P, "\"a\" + \"b\""), "ab");
  EXPECT_EQ(evalToString(P, "contains(\"hello\", \"ell\")"), "true");
  EXPECT_EQ(evalToString(P, "startswith(\"hello\", \"he\")"), "true");
  EXPECT_EQ(evalToString(P, "endswith(\"hello\", \"xo\")"), "false");
  EXPECT_EQ(evalToString(P, "str(42)"), "42");
  EXPECT_EQ(evalToString(P, "fmt(3.14159, 2)"), "3.14");
}

TEST(Interpreter, MathBuiltins) {
  Profile P = test::makeFixedProfile();
  EXPECT_EQ(evalToString(P, "min(3, 5)"), "3");
  EXPECT_EQ(evalToString(P, "max(3, 5)"), "5");
  EXPECT_EQ(evalToString(P, "abs(-4)"), "4");
  EXPECT_EQ(evalToString(P, "sqrt(16)"), "4");
  EXPECT_EQ(evalToString(P, "floor(2.7)"), "2");
  EXPECT_EQ(evalToString(P, "ceil(2.1)"), "3");
  EXPECT_EQ(evalToString(P, "ratio(10, 4)"), "2.500000");
  EXPECT_EQ(evalToString(P, "ratio(10, 0)"), "0"); // Guarded.
}

TEST(Interpreter, ProfileBuiltins) {
  Profile P = test::makeFixedProfile();
  EXPECT_EQ(evalToString(P, "total(\"time\")"), "100");
  EXPECT_EQ(evalToString(P, "nodecount()"), "6");
}

TEST(Interpreter, LetBindsGlobals) {
  Profile P = test::makeFixedProfile();
  Result<QueryOutput> Out = runProgram(P, "let x = 2 * total(\"time\");\n"
                                          "print x + 1;");
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(Out->Printed[0], "201");
}

TEST(Interpreter, DeriveAddsMetricColumn) {
  Profile P = test::makeFixedProfile();
  Result<QueryOutput> Out = runProgram(
      P, "derive share = 100 * inclusive(\"time\") / total(\"time\");");
  ASSERT_TRUE(Out.ok()) << Out.error();
  ASSERT_EQ(Out->DerivedMetrics.size(), 1u);
  MetricId Share = Out->Result.findMetric("share");
  ASSERT_NE(Share, Profile::InvalidMetric);
  for (NodeId Id = 0; Id < Out->Result.nodeCount(); ++Id) {
    if (Out->Result.nameOf(Id) == "kernel") {
      EXPECT_DOUBLE_EQ(Out->Result.node(Id).metricOr(Share), 40.0);
    }
    if (Out->Result.nameOf(Id) == "compute") {
      EXPECT_DOUBLE_EQ(Out->Result.node(Id).metricOr(Share), 75.0);
    }
  }
}

TEST(Interpreter, DeriveCanUseNodeAttributes) {
  Profile P = test::makeFixedProfile();
  Result<QueryOutput> Out = runProgram(
      P, "derive flag = contains(name(), \"mem\") ? 1 : 0;");
  ASSERT_TRUE(Out.ok()) << Out.error();
  MetricId Flag = Out->Result.findMetric("flag");
  double Sum = metricTotal(Out->Result, Flag);
  EXPECT_DOUBLE_EQ(Sum, 1.0); // Only memcpy matches.
}

TEST(Interpreter, PruneElidesMatchingNodes) {
  Profile P = test::makeFixedProfile();
  Result<QueryOutput> Out =
      runProgram(P, "prune when name() == \"compute\";");
  ASSERT_TRUE(Out.ok()) << Out.error();
  bool HasCompute = false, HasKernel = false;
  for (NodeId Id = 0; Id < Out->Result.nodeCount(); ++Id) {
    if (Out->Result.nameOf(Id) == "compute")
      HasCompute = true;
    if (Out->Result.nameOf(Id) == "kernel")
      HasKernel = true;
  }
  EXPECT_FALSE(HasCompute);
  EXPECT_TRUE(HasKernel); // Children re-attach, totals conserved.
  EXPECT_DOUBLE_EQ(metricTotal(Out->Result, 0), 100.0);
}

TEST(Interpreter, KeepInvertsPrune) {
  Profile P = test::makeFixedProfile();
  Result<QueryOutput> Out = runProgram(
      P, "keep when inclusive(\"time\") >= 0.25 * total(\"time\");");
  ASSERT_TRUE(Out.ok()) << Out.error();
  for (NodeId Id = 1; Id < Out->Result.nodeCount(); ++Id)
    EXPECT_NE(Out->Result.nameOf(Id), "parse");
  EXPECT_DOUBLE_EQ(metricTotal(Out->Result, 0), 100.0);
}

TEST(Interpreter, StatementsComposeInOrder) {
  Profile P = test::makeFixedProfile();
  Result<QueryOutput> Out = runProgram(
      P, "derive d = exclusive(\"time\");\n"
         "prune when name() == \"parse\";\n"
         "print total(\"d\");");
  ASSERT_TRUE(Out.ok()) << Out.error();
  // The derived column existed before pruning, so parse's d folds into
  // main: total stays 100.
  EXPECT_EQ(Out->Printed[0], "100");
}

TEST(Interpreter, DepthAndChildrenBuiltins) {
  Profile P = test::makeFixedProfile();
  Result<QueryOutput> Out =
      runProgram(P, "derive d = depth(); derive k = nchildren();");
  ASSERT_TRUE(Out.ok()) << Out.error();
  MetricId DM = Out->Result.findMetric("d");
  for (NodeId Id = 0; Id < Out->Result.nodeCount(); ++Id)
    EXPECT_DOUBLE_EQ(Out->Result.node(Id).metricOr(DM),
                     static_cast<double>(Out->Result.depth(Id)));
}

TEST(Interpreter, RuntimeErrors) {
  Profile P = test::makeFixedProfile();
  EXPECT_FALSE(runProgram(P, "print metric(\"nope\");").ok());
  EXPECT_FALSE(runProgram(P, "print undefinedVar;").ok());
  EXPECT_FALSE(runProgram(P, "print unknownFn(1);").ok());
  EXPECT_FALSE(runProgram(P, "print 1 + \"s\";").ok());
  EXPECT_FALSE(runProgram(P, "print min(1);").ok()); // Arity.
  // Node builtins need a node context.
  EXPECT_FALSE(runProgram(P, "print name();").ok());
  EXPECT_FALSE(runProgram(P, "let x = depth();").ok());
}

TEST(Interpreter, ErrorMessagesNameTheProblem) {
  Profile P = test::makeFixedProfile();
  Result<QueryOutput> R = runProgram(P, "derive x = metric(\"nope\");");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("nope"), std::string::npos);
}

TEST(Interpreter, PrintsValuesBeyondInt64Range) {
  // The old int64 cast in toString was undefined behavior for values
  // outside int64 range; they now render through formatDouble(V, 6).
  Profile P = test::makeFixedProfile();
  Result<QueryOutput> R = runProgram(P, "print 5000000000 * 2000000000;");
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->Printed[0], "10000000000000000000.000000");
  // In-range integral values keep the bare integer rendering.
  R = runProgram(P, "print 4.0 * 25;");
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->Printed[0], "100");
  // Hostile fmt() digit counts clamp instead of overflowing the
  // double->int conversion.
  EXPECT_TRUE(runProgram(P, "print fmt(3.5, 2000000000000);").ok());
}

TEST(Interpreter, ExpressionNestingIsBounded) {
  Profile P = test::makeFixedProfile();
  std::string Src = "print 1";
  for (int I = 0; I < 300; ++I)
    Src += " + 1";
  Src += ";";
  Result<QueryOutput> R = runProgram(P, Src);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find(
                "expression nesting exceeds the analysis limit of 256"),
            std::string::npos)
      << R.error();
}

TEST(Interpreter, DeriveMetricHelper) {
  Profile P = test::makeFixedProfile();
  Result<Profile> Out =
      deriveMetric(P, "dbl", "2 * exclusive(\"time\")");
  ASSERT_TRUE(Out.ok()) << Out.error();
  MetricId M = Out->findMetric("dbl");
  ASSERT_NE(M, Profile::InvalidMetric);
  EXPECT_DOUBLE_EQ(metricTotal(*Out, M), 200.0);
}

TEST(Interpreter, PaperStyleCpiFormula) {
  // The paper's example: cycles per instruction as a derived metric.
  ProfileBuilder B("cpi");
  MetricId Cycles = B.addMetric("cycles", "count");
  MetricId Instr = B.addMetric("instructions", "count");
  FrameId F = B.functionFrame("hot");
  std::vector<FrameId> Path = {F};
  NodeId N = B.addSample(Path, Cycles, 3000);
  B.addValue(N, Instr, 1000);
  Profile P = B.take();

  Result<Profile> Out = deriveMetric(
      P, "cpi", "ratio(exclusive(\"cycles\"), exclusive(\"instructions\"))");
  ASSERT_TRUE(Out.ok()) << Out.error();
  MetricId Cpi = Out->findMetric("cpi");
  for (NodeId Id = 0; Id < Out->nodeCount(); ++Id)
    if (Out->nameOf(Id) == "hot") {
      EXPECT_DOUBLE_EQ(Out->node(Id).metricOr(Cpi), 3.0);
    }
}
