//===- tests/tool_test.cpp - evtool CLI driver tests ----------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tool/CliDriver.h"

#include "TestHelpers.h"
#include "proto/EvProf.h"
#include "support/FileIo.h"
#include "support/ProtoWire.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace ev;
using namespace ev::tool;

namespace {

/// Writes fixture files into a per-test temp directory.
class ToolTest : public ::testing::Test {
protected:
  void SetUp() override {
    const ::testing::TestInfo *Info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    Dir = std::string("/tmp/evtool_test_") + Info->name();
    std::string Cmd = "mkdir -p " + Dir;
    ASSERT_EQ(std::system(Cmd.c_str()), 0);

    Evprof = Dir + "/fixed.evprof";
    ASSERT_TRUE(writeFile(Evprof, writeEvProf(test::makeFixedProfile()))
                    .ok());
    Folded = Dir + "/stacks.folded";
    ASSERT_TRUE(
        writeFile(Folded, "main;alpha;beta 10\nmain;gamma 5\n").ok());
  }

  int run(std::initializer_list<std::string> Args) {
    Out.clear();
    Err.clear();
    return runEvTool(std::vector<std::string>(Args), Out, Err);
  }

  std::string Dir, Evprof, Folded;
  std::string Out, Err;
};

} // namespace

TEST_F(ToolTest, HelpAndUnknownCommand) {
  EXPECT_EQ(run({"help"}), 0);
  EXPECT_NE(Out.find("usage: evtool"), std::string::npos);
  EXPECT_EQ(run({"frobnicate"}), ExitUsageError);
  EXPECT_NE(Err.find("unknown command"), std::string::npos);
  EXPECT_EQ(run({}), ExitUsageError);
  EXPECT_NE(Err.find("usage: evtool"), std::string::npos);
}

TEST_F(ToolTest, DistinctExitCodesPerFailureMode) {
  // Usage errors and data errors are distinguishable by exit code alone,
  // and both diagnose on stderr, never stdout.
  EXPECT_EQ(run({"info"}), ExitUsageError);
  EXPECT_TRUE(Out.empty());
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(run({"info", Dir + "/does-not-exist.prof"}), ExitDataError);
  EXPECT_TRUE(Out.empty());
  EXPECT_NE(Err.find("evtool: error:"), std::string::npos);
  std::string Garbage = Dir + "/garbage.prof";
  ASSERT_TRUE(writeFile(Garbage, "not a profile at all").ok());
  EXPECT_EQ(run({"info", Garbage}), ExitDataError);
}

TEST_F(ToolTest, InfoDescribesProfile) {
  ASSERT_EQ(run({"info", Evprof}), 0) << Err;
  EXPECT_NE(Out.find("format:   evprof"), std::string::npos);
  EXPECT_NE(Out.find("contexts: 6"), std::string::npos);
  EXPECT_NE(Out.find("metric:   time"), std::string::npos);
}

TEST_F(ToolTest, InfoAutoDetectsForeignFormats) {
  ASSERT_EQ(run({"info", Folded}), 0) << Err;
  EXPECT_NE(Out.find("format:   collapsed"), std::string::npos);
}

TEST_F(ToolTest, MissingFileFails) {
  EXPECT_EQ(run({"info", Dir + "/nope.prof"}), ExitDataError);
  EXPECT_NE(Err.find("cannot open"), std::string::npos);
}

TEST_F(ToolTest, SummaryListsHotspots) {
  ASSERT_EQ(run({"summary", Evprof}), 0) << Err;
  EXPECT_NE(Out.find("kernel"), std::string::npos);
}

TEST_F(ToolTest, FlameAnsiAllShapes) {
  for (const char *Shape : {"top-down", "bottom-up", "flat"}) {
    ASSERT_EQ(run({"flame", Evprof, "--shape", Shape}), 0)
        << Shape << ": " << Err;
    EXPECT_FALSE(Out.empty()) << Shape;
  }
  EXPECT_EQ(run({"flame", Evprof, "--shape", "spiral"}), ExitUsageError);
}

TEST_F(ToolTest, FlameSvgWritesFile) {
  std::string Svg = Dir + "/flame.svg";
  ASSERT_EQ(run({"flame", Evprof, "--svg", Svg}), 0) << Err;
  Result<std::string> Written = readFile(Svg);
  ASSERT_TRUE(Written.ok());
  EXPECT_NE(Written->find("<svg"), std::string::npos);
  EXPECT_NE(Written->find("kernel"), std::string::npos);
}

TEST_F(ToolTest, TableShowsHotPath) {
  ASSERT_EQ(run({"table", Evprof}), 0) << Err;
  EXPECT_NE(Out.find("kernel"), std::string::npos);
  EXPECT_NE(Out.find("incl/excl"), std::string::npos);
}

TEST_F(ToolTest, ConvertBetweenFormats) {
  for (const char *To :
       {"evprof", "pprof", "collapsed", "speedscope", "chrome"}) {
    std::string Target = Dir + "/out." + To;
    ASSERT_EQ(run({"convert", Folded, Target, "--to", To}), 0)
        << To << ": " << Err;
    // Everything except chrome re-opens through auto-detection; chrome
    // re-opens too (the converter reads trace JSON).
    ASSERT_EQ(run({"info", Target}), 0) << To << ": " << Err;
  }
  EXPECT_EQ(run({"convert", Folded, Dir + "/x", "--to", "dot"}), ExitUsageError);
}

TEST_F(ToolTest, DiffPrintsTags) {
  // Diff the profile against itself: all common, no [A]/[D].
  ASSERT_EQ(run({"diff", Evprof, Evprof}), 0) << Err;
  EXPECT_NE(Out.find("[=] ROOT"), std::string::npos);
  EXPECT_EQ(Out.find("[A]"), std::string::npos);
}

TEST_F(ToolTest, AggregateWritesMergedProfile) {
  std::string Target = Dir + "/agg.evprof";
  ASSERT_EQ(run({"aggregate", Target, Evprof, Evprof}), 0) << Err;
  ASSERT_EQ(run({"info", Target}), 0) << Err;
  EXPECT_NE(Out.find("contexts: 6"), std::string::npos);
  EXPECT_NE(Out.find("200"), std::string::npos); // Doubled total.
}

TEST_F(ToolTest, QueryInlineProgram) {
  ASSERT_EQ(run({"query", Evprof, "--e",
                 "print total(\"time\"); derive s = share(\"time\");"}),
            0)
      << Err;
  EXPECT_NE(Out.find("100"), std::string::npos);
  EXPECT_NE(Out.find("derived metrics: s"), std::string::npos);
}

TEST_F(ToolTest, QueryFromFileAndResultOutput) {
  std::string Program = Dir + "/prog.evql";
  ASSERT_TRUE(
      writeFile(Program, "prune when name() == \"parse\";\n").ok());
  std::string Target = Dir + "/pruned.evprof";
  ASSERT_EQ(run({"query", Evprof, "--file", Program, "--out", Target}), 0)
      << Err;
  ASSERT_EQ(run({"info", Target}), 0) << Err;
  EXPECT_NE(Out.find("contexts: 5"), std::string::npos);
}

TEST_F(ToolTest, QueryErrorsSurface) {
  EXPECT_EQ(run({"query", Evprof, "--e", "print ("}), ExitDataError);
  EXPECT_NE(Err.find("error"), std::string::npos);
  // No program given: that is a usage error, not a data error.
  EXPECT_EQ(run({"query", Evprof}), ExitUsageError);
}

TEST_F(ToolTest, ButterflyShowsCallersAndCallees) {
  ASSERT_EQ(run({"butterfly", Evprof, "compute"}), 0) << Err;
  EXPECT_NE(Out.find("callers:"), std::string::npos);
  EXPECT_NE(Out.find("main"), std::string::npos);
  EXPECT_NE(Out.find("kernel"), std::string::npos);
  EXPECT_EQ(run({"butterfly", Evprof, "missingFn"}), ExitDataError);
}

TEST_F(ToolTest, ReportWritesHtml) {
  std::string Target = Dir + "/report.html";
  ASSERT_EQ(run({"report", Evprof, Target}), 0) << Err;
  Result<std::string> Html = readFile(Target);
  ASSERT_TRUE(Html.ok());
  EXPECT_NE(Html->find("<!DOCTYPE html>"), std::string::npos);
}

TEST_F(ToolTest, AnnotateListsSourceLines) {
  ASSERT_EQ(run({"annotate", Evprof, "comp.cc"}), 0) << Err;
  EXPECT_NE(Out.find("line 20"), std::string::npos);
  EXPECT_NE(Out.find("line 30"), std::string::npos);
  EXPECT_NE(Out.find("time"), std::string::npos);
  ASSERT_EQ(run({"annotate", Evprof, "unknown.cc"}), 0) << Err;
  EXPECT_NE(Out.find("no profile data"), std::string::npos);
}

TEST_F(ToolTest, ConvertTauInput) {
  std::string Tau = Dir + "/profile.0.0.0";
  ASSERT_TRUE(writeFile(Tau,
                        "2 templated_functions_MULTI_TIME\n"
                        "\"main()\" 1 1 500 1500 0\n"
                        "\"main() => calc()\" 3 0 1000 1000 0\n")
                  .ok());
  ASSERT_EQ(run({"info", Tau}), 0) << Err;
  EXPECT_NE(Out.find("format:   tau"), std::string::npos);
  ASSERT_EQ(run({"butterfly", Tau, "calc()"}), 0) << Err;
  EXPECT_NE(Out.find("main()"), std::string::npos);
}

TEST_F(ToolTest, OptionWithoutValueFails) {
  EXPECT_EQ(run({"flame", Evprof, "--shape"}), ExitUsageError);
  EXPECT_NE(Err.find("needs a value"), std::string::npos);
}

//===----------------------------------------------------------------------===
// check / lint
//===----------------------------------------------------------------------===

TEST_F(ToolTest, CheckReportsDiagnosticsWithSpans) {
  std::string Query = Dir + "/bad.evql";
  ASSERT_TRUE(
      writeFile(Query, "let unused = 1;\nprint oops + totl(\"t\");\n").ok());
  EXPECT_EQ(run({"check", Query}), ExitDataError);
  EXPECT_NE(Out.find(Query + ":1:1: warning:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("[EVQL009]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("[EVQL002]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("[EVQL003]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("did you mean 'total'?"), std::string::npos) << Out;
  EXPECT_NE(Out.find("2 error(s), 1 warning(s)"), std::string::npos) << Out;
}

TEST_F(ToolTest, CheckCleanProgramSucceeds) {
  EXPECT_EQ(run({"check", "--e", "let x = 1; print x;"}), 0) << Out;
  EXPECT_NE(Out.find("<command-line>: 0 error(s), 0 warning(s)"),
            std::string::npos);
}

TEST_F(ToolTest, CheckWerrorEscalatesWarnings) {
  // An unused binding is a warning: accepted normally, fatal under -Werror.
  EXPECT_EQ(run({"check", "--e", "let unused = 1;"}), 0) << Out;
  EXPECT_EQ(run({"check", "--e", "let unused = 1;", "-Werror"}),
            ExitDataError);
}

TEST_F(ToolTest, CheckValidatesMetricsAgainstProfile) {
  EXPECT_EQ(run({"check", "--e", "print total(\"bogus\");", "--profile",
                 Evprof}),
            ExitDataError);
  EXPECT_NE(Out.find("[EVQL006]"), std::string::npos) << Out;
  EXPECT_EQ(run({"check", "--e", "print total(\"time\");", "--profile",
                 Evprof}),
            0)
      << Out;
}

TEST_F(ToolTest, CheckUsageErrors) {
  EXPECT_EQ(run({"check"}), ExitUsageError);
  EXPECT_EQ(run({"check", Dir + "/missing.evql"}), ExitDataError);
}

TEST_F(ToolTest, LintCleanProfileSucceeds) {
  EXPECT_EQ(run({"lint", Evprof}), 0) << Err;
  EXPECT_NE(Out.find("0 error(s), 0 warning(s)"), std::string::npos);
}

TEST_F(ToolTest, LintExplainsCorruptProfile) {
  // Node 1 referencing node 2 as parent breaks parents-first ordering;
  // the loader refuses it, lint explains it.
  ProtoWriter W;
  W.writeBytes(2, "");
  W.writeBytes(4, "");
  W.writeBytes(5, "");
  ProtoWriter N;
  N.writeVarint(1, 3);
  W.writeBytes(5, N.buffer());
  std::string Corrupt = Dir + "/corrupt.evprof";
  ASSERT_TRUE(writeFile(Corrupt, std::string(EvProfMagic) + W.buffer()).ok());

  EXPECT_EQ(run({"info", Corrupt}), ExitDataError);
  EXPECT_EQ(run({"lint", Corrupt}), ExitDataError);
  EXPECT_NE(Out.find("[EVL105]"), std::string::npos) << Out;
}

TEST_F(ToolTest, LintListRulesAndRuleFilters) {
  EXPECT_EQ(run({"lint", "--list-rules"}), 0);
  EXPECT_NE(Out.find("EVL201"), std::string::npos);
  EXPECT_NE(Out.find("exclusive-exceeds-inclusive"), std::string::npos);

  EXPECT_EQ(run({"lint", Evprof, "--disable", "no-such-rule"}),
            ExitUsageError);
  // Validation goes through the unified registry shared with check and
  // regress, so the message no longer says "lint".
  EXPECT_NE(Err.find("unknown rule"), std::string::npos);
  EXPECT_EQ(run({"lint", Evprof, "--min-severity", "loud"}), ExitUsageError);
  EXPECT_EQ(run({"lint", Evprof, "--min-severity", "warning", "--disable",
                 "unreferenced-frame,zero-metric-subtree"}),
            0)
      << Err;
}

TEST_F(ToolTest, LintAcceptsForeignFormats) {
  // Non-evprof inputs are converted first, then linted as decoded trees.
  EXPECT_EQ(run({"lint", Folded}), 0) << Err;
}
