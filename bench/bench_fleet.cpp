//===- bench/bench_fleet.cpp - Streaming vs batch fleet aggregation -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the fleet-scale aggregation path behind `evtool regress`:
/// streaming N profiles through a CohortAccumulator (O(merged CCT) memory)
/// versus the batch aggregate (which must hold every decoded input plus a
/// dense per-profile matrix), then times the EVL3xx analyzer over two
/// cohorts. Peak RSS is sampled with getrusage after each phase — the
/// streaming phase runs FIRST because ru_maxrss is monotonic, so its
/// sample is not contaminated by the batch blow-up.
///
/// Results merge into BENCH_pipeline.json under the "fleet" key (override
/// with --out=PATH); --smoke shrinks the fleet for the CI smoke test.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "analysis/Aggregate.h"
#include "analysis/FleetAggregate.h"
#include "analysis/Regression.h"
#include "profile/ProfileBuilder.h"
#include "profile/ProfileStore.h"
#include "support/FileIo.h"
#include "support/Rng.h"
#include "workload/FleetWorkload.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

using namespace ev;

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set size so far, in kilobytes (Linux ru_maxrss unit).
int64_t peakRssKb() {
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
  return static_cast<int64_t>(Usage.ru_maxrss);
}

/// One synthetic fleet member: random call paths over a shared function
/// pool, so the merged CCT is much smaller than the sum of the inputs.
Profile makeMember(uint64_t Seed) {
  Rng R(Seed);
  ProfileBuilder B("member-" + std::to_string(Seed));
  MetricId Time = B.addMetric("cpu-time", "nanoseconds");
  MetricId Bytes = B.addMetric("alloc-bytes", "bytes");
  std::vector<FrameId> Pool;
  for (size_t I = 0; I < 48; ++I)
    Pool.push_back(B.functionFrame(
        "fn" + std::to_string(I), "file" + std::to_string(I % 9) + ".cc",
        static_cast<uint32_t>(10 + I), "svc" + std::to_string(I % 4)));
  std::vector<FrameId> Path;
  for (size_t S = 0; S < 120; ++S) {
    Path.clear();
    unsigned Depth = static_cast<unsigned>(R.range(2, 14));
    for (unsigned D = 0; D < Depth; ++D)
      Path.push_back(Pool[R.below(Pool.size())]);
    NodeId Leaf = B.pushPath(Path);
    B.addValue(Leaf, Time, static_cast<double>(R.range(1, 100000)));
    if (R.chance(0.3))
      B.addValue(Leaf, Bytes, static_cast<double>(R.range(1, 1 << 22)));
  }
  return B.take();
}

} // namespace

int main(int argc, char **argv) {
#ifdef EV_BENCH_DEFAULT_OUT
  std::string OutPath = EV_BENCH_DEFAULT_OUT;
#else
  std::string OutPath = "BENCH_pipeline.json";
#endif
  bool Smoke = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(argv[I], "--out=", 6) == 0)
      OutPath = argv[I] + 6;
  }

  const size_t FleetN = Smoke ? 200 : 1000;
  // The batch path is capped: at full fleet size its dense matrix would
  // dominate the host, which is the point being measured, not a useful
  // thing to actually do.
  const size_t BatchN = Smoke ? 32 : 128;

  json::Object Fleet;
  Fleet.set("profiles", static_cast<int64_t>(FleetN));
  Fleet.set("batchProfiles", static_cast<int64_t>(BatchN));

  // Phase 1 (first on purpose, see file comment): stream the whole fleet.
  double T0 = nowMs();
  FleetAggregateOptions Opts;
  Opts.NodeBudget = 1u << 14;
  CohortAccumulator Acc(Opts);
  for (size_t I = 0; I < FleetN; ++I)
    Acc.add(makeMember(1000 + I));
  double StreamMs = nowMs() - T0;
  int64_t StreamRssKb = peakRssKb();
  bench::row("fleet streaming: %zu profiles in %.1f ms, accumulator %.2f MB, "
             "peak RSS %lld KB",
             FleetN, StreamMs,
             static_cast<double>(Acc.approxMemoryBytes()) / (1024.0 * 1024.0),
             static_cast<long long>(StreamRssKb));
  Fleet.set("streamingMs", StreamMs);
  Fleet.set("streamingAccumulatorBytes",
            static_cast<int64_t>(Acc.approxMemoryBytes()));
  Fleet.set("streamingPeakRssKb", StreamRssKb);
  Fleet.set("prunes", static_cast<int64_t>(Acc.pruneCount()));

  // Phase 2: the batch path over BatchN inputs — hold every decoded
  // profile, then run the dense aggregate.
  T0 = nowMs();
  std::vector<Profile> Held;
  std::vector<const Profile *> Inputs;
  size_t HeldBytes = 0;
  for (size_t I = 0; I < BatchN; ++I) {
    Held.push_back(makeMember(1000 + I));
    HeldBytes += Held.back().approxMemoryBytes();
  }
  for (const Profile &P : Held)
    Inputs.push_back(&P);
  AggregateOptions BatchOpts;
  BatchOpts.WithMean = BatchOpts.WithStddev = true;
  AggregatedProfile Batch = aggregate(Inputs, BatchOpts);
  double BatchMs = nowMs() - T0;
  int64_t BatchRssKb = peakRssKb();
  // Held inputs alone already dwarf the accumulator; projected to the full
  // fleet they are the O(N) blow-up streaming exists to avoid.
  int64_t ProjectedBytes =
      static_cast<int64_t>(HeldBytes / BatchN * FleetN);
  bench::row("fleet batch: %zu profiles in %.1f ms, held inputs %.2f MB "
             "(projected %.2f MB at %zu), peak RSS %lld KB",
             BatchN, BatchMs,
             static_cast<double>(HeldBytes) / (1024.0 * 1024.0),
             static_cast<double>(ProjectedBytes) / (1024.0 * 1024.0), FleetN,
             static_cast<long long>(BatchRssKb));
  Fleet.set("batchMs", BatchMs);
  Fleet.set("batchHeldBytes", static_cast<int64_t>(HeldBytes));
  Fleet.set("batchProjectedBytes", ProjectedBytes);
  Fleet.set("batchPeakRssKb", BatchRssKb);
  Fleet.set("batchMergedNodes", static_cast<int64_t>(Batch.merged().nodeCount()));
  Held.clear();

  // Phase 3: the EVL3xx analyzer over the planted fleet workload.
  workload::FleetOptions WOpts;
  WOpts.Replicas = Smoke ? 8 : 32;
  workload::FleetWorkload W = workload::generateFleetWorkload(WOpts);
  size_t M = W.Versions.size();
  CohortAccumulator Base, Test;
  for (const Profile &P : W.Versions[M - 2])
    Base.add(P);
  for (const Profile &P : W.Versions[M - 1])
    Test.add(P);
  T0 = nowMs();
  DiagnosticSet Diags(1000);
  RegressionAnalyzer().analyze(Base, Test, Diags);
  double AnalyzeMs = nowMs() - T0;
  bench::row("fleet analyze: %zu vs %zu replicas -> %zu findings in %.2f ms",
             static_cast<size_t>(Base.profileCount()),
             static_cast<size_t>(Test.profileCount()), Diags.size(),
             AnalyzeMs);
  Fleet.set("analyzeMs", AnalyzeMs);
  Fleet.set("findings", static_cast<int64_t>(Diags.size()));

  // Phase 4: the full fleet through a BUDGETED ProfileStore — every member
  // is retained (spilled as a columnar segment once cold) yet the store's
  // resident bytes never exceed the budget while the cohort streams
  // through the accumulator. This is the out-of-core acceptance check, so
  // a budget violation or a statistics mismatch fails the smoke run.
  {
    ProfileStore Store;
    uint64_t MemberResident;
    {
      // Probe one member's resident footprint to size a budget that holds
      // only a small fraction of the fleet.
      ProfileStore Probe;
      Probe.add(makeMember(1000));
      MemberResident = Probe.stats().ResidentBytes;
    }
    const uint64_t StoreBudget = MemberResident * 20;
    std::string SpillDir =
        "/tmp/evbench_fleet_spill_" + std::to_string(getpid());
    if (!Store.setBudget(StoreBudget, SpillDir).ok()) {
      std::fprintf(stderr, "bench_fleet: cannot budget store at %s\n",
                   SpillDir.c_str());
      return 1;
    }
    T0 = nowMs();
    CohortAccumulator StoreAcc(Opts);
    uint64_t MaxResident = 0;
    std::vector<int64_t> EarlyIds;
    for (size_t I = 0; I < FleetN; ++I) {
      int64_t Id = Store.add(makeMember(1000 + I));
      if (EarlyIds.size() < 8)
        EarlyIds.push_back(Id);
      std::shared_ptr<const ColumnarProfile> C = Store.columnar(Id);
      if (!C) {
        std::fprintf(stderr, "bench_fleet: columnar fault failed for %lld\n",
                     static_cast<long long>(Id));
        return 1;
      }
      StoreAcc.add(*C);
      MaxResident = std::max(MaxResident, Store.stats().ResidentBytes);
    }
    // Revisit the earliest (long-evicted) members: each faults back from
    // its spill segment by mmap, still without breaching the budget.
    for (int64_t Id : EarlyIds) {
      if (!Store.columnar(Id)) {
        std::fprintf(stderr, "bench_fleet: refault failed for %lld\n",
                     static_cast<long long>(Id));
        return 1;
      }
      MaxResident = std::max(MaxResident, Store.stats().ResidentBytes);
    }
    double StoreMs = nowMs() - T0;
    StoreStats S = Store.stats();
    bench::row("fleet store: %zu profiles in %.1f ms, budget %.2f MB, peak "
               "resident %.2f MB, %llu spills, %llu faults",
               FleetN, StoreMs,
               static_cast<double>(StoreBudget) / (1024.0 * 1024.0),
               static_cast<double>(MaxResident) / (1024.0 * 1024.0),
               static_cast<unsigned long long>(S.Spills),
               static_cast<unsigned long long>(S.Faults));
    Fleet.set("storeMs", StoreMs);
    Fleet.set("storeBudgetBytes", static_cast<int64_t>(StoreBudget));
    Fleet.set("storePeakResidentBytes", static_cast<int64_t>(MaxResident));
    Fleet.set("storeSpills", static_cast<int64_t>(S.Spills));
    Fleet.set("storeSpilledBytes", static_cast<int64_t>(S.SpilledBytes));
    Fleet.set("storeEvictions", static_cast<int64_t>(S.Evictions));
    Fleet.set("storeFaults", static_cast<int64_t>(S.Faults));
    Fleet.set("storeSharedStringBytes",
              static_cast<int64_t>(S.SharedStringBytes));
    if (MaxResident > StoreBudget) {
      std::fprintf(stderr,
                   "bench_fleet: store resident %llu exceeded budget %llu\n",
                   static_cast<unsigned long long>(MaxResident),
                   static_cast<unsigned long long>(StoreBudget));
      return 1;
    }
    if (S.Spills == 0) {
      std::fprintf(stderr,
                   "bench_fleet: fleet fit the budget without spilling — "
                   "budget too generous for the acceptance check\n");
      return 1;
    }
    // Streaming from columnar segments must produce the same cohort
    // statistics as streaming the decoded profiles (Phase 1).
    if (StoreAcc.profileCount() != Acc.profileCount() ||
        StoreAcc.inclusiveSumColumn(0)[0] != Acc.inclusiveSumColumn(0)[0]) {
      std::fprintf(stderr, "bench_fleet: columnar cohort diverged\n");
      return 1;
    }
  }

  // Merge under the "fleet" key of the (possibly existing) pipeline
  // report, so one JSON document carries the whole fast-path story.
  json::Object Doc;
  if (Result<std::string> Existing = readFile(OutPath); Existing.ok())
    if (Result<json::Value> Parsed = json::parse(*Existing);
        Parsed.ok() && Parsed->isObject())
      Doc = Parsed->asObject();
  Doc.set("fleet", std::move(Fleet));
  std::string Text = json::Value(std::move(Doc)).dumpPretty();
  Text.push_back('\n');
  if (!writeFile(OutPath, Text).ok()) {
    std::fprintf(stderr, "bench_fleet: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
