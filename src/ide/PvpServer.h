//===- ide/PvpServer.h - Profile Viewer Protocol server -------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Profile Viewer Protocol (PVP): an LSP-inspired protocol that carries
/// EasyView's IDE actions (paper §VI-B). The server owns loaded profiles
/// and serves the editor:
///
/// Mandatory action:
///   pvp/codeLink      {profile, node} -> {file, line, available}
/// Optional actions:
///   pvp/hover         {profile, node} -> {contents}  (all metric values)
///   pvp/codeLens      {profile, file} -> {lenses: [{line, text}]}
///   pvp/summary       {profile} -> {text}            (floating window)
/// Data plane:
///   pvp/open          {name, data | dataBase64} -> {profile, nodes, metrics}
///   pvp/append        {profile, data | dataBase64} -> {profile, nodesAdded,
///                      nodes, generation}  (streams additional .evprof
///                      sections into an open profile; bumps its generation)
///   pvp/close         {profile}
///   pvp/flame         {profile, metric?, shape?, maxRects?} -> {rects,...}
///   pvp/treeTable     {profile, expand?: [node...]} -> {rows}
///   pvp/search        {profile, pattern} -> {matches: [node...]}
///   pvp/histogram     {aggregate, node, metric?} -> {series}
///   pvp/aggregate     {profiles: [id...]} -> {profile}  (unified tree)
///   pvp/diff          {base, test, metric?} -> {profile, tags, text}
///   pvp/query         {profile, program} -> {profile, printed, derived}
///   pvp/transform     {profile, shape} -> {profile}   (materialized)
///   pvp/prune         {profile, metric?, minFraction} -> {profile}
///   pvp/export        {profile, format, metric?} -> {dataBase64, bytes}
///   pvp/butterfly     {profile, function, metric?} -> {callers, callees}
///   pvp/correlated    {profile, kind, select?: [node...]} -> {panes}
/// Live views (docs/PVP.md "Subscriptions and live view deltas"):
///   pvp/subscribe     {profile, view: "flame"|"treeTable", params?} ->
///                      {subscription, profile, generation, view}
///   pvp/ack           {subscription, generation} -> {acked, generation}
///   pvp/unsubscribe   {subscription} -> {removed}
///   notifications pushed server-side (never a response to a request):
///   pvp/viewDelta     {subscription, profile, fromGeneration,
///                      toGeneration, deltaBase64}  (ide/ViewDelta.h codec;
///                      applying it to the last ACKED view reproduces the
///                      current full view byte-identically)
///   pvp/subscriptionEnd {subscription, profile, reason}
/// Introspection (docs/OBSERVABILITY.md):
///   pvp/stats         {} -> {profiles, cachedViews, cacheCapacity,
///                            cacheHits, cacheMisses, cacheEvictions,
///                            cacheShards, cacheRevalidations,
///                            storeProfiles, cacheBytes, storeBudgetBytes,
///                            storeResidentBytes, storeAosBytes,
///                            storeColumnarBytes, storeSharedStringBytes,
///                            storeSpilledBytes, storeSpills,
///                            storeEvictions, storeFaults,
///                            storeSpillFailures}  (cache memory and store
///                            memory attributed separately)
///   pvp/metrics       {includeTimings?} -> {wallTimeMs, monoTimeMs,
///                            counters, gauges, histograms, spans, stats}
///   pvp/selfProfile   {name?, reset?} -> {profile, nodes, spans, bytes,
///                            dataBase64}  (the server's own execution,
///                            folded into a CCT and registered like any
///                            opened profile)
/// Static analysis (batched; see docs/ANALYSIS.md):
///   pvp/diagnostics   {profile?, program?, minSeverity?, disable?,
///                      maxDiagnostics?} -> {diagnostics, errors, warnings,
///                      dropped, truncated}
///   pvp/regressions   {base: id|[id...], test: id|[id...], minSeverity?,
///                      disable?, maxDiagnostics?, relativeMin?,
///                      absoluteMin?, sigma?, nodeBudget?} -> {findings,
///                      errors, warnings, dropped, truncated,
///                      baseProfiles, testProfiles}  (EVL3xx differential
///                      rules over two streamed cohorts; deadline-degrading
///                      like pvp/diagnostics, cacheable keyed by every
///                      cohort member's generation)
///
/// Errors use standard JSON-RPC codes. The server is transport-agnostic:
/// handleMessage() maps one decoded request to one response, and
/// handleWire() speaks Content-Length framing for stdio-style streams.
///
/// Concurrency model (docs/PVP.md "Sessions, scheduling, and
/// cancellation"): one PvpServer is one SESSION — a synchronous engine
/// with no internal locking, safe as long as at most one request runs on
/// it at a time. ide/SessionManager.h provides that guarantee (per-session
/// FIFO strands) while running many sessions in parallel over a SHARED
/// ProfileStore and ViewCache, both thread-safe. A standalone PvpServer
/// simply owns a private store and cache, so the sequential embedding API
/// is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_IDE_PVPSERVER_H
#define EASYVIEW_IDE_PVPSERVER_H

#include "analysis/Aggregate.h"
#include "ide/JsonRpc.h"
#include "ide/ViewCache.h"
#include "profile/Profile.h"
#include "profile/ProfileStore.h"
#include "support/Cancel.h"
#include "support/FileIo.h"
#include "support/Limits.h"

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace ev {

/// Guardrails for one PVP session. Every request runs under these; inputs
/// that exceed them produce JSON-RPC errors (or degraded-but-valid
/// replies), never unbounded work, so a hostile or buggy editor cannot
/// take the session down.
struct ServerLimits {
  /// Decode budgets applied to every profile the session opens.
  DecodeLimits Decode;
  /// Static-analysis budgets applied to every pvp/diagnostics request.
  AnalysisLimits Analysis;
  /// Wire framing guardrails (frame size cap, header cap).
  rpc::FrameReaderOptions Wire;
  /// Largest pvp/open payload (after base64 decoding) accepted.
  size_t MaxOpenBytes = 64u << 20;
  /// Hard ceiling on pvp/flame rect replies; larger maxRects requests are
  /// clamped, not refused.
  size_t MaxFlameRects = 65536;
  /// Hard ceiling on pvp/treeTable rows; larger tables are truncated.
  size_t MaxTreeTableRows = 50000;
  /// Soft per-request deadline. 0 disables deadline checking.
  uint64_t RequestDeadlineMs = 10000;
  /// Retry policy for path-based pvp/open file loads.
  RetryPolicy OpenRetry;
  /// Capacity of the memoized view cache serving pvp/flame, pvp/treeTable,
  /// and pvp/summary. 0 disables caching entirely. Ignored when the
  /// session is constructed over an externally shared cache.
  size_t MaxCachedViews = 128;
  /// Memory budget for the profile store's resident bytes (AoS + columnar;
  /// docs/PERF.md "Out-of-core columnar store"). 0 (the default) disables
  /// budgeting: every profile stays resident, no columnar copies are
  /// built. Non-zero requires SpillDir and turns on LRU spill/evict:
  /// pvp/aggregate and pvp/regressions then read straight from columnar
  /// segments and cold profiles spill to disk.
  uint64_t StoreBudgetBytes = 0;
  /// Directory for spilled column segments; must be set (and writable)
  /// when StoreBudgetBytes is non-zero, otherwise the budget is ignored.
  std::string SpillDir;
  /// Live view subscriptions one session may hold at once; pvp/subscribe
  /// past the cap fails with SubscriptionLimit (-32004).
  size_t MaxSubscriptionsPerSession = 64;
};

class PvpServer {
public:
  PvpServer() : PvpServer(ServerLimits()) {}
  /// Standalone session: owns a private profile store and a private
  /// single-shard view cache of ServerLimits::MaxCachedViews entries.
  explicit PvpServer(ServerLimits Limits);
  /// Session over shared state: profiles and cached views live in \p Store
  /// and \p Cache, which other sessions may share concurrently (both are
  /// thread-safe; this object itself still serves one request at a time).
  PvpServer(ServerLimits Limits, std::shared_ptr<ProfileStore> Store,
            std::shared_ptr<ViewCache> Cache);

  /// Handles one decoded JSON-RPC request; \returns the response payload.
  json::Value handleMessage(const json::Value &Request) {
    return handleMessage(Request, CancelToken());
  }

  /// As above, under a cancellation token: handlers poll \p Cancel at loop
  /// boundaries and a triggered token yields a RequestCancelled (-32800)
  /// error response. A cancelled request never populates the view cache.
  json::Value handleMessage(const json::Value &Request,
                            const CancelToken &Cancel) {
    return handleMessage(Request, Cancel, nullptr);
  }

  /// As above, with a notification sink for server-initiated messages
  /// (pvp/viewDelta, pvp/subscriptionEnd). A pvp/subscribe served under
  /// this call binds \p Notify to the subscription for its whole life, so
  /// the callable must be self-contained (capture shared state by value).
  /// When \p Notify is null, notifications queue internally — drain them
  /// with takeNotifications() (handleWire does so after every message and
  /// appends them, framed, after the response).
  json::Value handleMessage(const json::Value &Request,
                            const CancelToken &Cancel,
                            std::function<void(json::Value)> Notify);

  /// Feeds framed bytes; \returns the framed responses produced (possibly
  /// several, possibly none while a message is incomplete). Corrupt frames
  /// yield error responses and the reader resynchronizes: the wire session
  /// survives any byte stream.
  std::string handleWire(std::string_view Bytes);

  /// Replaces the millisecond clock behind request deadlines (tests inject
  /// a deterministic clock); nullptr restores the steady clock.
  void setClock(std::function<uint64_t()> NowMs);

  const ServerLimits &limits() const { return Limits; }
  /// Wire-reader telemetry (resync and dropped-byte counters).
  const rpc::FrameReader &wireReader() const { return Reader; }

  /// Sweeps every live subscription: for each whose profile generation
  /// moved past the last acked AND last pushed generation, recomputes the
  /// full view (through the shared view cache, exactly like an explicit
  /// re-query) and pushes a pvp/viewDelta notification through the
  /// subscription's sink; subscriptions whose profile is gone get a
  /// pvp/subscriptionEnd and are dropped. Runs automatically after every
  /// handleMessage(); SessionManager::publishAll() runs it on the strand
  /// for cross-session bumps. \returns the number of deltas pushed.
  size_t publishSubscriptions();

  /// Drains notifications produced for null-sink subscriptions.
  std::vector<json::Value> takeNotifications();

  /// Live subscriptions held by this session.
  size_t subscriptionCount() const { return Subs.size(); }

  /// Grants this session addressing rights to \p Id (a profile another
  /// session — or `evtool serve --follow` — registered in the shared
  /// store) without re-registering it.
  void adoptProfile(int64_t Id) { Owned.insert(Id); }

  /// Direct (non-RPC) access used by in-process embedding and tests.
  /// Registers \p P; \returns its id.
  int64_t addProfile(Profile P);
  /// \returns the profile for \p Id (nullptr if unknown to this session).
  /// The pointer stays valid until the profile is closed; concurrent
  /// callers should prefer profileHandle().
  const Profile *profile(int64_t Id) const;
  /// As profile(), but the returned reference keeps the profile alive
  /// independent of a concurrent pvp/close.
  std::shared_ptr<const Profile> profileHandle(int64_t Id) const;
  /// Profiles owned by THIS session (not the whole shared store).
  size_t profileCount() const { return Owned.size(); }

private:
  json::Value dispatch(std::string_view Method, const json::Object &Params,
                       int64_t Id);

  // Method implementations; each returns a result payload or an error
  // string which dispatch() converts into a JSON-RPC error.
  Result<json::Value> doOpen(const json::Object &Params);
  Result<json::Value> doAppend(const json::Object &Params);
  Result<json::Value> doClose(const json::Object &Params);
  Result<json::Value> doSubscribe(const json::Object &Params);
  Result<json::Value> doAck(const json::Object &Params);
  Result<json::Value> doUnsubscribe(const json::Object &Params);
  Result<json::Value> doFlame(const json::Object &Params);
  Result<json::Value> doTreeTable(const json::Object &Params);
  Result<json::Value> doCodeLink(const json::Object &Params);
  Result<json::Value> doHover(const json::Object &Params);
  Result<json::Value> doCodeLens(const json::Object &Params);
  Result<json::Value> doSummary(const json::Object &Params);
  Result<json::Value> doSearch(const json::Object &Params);
  Result<json::Value> doAggregate(const json::Object &Params);
  Result<json::Value> doHistogram(const json::Object &Params);
  Result<json::Value> doDiff(const json::Object &Params);
  Result<json::Value> doQuery(const json::Object &Params);
  Result<json::Value> doTransform(const json::Object &Params);
  Result<json::Value> doPrune(const json::Object &Params);
  Result<json::Value> doExport(const json::Object &Params);
  Result<json::Value> doButterfly(const json::Object &Params);
  Result<json::Value> doCorrelated(const json::Object &Params);
  Result<json::Value> doDiagnostics(const json::Object &Params);
  Result<json::Value> doRegressions(const json::Object &Params);
  Result<json::Value> doStats(const json::Object &Params);
  Result<json::Value> doMetrics(const json::Object &Params);
  Result<json::Value> doSelfProfile(const json::Object &Params);

  /// Resolves the profile id under \p Key to a live profile owned by this
  /// session. The returned shared_ptr keeps the profile alive for the
  /// whole request even if another session closes it concurrently.
  Result<std::shared_ptr<const Profile>>
  lookup(const json::Object &Params, std::string_view Key = "profile") const;

  /// Builds the pvp/regressions cache key: every cohort member's
  /// (id, generation) pair is folded into \p Key, so any member's bump
  /// misses and the stale entry ages out of the LRU. \p Prof / \p Gen
  /// receive the first base member's pair for the cache's per-entry
  /// revalidation. \returns false (leave uncached) when the params are
  /// malformed or any member is not owned by this session.
  bool regressionCacheKey(const json::Object &Params, std::string &Key,
                          int64_t &Prof, uint64_t &Gen) const;

  /// \returns true once the in-flight request ran past its soft deadline.
  bool deadlineExpired() const;

  /// One live view subscription. The server keeps the full view reply the
  /// client last ACKNOWLEDGED (AckedView) so every delta is computed
  /// against a state the client provably holds — an unacked push is
  /// superseded by the next one, which still diffs from AckedView, making
  /// replays idempotent. PushedView is promoted to AckedView by pvp/ack.
  struct Subscription {
    int64_t ProfileId = 0;
    std::string Method;  ///< "pvp/flame" or "pvp/treeTable".
    std::string RowsKey; ///< "rects" or "rows".
    json::Object ViewParams;
    uint64_t AckedGen = 0;
    json::Value AckedView;
    uint64_t PushedGen = 0;
    json::Value PushedView;
    /// Delivery path bound at subscribe time (per-subscriber, so two
    /// connections multiplexed on one session never see each other's
    /// pushes).
    std::function<void(json::Value)> Sink;
  };

  /// Runs \p Method through dispatch() — shared view cache, deadline,
  /// identical reply bytes to an explicit re-query — and unwraps the
  /// result payload from the response envelope.
  Result<json::Value> computeView(const std::string &Method,
                                  const json::Object &ViewParams);
  /// Sends pvp/subscriptionEnd through the subscription's sink.
  void endSubscription(int64_t SubId, const Subscription &S,
                       const std::string &Reason);

  ServerLimits Limits;
  /// Shared (or private, for standalone sessions) profile storage. Ids are
  /// unique across every session on the same store.
  std::shared_ptr<ProfileStore> Store;
  /// Ids this session opened and may address; close removes them here and
  /// retires them from the store.
  std::set<int64_t> Owned;
  std::map<int64_t, AggregatedProfile> Aggregates;
  rpc::FrameReader Reader;
  std::function<uint64_t()> NowMs;
  uint64_t RequestDeadline = 0; ///< Absolute ms; 0 while idle/disabled.
  /// Token of the in-flight request; inert between requests. Handlers and
  /// the analysis kernels they call poll it at loop boundaries.
  CancelToken ActiveCancel;

  /// Notification sink of the in-flight request (null between requests);
  /// pvp/subscribe copies it into the subscription it creates.
  std::function<void(json::Value)> CurrentNotify;
  /// Fallback delivery target when a subscription was created without an
  /// explicit sink; drained by takeNotifications()/handleWire().
  std::vector<json::Value> QueuedNotifications;
  std::map<int64_t, Subscription> Subs;
  int64_t NextSubId = 1;

  // Memoized view cache (ide/ViewCache.h): read-only view replies
  // (pvp/flame, pvp/treeTable, pvp/summary) keyed on (method, profile id,
  // profile generation, request params). Methods that retire or derive
  // state (pvp/close, pvp/query, pvp/transform, pvp/prune) bump the source
  // profile's generation in the store, which orphans every cached view of
  // it; orphans age out of the LRU naturally, and cross-session races are
  // caught by the cache's per-entry generation validation.
  std::shared_ptr<ViewCache> Cache;
};

} // namespace ev

#endif // EASYVIEW_IDE_PVPSERVER_H
