//===- net/NetServer.cpp - Event-loop socket transport for PVP ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "net/NetServer.h"

#include "net/Socket.h"
#include "support/Clock.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ev {
namespace net {

namespace {

/// Handles into the global registry, pinned once (docs/OBSERVABILITY.md,
/// "net.*"). They surface through pvp/metrics like every other metric, so
/// a fleet operator sees transport health next to request latency.
struct NetMetrics {
  telemetry::Counter &Accepted;
  telemetry::Counter &Closed;
  telemetry::Counter &Dropped;
  telemetry::Counter &DropIdle;
  telemetry::Counter &DropBackpressure;
  telemetry::Counter &DropMaxConns;
  telemetry::Counter &DropParse;
  telemetry::Gauge &ActiveGauge;
  telemetry::Counter &BytesIn;
  telemetry::Counter &BytesOut;
  telemetry::Counter &FramesIn;
  telemetry::Counter &FrameErrors;
  telemetry::Counter &WriteErrors;
  telemetry::Histogram &FirstByteUs;
  telemetry::Histogram &FirstFrameUs;

  static NetMetrics &get() {
    telemetry::Registry &R = telemetry::Registry::global();
    static NetMetrics M{R.counter("net.connectionsAccepted"),
                        R.counter("net.connectionsClosed"),
                        R.counter("net.connectionsDropped"),
                        R.counter("net.drop.idleTimeout"),
                        R.counter("net.drop.writeBackpressure"),
                        R.counter("net.drop.maxConnections"),
                        R.counter("net.drop.parseError"),
                        R.gauge("net.connectionsActive"),
                        R.counter("net.bytesIn"),
                        R.counter("net.bytesOut"),
                        R.counter("net.framesIn"),
                        R.counter("net.frameErrors"),
                        R.counter("net.writeErrors"),
                        R.histogram("net.acceptToFirstByteUs"),
                        R.histogram("net.acceptToFirstFrameUs")};
    return M;
  }
};

} // namespace

const char *dropReasonName(DropReason Reason) {
  switch (Reason) {
  case DropReason::IdleTimeout:
    return "idleTimeout";
  case DropReason::WriteBackpressure:
    return "writeBackpressure";
  case DropReason::MaxConnections:
    return "maxConnections";
  case DropReason::ParseError:
    return "parseError";
  }
  return "unknown";
}

void NetServer::ReplyRouter::route(uint64_t ConnId, std::string FramedBytes,
                                   bool Notification) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Closed)
    return; // Loop shut down; the session's reply has nowhere to go.
  Pending.push_back({ConnId, std::move(FramedBytes), Notification});
  if (WakeWriteFd >= 0) {
    char B = 'r';
    // A full pipe means wakes are already pending; the loop will drain
    // Pending regardless, so the byte (and any error) is droppable.
    (void)!::write(WakeWriteFd, &B, 1);
  }
}

NetServer::NetServer(SessionManager &Manager, NetServerOptions Opts)
    : Manager(Manager), Opts(std::move(Opts)),
      Router(std::make_shared<ReplyRouter>()) {
  ignoreSigpipe();
  if (!this->Opts.Log)
    this->Opts.Log = [](const std::string &Line) {
      std::fprintf(stderr, "evtool-net: %s\n", Line.c_str());
    };
}

NetServer::~NetServer() {
  stop();
  waitUntilStopped();
}

Result<bool> NetServer::listenTcp(const std::string &HostPort) {
  if (ListenFd >= 0)
    return makeError("already listening on " + BoundAddr);
  Result<int> Fd = net::listenTcp(HostPort, BoundAddr);
  if (!Fd)
    return makeError(Fd.error());
  ListenFd = *Fd;
  return true;
}

Result<bool> NetServer::listenUnix(const std::string &Path) {
  if (ListenFd >= 0)
    return makeError("already listening on " + BoundAddr);
  Result<int> Fd = net::listenUnix(Path);
  if (!Fd)
    return makeError(Fd.error());
  ListenFd = *Fd;
  BoundAddr = Path;
  UnixPath = Path;
  return true;
}

Result<bool> NetServer::start() {
  if (ListenFd < 0)
    return makeError("start() needs a successful listenTcp()/listenUnix()");
  if (LoopRunning.load(std::memory_order_acquire) || LoopThread.joinable())
    return makeError("server already started");

  int Pipe[2];
  if (pipe(Pipe) != 0)
    return makeError(std::string("pipe: ") + std::strerror(errno));
  WakeReadFd = Pipe[0];
  WakeWriteFd = Pipe[1];
  for (int Fd : Pipe)
    if (Result<bool> NB = setNonBlocking(Fd); !NB) {
      closeSocket(WakeReadFd);
      closeSocket(WakeWriteFd);
      WakeReadFd = WakeWriteFd = -1;
      return makeError(NB.error());
    }
  {
    std::lock_guard<std::mutex> Lock(Router->Mutex);
    Router->WakeWriteFd = WakeWriteFd;
    Router->Closed = false;
  }
  DrainRequested.store(false, std::memory_order_release);
  StopRequested.store(false, std::memory_order_release);
  DrainedCleanly.store(true, std::memory_order_release);
  LoopRunning.store(true, std::memory_order_release);
  LoopThread = std::thread([this] { loopMain(); });
  return true;
}

void NetServer::requestDrain() {
  // Async-signal-safe on purpose: one atomic store plus one pipe write, so
  // SIGINT/SIGTERM handlers may call this directly.
  DrainRequested.store(true, std::memory_order_release);
  if (WakeWriteFd >= 0) {
    char B = 'd';
    (void)!::write(WakeWriteFd, &B, 1);
  }
}

void NetServer::stop() {
  StopRequested.store(true, std::memory_order_release);
  if (WakeWriteFd >= 0) {
    char B = 's';
    (void)!::write(WakeWriteFd, &B, 1);
  }
}

bool NetServer::waitUntilStopped() {
  if (LoopThread.joinable())
    LoopThread.join();
  // The loop has exited (or never started): reclaim the wake pipe and the
  // listener socket file.
  closeSocket(WakeReadFd);
  closeSocket(WakeWriteFd);
  WakeReadFd = WakeWriteFd = -1;
  if (ListenFd >= 0) {
    closeSocket(ListenFd);
    ListenFd = -1;
  }
  if (!UnixPath.empty()) {
    unlink(UnixPath.c_str());
    UnixPath.clear();
  }
  return DrainedCleanly.load(std::memory_order_acquire);
}

void NetServer::log(const std::string &Line) {
  if (Opts.Log)
    Opts.Log(Line);
}

void NetServer::loopMain() {
  NetMetrics &M = NetMetrics::get();
  bool Draining = false;

  for (;;) {
    uint64_t NowMs = monoMillis();

    // Enter drain exactly once: stop accepting, stop reading, let
    // in-flight strand work and reply flushes finish under the deadline.
    if (!Draining && (DrainRequested.load(std::memory_order_acquire) ||
                      StopRequested.load(std::memory_order_acquire))) {
      Draining = true;
      DrainDeadlineAtMs = NowMs + Opts.DrainDeadlineMs;
      if (ListenFd >= 0) {
        closeSocket(ListenFd);
        ListenFd = -1;
      }
      size_t InFlightTotal = 0;
      for (auto &[Id, C] : Conns) {
        C.ReadClosed = true;
        InFlightTotal += C.InFlight;
      }
      log("drain: stopped accepting; " + std::to_string(Conns.size()) +
          " connection(s), " + std::to_string(InFlightTotal) +
          " request(s) in flight, deadline " +
          std::to_string(Opts.DrainDeadlineMs) + "ms");
    }

    routeReplies(NowMs);

    // Retire connections that are finished: read side closed (peer EOF or
    // drain), no request in flight, every reply flushed.
    for (auto &[Id, C] : Conns)
      if (C.Fd >= 0 && C.ReadClosed && C.InFlight == 0 && C.Outbox.empty())
        closeConnection(C, "done");

    // Sweep closed entries before building the poll set.
    for (auto It = Conns.begin(); It != Conns.end();)
      It = It->second.Fd < 0 ? Conns.erase(It) : ++It;

    if (StopRequested.load(std::memory_order_acquire) ||
        (Draining && NowMs >= DrainDeadlineAtMs)) {
      if (!Conns.empty()) {
        DrainedCleanly.store(false, std::memory_order_release);
        log("drain: deadline exceeded; force-closing " +
            std::to_string(Conns.size()) + " connection(s)");
        for (auto &[Id, C] : Conns)
          closeConnection(C, "force-closed");
        Conns.clear();
      }
      break;
    }
    if (Draining && Conns.empty())
      break; // Clean drain: everything finished inside the deadline.

    // Poll set: wake pipe, listener (while accepting), every connection.
    std::vector<pollfd> Fds;
    std::vector<uint64_t> FdConn;
    Fds.push_back({WakeReadFd, POLLIN, 0});
    size_t Base = 1;
    if (!Draining && ListenFd >= 0) {
      Fds.push_back({ListenFd, POLLIN, 0});
      Base = 2;
    }
    for (auto &[Id, C] : Conns) {
      short Events = 0;
      if (!C.ReadClosed)
        Events |= POLLIN;
      if (!C.Outbox.empty())
        Events |= POLLOUT;
      Fds.push_back({C.Fd, Events, 0});
      FdConn.push_back(Id);
    }

    // Sleep until the nearest deadline (drain, idle, or frame-completion),
    // capped so bookkeeping stays fresh even under clock oddities.
    uint64_t NextDeadline = UINT64_MAX;
    if (Draining)
      NextDeadline = DrainDeadlineAtMs;
    for (auto &[Id, C] : Conns) {
      if (!C.ReadClosed && Opts.FrameTimeoutMs && C.PartialSinceMs)
        NextDeadline =
            std::min(NextDeadline, C.PartialSinceMs + Opts.FrameTimeoutMs);
      if (!C.ReadClosed && Opts.IdleTimeoutMs && C.InFlight == 0 &&
          C.Outbox.empty())
        NextDeadline =
            std::min(NextDeadline, C.LastActivityMs + Opts.IdleTimeoutMs);
    }
    int Timeout = 500;
    if (NextDeadline != UINT64_MAX)
      Timeout = NextDeadline <= NowMs
                    ? 0
                    : static_cast<int>(
                          std::min<uint64_t>(NextDeadline - NowMs, 500));

    int Ready = ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()), Timeout);
    NowMs = monoMillis();
    if (Ready < 0 && errno != EINTR) {
      log(std::string("poll failed: ") + std::strerror(errno) +
          "; shutting down");
      StopRequested.store(true, std::memory_order_release);
      continue;
    }

    if (Fds[0].revents & POLLIN) {
      char Buf[256];
      while (::read(WakeReadFd, Buf, sizeof(Buf)) > 0) {
      }
    }
    if (Base == 2 && (Fds[1].revents & POLLIN))
      acceptPending(NowMs);

    for (size_t I = Base; I < Fds.size(); ++I) {
      auto It = Conns.find(FdConn[I - Base]);
      if (It == Conns.end())
        continue;
      Connection &C = It->second;
      if (C.Fd >= 0 && (Fds[I].revents & POLLOUT))
        flushTo(C, NowMs);
      if (C.Fd >= 0 && (Fds[I].revents & POLLIN))
        readFrom(C, NowMs);
      if (C.Fd >= 0 && (Fds[I].revents & (POLLERR | POLLNVAL)))
        closeConnection(C, "socket error");
      // A pure hangup on a connection we no longer read from (POLLIN
      // cases see the EOF via read()).
      if (C.Fd >= 0 && (Fds[I].revents & POLLHUP) && C.ReadClosed &&
          C.Outbox.empty() && C.InFlight == 0)
        closeConnection(C, "hangup");
    }

    enforceTimeouts(NowMs);
  }

  // Shut the router: completion callbacks still in flight inside the
  // SessionManager hold it by shared_ptr and will now drop their replies
  // instead of touching the dead wake pipe.
  {
    std::lock_guard<std::mutex> Lock(Router->Mutex);
    Router->Closed = true;
    Router->WakeWriteFd = -1;
    Router->Pending.clear();
  }
  if (ListenFd >= 0) {
    closeSocket(ListenFd);
    ListenFd = -1;
  }
  M.ActiveGauge.set(0);
  Active.store(0, std::memory_order_relaxed);
  LoopRunning.store(false, std::memory_order_release);
}

void NetServer::acceptPending(uint64_t NowMs) {
  NetMetrics &M = NetMetrics::get();
  for (;;) {
    Result<int> A = acceptConnection(ListenFd);
    if (!A) {
      log("accept failed: " + A.error());
      return;
    }
    if (*A < 0)
      return; // Nothing pending.
    int Fd = *A;
    M.Accepted.add();
    AcceptedTotal.fetch_add(1, std::memory_order_relaxed);

    if (Conns.size() >= Opts.MaxConnections) {
      // Shed load loudly: a clean JSON-RPC error (best effort — the
      // socket buffer of a fresh connection always has room for one small
      // frame) and an attributed drop, instead of a mystery hang.
      std::string Frame = rpc::frame(rpc::makeErrorResponse(
          0, rpc::ServerOverloaded,
          "server at its connection cap (" +
              std::to_string(Opts.MaxConnections) + ")"));
      (void)sendNoSignal(Fd, Frame.data(), Frame.size());
      closeSocket(Fd);
      M.Dropped.add();
      M.DropMaxConns.add();
      DroppedTotal.fetch_add(1, std::memory_order_relaxed);
      log("connection shed: at the " + std::to_string(Opts.MaxConnections) +
          "-connection cap (maxConnections)");
      continue;
    }

    if (Opts.SendBufferBytes > 0)
      setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Opts.SendBufferBytes,
                 sizeof(Opts.SendBufferBytes));

    uint64_t Id = ++NextConnId;
    Connection &C = Conns[Id];
    C.Fd = Fd;
    C.Id = Id;
    C.Session = NextSession;
    NextSession = (NextSession + 1) % std::max(1u, Manager.sessionCount());
    C.Reader = rpc::FrameReader(Opts.Wire);
    C.AcceptUs = monoMicros();
    C.LastActivityMs = NowMs;
    refreshActive();
  }
}

void NetServer::readFrom(Connection &C, uint64_t NowMs) {
  NetMetrics &M = NetMetrics::get();
  thread_local std::string Scratch;
  Scratch.resize(std::max<size_t>(Opts.ReadChunkBytes, 512));

  size_t PassBytes = 0;
  for (;;) {
    ssize_t N = ::read(C.Fd, Scratch.data(), Scratch.size());
    if (N > 0) {
      M.BytesIn.add(static_cast<uint64_t>(N));
      C.LastActivityMs = NowMs;
      if (!C.SawFirstByte) {
        C.SawFirstByte = true;
        M.FirstByteUs.record(monoMicros() - C.AcceptUs);
      }
      C.Reader.feed(std::string_view(Scratch.data(), static_cast<size_t>(N)));
      for (;;) {
        std::optional<json::Value> Msg = C.Reader.poll();
        // Corrupt frames cost one error response each; the reader has
        // already resynchronized (same contract as handleWire).
        for (rpc::FrameError &E : C.Reader.takeErrors()) {
          M.FrameErrors.add();
          ++C.FrameErrors;
          if (!enqueueReply(
                  C, rpc::frame(rpc::makeErrorResponse(0, E.Code, E.Message))))
            return; // Dropped for backpressure.
        }
        if (!Msg)
          break;
        M.FramesIn.add();
        if (!C.SawFirstFrame) {
          C.SawFirstFrame = true;
          M.FirstFrameUs.record(monoMicros() - C.AcceptUs);
        }
        submitFrame(C, std::move(*Msg));
      }
      if (C.FrameErrors > Opts.MaxFrameErrors) {
        dropConnection(C, DropReason::ParseError,
                       std::to_string(C.FrameErrors) +
                           " corrupt frames (cap " +
                           std::to_string(Opts.MaxFrameErrors) + ")");
        return;
      }
      // An incomplete frame sitting in the reader starts (or continues)
      // the slow-loris clock; a clean boundary resets it.
      if (C.Reader.bufferedBytes() > 0) {
        if (C.PartialSinceMs == 0)
          C.PartialSinceMs = NowMs;
      } else {
        C.PartialSinceMs = 0;
      }
      PassBytes += static_cast<size_t>(N);
      if (PassBytes >= 4 * Opts.ReadChunkBytes)
        return; // Fairness: give other connections the loop back.
      continue;
    }
    if (N == 0) {
      // EOF. Keep the connection while replies are still owed (clients
      // may shutdown(SHUT_WR) and read the tail); the loop retires it
      // once in-flight work and the outbox empty out.
      C.ReadClosed = true;
      return;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    closeConnection(C, std::string("read error: ") + std::strerror(errno));
    return;
  }
}

void NetServer::flushTo(Connection &C, uint64_t NowMs) {
  NetMetrics &M = NetMetrics::get();
  while (!C.Outbox.empty()) {
    const std::string &Front = C.Outbox.front();
    ssize_t N = sendNoSignal(C.Fd, Front.data() + C.FrontSent,
                             Front.size() - C.FrontSent);
    if (N > 0) {
      M.BytesOut.add(static_cast<uint64_t>(N));
      C.FrontSent += static_cast<size_t>(N);
      C.LastActivityMs = NowMs;
      if (C.FrontSent == Front.size()) {
        C.OutboxBytes -= Front.size();
        C.FrontSent = 0;
        C.Outbox.pop_front();
      }
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return; // Kernel buffer full; POLLOUT will resume the flush.
    // EPIPE/ECONNRESET and friends: the peer vanished mid-reply. Thanks
    // to sendNoSignal()/ignoreSigpipe() this is an errno, not a signal.
    M.WriteErrors.add();
    closeConnection(C, std::string("write error: ") + std::strerror(errno));
    return;
  }
}

void NetServer::routeReplies(uint64_t NowMs) {
  std::vector<RoutedReply> Batch;
  {
    std::lock_guard<std::mutex> Lock(Router->Mutex);
    Batch.swap(Router->Pending);
  }
  for (RoutedReply &R : Batch) {
    auto It = Conns.find(R.ConnId);
    if (It == Conns.end() || It->second.Fd < 0)
      continue; // Connection already gone; its reply dies here.
    Connection &C = It->second;
    // Pushes are not paired with a submitted request; decrementing here
    // would let a flood of notifications mask a genuinely in-flight
    // request from the idle-timeout and drain logic.
    if (!R.Notification && C.InFlight > 0)
      --C.InFlight;
    if (!enqueueReply(C, std::move(R.FramedBytes)))
      continue; // Dropped for backpressure.
    // Opportunistic flush: the common reply fits the socket buffer, so
    // most responses leave without waiting for a POLLOUT round trip.
    flushTo(C, NowMs);
  }
}

void NetServer::submitFrame(Connection &C, json::Value Message) {
  ++C.InFlight;
  std::shared_ptr<ReplyRouter> R = Router;
  uint64_t ConnId = C.Id;
  // The notify channel is self-contained (router by shared_ptr, id by
  // value): the server binds it into any subscription this request
  // creates, and pushes keep flowing long after this frame's reply —
  // through the SAME outbox as responses, so MaxWriteQueueBytes and the
  // drop accounting govern a flooded subscriber exactly like a slow
  // reader (net.drop.writeBackpressure).
  Manager.submitAsync(
      C.Session, std::move(Message),
      [R, ConnId](json::Value Response) {
        R->route(ConnId, rpc::frame(Response));
      },
      [R, ConnId](json::Value Notification) {
        R->route(ConnId, rpc::frame(Notification), /*Notification=*/true);
      });
}

bool NetServer::enqueueReply(Connection &C, std::string FramedBytes) {
  C.OutboxBytes += FramedBytes.size();
  C.Outbox.push_back(std::move(FramedBytes));
  if (C.OutboxBytes > Opts.MaxWriteQueueBytes) {
    dropConnection(C, DropReason::WriteBackpressure,
                   std::to_string(C.OutboxBytes) +
                       " undelivered reply bytes (cap " +
                       std::to_string(Opts.MaxWriteQueueBytes) + ")");
    return false;
  }
  return true;
}

void NetServer::enforceTimeouts(uint64_t NowMs) {
  for (auto &[Id, C] : Conns) {
    if (C.Fd < 0 || C.ReadClosed)
      continue;
    if (Opts.FrameTimeoutMs && C.PartialSinceMs &&
        NowMs - C.PartialSinceMs >= Opts.FrameTimeoutMs) {
      dropConnection(C, DropReason::IdleTimeout,
                     "frame incomplete after " +
                         std::to_string(NowMs - C.PartialSinceMs) +
                         "ms (slow-loris)");
      continue;
    }
    if (Opts.IdleTimeoutMs && C.InFlight == 0 && C.Outbox.empty() &&
        NowMs - C.LastActivityMs >= Opts.IdleTimeoutMs)
      dropConnection(C, DropReason::IdleTimeout,
                     "idle for " + std::to_string(NowMs - C.LastActivityMs) +
                         "ms");
  }
}

void NetServer::dropConnection(Connection &C, DropReason Reason,
                               const std::string &Detail) {
  NetMetrics &M = NetMetrics::get();
  M.Dropped.add();
  switch (Reason) {
  case DropReason::IdleTimeout:
    M.DropIdle.add();
    break;
  case DropReason::WriteBackpressure:
    M.DropBackpressure.add();
    break;
  case DropReason::MaxConnections:
    M.DropMaxConns.add();
    break;
  case DropReason::ParseError:
    M.DropParse.add();
    break;
  }
  DroppedTotal.fetch_add(1, std::memory_order_relaxed);
  log("connection #" + std::to_string(C.Id) + " dropped (" +
      dropReasonName(Reason) + "): " + Detail);
  closeSocket(C.Fd);
  C.Fd = -1;
  refreshActive();
}

void NetServer::closeConnection(Connection &C, const std::string &Why) {
  (void)Why;
  NetMetrics &M = NetMetrics::get();
  M.Closed.add();
  closeSocket(C.Fd);
  C.Fd = -1;
  refreshActive();
}

void NetServer::refreshActive() {
  // Dead entries linger in Conns until the loop's sweep, so the live count
  // must skip them: several connections can retire in one iteration, and
  // size()-based accounting would leave the gauge stuck above zero.
  size_t Live = 0;
  for (const auto &[Id, C] : Conns)
    if (C.Fd >= 0)
      ++Live;
  Active.store(Live, std::memory_order_relaxed);
  NetMetrics::get().ActiveGauge.set(static_cast<int64_t>(Live));
}

} // namespace net
} // namespace ev
