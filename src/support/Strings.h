//===- support/Strings.h - Small string utilities -------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the text-format converters (perf script,
/// collapsed stacks) and the renderers: splitting, trimming, numeric
/// formatting, and HTML/XML escaping.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_STRINGS_H
#define EASYVIEW_SUPPORT_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace ev {

/// Splits \p Text on \p Separator. Empty pieces are kept so that column
/// positions stay aligned.
std::vector<std::string_view> splitString(std::string_view Text,
                                          char Separator);

/// Splits \p Text into lines, treating both "\n" and "\r\n" as terminators.
std::vector<std::string_view> splitLines(std::string_view Text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// \returns true when \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// \returns true when \p Text ends with \p Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

/// Parses a non-negative decimal integer; \returns false on any non-digit.
bool parseUnsigned(std::string_view Text, uint64_t &Value);

/// Parses a floating-point number; \returns false when \p Text is not fully
/// consumed.
bool parseDouble(std::string_view Text, double &Value);

/// Formats \p Value with \p Digits fractional digits ("12.34").
std::string formatDouble(double Value, int Digits = 2);

/// Formats \p Bytes in a human-friendly unit ("1.5 MB").
std::string formatBytes(double Bytes);

/// Formats a metric value with its unit ("12.3 ms", "4.0 GB").
std::string formatMetric(double Value, std::string_view Unit);

/// Escapes &, <, >, and " for embedding in XML/HTML/SVG text.
std::string escapeXml(std::string_view Text);

/// Percent-style escape of a string for JSON output (quotes and control
/// characters).
std::string escapeJson(std::string_view Text);

/// Standard base64 (RFC 4648) with padding; used to move binary profile
/// bytes through JSON-RPC.
std::string base64Encode(std::string_view Bytes);

/// Decodes base64; \returns false on invalid characters or padding.
bool base64Decode(std::string_view Text, std::string &Out);

} // namespace ev

#endif // EASYVIEW_SUPPORT_STRINGS_H
