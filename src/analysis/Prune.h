//===- analysis/Prune.h - Node pruning and filtering ----------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pruning of insignificant tree nodes (paper §V-A(a)) and the node-elision
/// customization hook (§V-B "users can elide any nodes in the tree that are
/// not of interest"). Both operations conserve metric totals by folding the
/// removed exclusive values into the surviving ancestor.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_PRUNE_H
#define EASYVIEW_ANALYSIS_PRUNE_H

#include "profile/Profile.h"

#include <functional>

namespace ev {

/// Removes every subtree whose inclusive value of \p Metric is below
/// \p MinFraction of the metric total. The pruned inclusive value folds
/// into the parent's exclusive value, so the total is conserved.
Profile pruneByFraction(const Profile &P, MetricId Metric,
                        double MinFraction);

/// Rebuilds the profile keeping only nodes for which \p Keep returns true
/// (the root always survives). Children of an elided node are re-attached
/// to its nearest surviving ancestor; the elided node's exclusive values
/// fold into that ancestor.
Profile filterNodes(const Profile &P,
                    const std::function<bool(const Profile &, NodeId)> &Keep);

} // namespace ev

#endif // EASYVIEW_ANALYSIS_PRUNE_H
