//===- userstudy/UserSim.h - Simulated user studies ------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulation of the paper's user studies (§VII-D). Humans cannot be rerun
/// offline, so this module models a user as a sequence of interactions
/// whose COUNTS are derived from the real tool data models (how many rows
/// a tree table needs expanded, how many stacks a text report forces one
/// to read, whether a bottom-up view exists at all) and whose per-action
/// costs encode the paper's causal explanations:
///
///  - GoLand lacks bottom-up flame graphs; its bottom-up tree table takes
///    longer to learn and navigate (Task II: ~1 hour vs ~10 min).
///  - Default PProf has no bottom-up view at all — Task II degenerates to
///    manual analysis (>3 hours).
///  - Neither baseline analyzes multiple profiles; Task III requires
///    writing scripts (>3 hours, recorded as not completed).
///
/// Tasks run against real workload profiles through the real EasyView
/// code paths, so the simulated EasyView numbers move if the library
/// regresses.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_USERSTUDY_USERSIM_H
#define EASYVIEW_USERSTUDY_USERSIM_H

#include <cstdint>
#include <string>
#include <vector>

namespace ev {
namespace userstudy {

enum class Tool : uint8_t { EasyView, Goland, Pprof };
enum class Task : uint8_t {
  HotspotAnalysis,   ///< Task I: hotspots in calling contexts (top-down).
  BottomUpAnalysis,  ///< Task II: hot allocations/GC/locks + callers.
  MultiProfileLeak,  ///< Task III: leak across many snapshots.
};

std::string_view toolName(Tool T);
std::string_view taskName(Task T);

/// Outcome of one simulated participant on one task.
struct TaskOutcome {
  double Minutes = 0.0;
  bool Completed = false; ///< False when the 180-minute budget ran out.
};

/// Group statistics (7 participants per group, as in the paper).
struct GroupOutcome {
  double MeanMinutes = 0.0;
  size_t Completed = 0;
  size_t Participants = 0;
};

struct UserStudyOptions {
  uint64_t Seed = 2024;
  size_t ParticipantsPerGroup = 7;
  double BudgetMinutes = 180.0; ///< The paper's 3-hour cutoff.
};

/// Runs one participant (skill drawn from the mixed newbie/expert pool).
TaskOutcome simulateParticipant(Tool T, Task K, uint64_t Seed,
                                double BudgetMinutes = 180.0);

/// Runs a full control-group study: every (tool, task) pair.
std::vector<std::vector<GroupOutcome>> // [task][tool]
runControlGroups(const UserStudyOptions &Options = {});

/// Fig. 8: per-view effectiveness votes from the survey cohort (n=26).
struct ViewVote {
  std::string View;
  double Percent = 0.0;
};
std::vector<ViewVote> simulateViewSurvey(uint64_t Seed = 2024,
                                         size_t Participants = 26);

} // namespace userstudy
} // namespace ev

#endif // EASYVIEW_USERSTUDY_USERSIM_H
