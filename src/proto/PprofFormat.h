//===- proto/PprofFormat.h - pprof profile.proto codec --------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader and writer for Google pprof's profile.proto, implemented directly
/// on the protobuf wire format. The paper treats the pprof format as "a
/// subset of EasyView representation in Protocol Buffer" (§VII-A method 3);
/// this codec is what the PProf converter, the Fig. 5 response-time
/// benchmark, and the synthetic workload generators exchange bytes through.
///
/// Field numbers follow github.com/google/pprof/proto/profile.proto.
/// Sample location ids are leaf-first, as pprof specifies.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_PROTO_PPROFFORMAT_H
#define EASYVIEW_PROTO_PPROFFORMAT_H

#include "support/Result.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ev {
namespace pprof {

/// message ValueType { int64 type = 1; int64 unit = 2; } (string ids)
struct ValueType {
  int64_t Type = 0;
  int64_t Unit = 0;
};

/// message Label { int64 key=1; int64 str=2; int64 num=3; int64 num_unit=4; }
struct Label {
  int64_t Key = 0;
  int64_t Str = 0;
  int64_t Num = 0;
  int64_t NumUnit = 0;
};

/// message Sample { repeated uint64 location_id=1; repeated int64 value=2;
///                  repeated Label label=3; } Location ids are leaf-first.
struct Sample {
  std::vector<uint64_t> LocationIds;
  std::vector<int64_t> Values;
  std::vector<Label> Labels;
};

/// message Mapping (only the fields the viewers consume).
struct Mapping {
  uint64_t Id = 0;
  uint64_t MemoryStart = 0;
  uint64_t MemoryLimit = 0;
  uint64_t FileOffset = 0;
  int64_t Filename = 0; ///< string id
  int64_t BuildId = 0;  ///< string id
};

/// message Line { uint64 function_id = 1; int64 line = 2; }
struct Line {
  uint64_t FunctionId = 0;
  int64_t LineNumber = 0;
};

/// message Location { uint64 id=1; uint64 mapping_id=2; uint64 address=3;
///                    repeated Line line=4; }
struct Location {
  uint64_t Id = 0;
  uint64_t MappingId = 0;
  uint64_t Address = 0;
  std::vector<Line> Lines; ///< innermost (leaf inline frame) first.
};

/// message Function { uint64 id=1; int64 name=2; int64 system_name=3;
///                    int64 filename=4; int64 start_line=5; }
struct Function {
  uint64_t Id = 0;
  int64_t Name = 0;
  int64_t SystemName = 0;
  int64_t Filename = 0;
  int64_t StartLine = 0;
};

/// The top-level pprof Profile message.
struct PprofProfile {
  std::vector<ValueType> SampleTypes;
  std::vector<Sample> Samples;
  std::vector<Mapping> Mappings;
  std::vector<Location> Locations;
  std::vector<Function> Functions;
  std::vector<std::string> StringTable; ///< [0] must be "".
  int64_t TimeNanos = 0;
  int64_t DurationNanos = 0;
  ValueType PeriodType;
  int64_t Period = 0;
  int64_t DefaultSampleType = 0;

  /// Interns \p Text into StringTable, returning its index.
  int64_t intern(std::string_view Text);

  /// \returns the text at index \p Id; empty when out of range.
  std::string_view text(int64_t Id) const;
};

/// Serializes \p P to profile.proto bytes.
std::string write(const PprofProfile &P);

/// Parses profile.proto bytes.
Result<PprofProfile> read(std::string_view Bytes);

} // namespace pprof
} // namespace ev

#endif // EASYVIEW_PROTO_PPROFFORMAT_H
