//===- analysis/Diff.h - Profile differencing -----------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differentiation operation (paper §V-A(c) and Fig. 3): quantifies the
/// difference between two profiles P1 (base) and P2 (test). The result is a
/// merged tree where every context carries one of four tags:
///
///   [A] added   — context exists in P2 but not in P1
///   [D] deleted — context exists in P1 but not in P2
///   [+]         — context in both, metric larger in P2
///   [-]         — context in both, metric smaller in P2
///
/// Two contexts are differentiable when all their ancestors are
/// differentiable (matched by textual frame identity). Unlike the prior
/// color-only differential flame graphs, the result quantifies the delta
/// per node and supports all three tree shapes: apply bottomUpTree /
/// flatTree to the inputs before diffing.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_ANALYSIS_DIFF_H
#define EASYVIEW_ANALYSIS_DIFF_H

#include "profile/Profile.h"
#include "support/Cancel.h"

#include <string_view>
#include <vector>

namespace ev {

/// Per-context classification in a differential profile.
enum class DiffTag : uint8_t {
  Common,    ///< Present in both with (near-)equal metric.
  Added,     ///< [A] only in the test profile.
  Deleted,   ///< [D] only in the base profile.
  Increased, ///< [+] in both, larger in test.
  Decreased, ///< [-] in both, smaller in test.
};

/// \returns the bracketed tag string used by the differential views.
std::string_view diffTagLabel(DiffTag Tag);

/// The differential profile.
struct DiffResult {
  /// Unified tree. Metric columns (exclusive): "base", "test", "delta"
  /// (test - base) for the chosen metric.
  Profile Merged;
  MetricId BaseMetric = 0;
  MetricId TestMetric = 0;
  MetricId DeltaMetric = 0;
  /// Per merged-node tag, indexed by NodeId in Merged. Tags classify by
  /// INCLUSIVE values, matching what a differential flame graph displays.
  std::vector<DiffTag> Tags;
  /// Per merged-node inclusive values.
  std::vector<double> BaseInclusive;
  std::vector<double> TestInclusive;
};

/// Diffs \p Metric between \p Base and \p Test. \p RelativeEpsilon bounds
/// the relative difference below which a context counts as unchanged.
/// \p Cancel is checked at merge-loop boundaries; a tripped token raises
/// CancelledException.
DiffResult diffProfiles(const Profile &Base, const Profile &Test,
                        MetricId Metric, double RelativeEpsilon = 1e-9,
                        const CancelToken &Cancel = {});

} // namespace ev

#endif // EASYVIEW_ANALYSIS_DIFF_H
