//===- tests/vm_test.cpp - EVQL bytecode VM differential suite ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter is the oracle for the EVQL bytecode VM: for every
/// program the compiler accepts, runCompiled() must produce byte-identical
/// QueryOutput — transformed profile bytes, printed lines, derived metric
/// names, and error messages with their line numbers — at any EV_THREADS
/// setting. This suite drives both engines over a table-driven corpus
/// (every builtin, every operator family, every diagnostic path), pins the
/// interpreter-fallback rule for programs the compiler rejects, checks
/// thread-count byte-identity, exercises the guarded depth column and the
/// recursion bounds, and covers the ProgramCache (LRU behavior plus
/// generation-keyed invalidation through pvp/query and pvp/append).
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "analysis/MetricEngine.h"
#include "ide/MockIde.h"
#include "profile/Columnar.h"
#include "profile/ProfileBuilder.h"
#include "proto/EvProf.h"
#include "query/Compiler.h"
#include "query/Interpreter.h"
#include "query/Parser.h"
#include "query/Vm.h"
#include "support/Strings.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace ev {
namespace {

/// Everything an engine produced, in one string, so "byte-identical" is a
/// single comparison: serialized result profile + printed lines + derived
/// metric names.
std::string fingerprint(const evql::QueryOutput &O) {
  std::string S = writeEvProf(O.Result);
  for (const std::string &L : O.Printed) {
    S += "\nP:";
    S += L;
  }
  for (const std::string &D : O.DerivedMetrics) {
    S += "\nD:";
    S += D;
  }
  return S;
}

/// Runs \p Src through the interpreter and the VM and asserts identical
/// outcomes: same ok/error state, identical error strings, identical
/// output bytes. Also checks runProgramAuto (the engine entry point)
/// against the interpreter, which covers the fallback path when the
/// compiler rejects the program.
void expectEnginesAgree(const Profile &P, const std::string &Src,
                        const AnalysisLimits &Limits = AnalysisLimits()) {
  SCOPED_TRACE("program: " + Src);
  Result<evql::QueryOutput> I = evql::runProgram(P, Src, Limits);
  Result<evql::QueryOutput> A = evql::runProgramAuto(P, Src, Limits);
  ASSERT_EQ(I.ok(), A.ok()) << (I ? A.error() : I.error());
  if (!I) {
    EXPECT_EQ(I.error(), A.error());
  } else {
    EXPECT_EQ(fingerprint(*I), fingerprint(*A));
  }

  // When the compiler accepts the program, also pin runCompiled directly.
  Result<evql::Program> Prog = evql::parseProgram(Src);
  if (!Prog)
    return; // Parse errors surface identically through both entry points.
  std::shared_ptr<const evql::CompiledProgram> C =
      evql::compileProgram(*Prog, Limits);
  if (!C)
    return;
  Result<evql::QueryOutput> V = evql::runCompiled(P, *C);
  ASSERT_EQ(I.ok(), V.ok()) << (I ? V.error() : I.error());
  if (!I)
    EXPECT_EQ(I.error(), V.error());
  else
    EXPECT_EQ(fingerprint(*I), fingerprint(*V));
}

/// Programs the compiler must accept (no interpreter fallback): asserts
/// compilation succeeds, then engine agreement.
void expectCompiledAgree(const Profile &P, const std::string &Src) {
  Result<evql::Program> Prog = evql::parseProgram(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.error() << "\nprogram: " << Src;
  EXPECT_NE(evql::compileProgram(*Prog, AnalysisLimits()), nullptr)
      << "compiler rejected: " << Src;
  expectEnginesAgree(P, Src);
}

TEST(EvqlDifferential, BuiltinsAndOperators) {
  Profile P = test::makeFixedProfile();
  const char *Corpus[] = {
      // Profile-level builtins and plain prints.
      "print total(\"time\");",
      "print nodecount();",
      "print total(\"time\") / nodecount();",
      // Metric family over nodes.
      "derive a = metric(\"time\");",
      "derive b = exclusive(\"time\") + inclusive(\"time\");",
      "derive c = share(\"time\") * 100;",
      // Topology intrinsics.
      "derive d = depth() + nchildren() * 2 - (isleaf() ? 1 : 0);",
      "keep when hasancestor(\"compute\");",
      "prune when hasancestor(\"nosuchframe\");",
      // Frame attribute builtins in string expressions.
      "prune when name() == \"memcpy\";",
      "keep when contains(file(), \"comp\") || module() == \"libc.so\";",
      "prune when startswith(name(), \"par\") && line() > 5;",
      "keep when endswith(kind(), \"n\") || isleaf();",
      "derive e = parentname() == \"compute\" ? metric(\"time\") : 0 - 1;",
      // Pure math builtins, with both const and node-varying operands.
      "derive f = min(metric(\"time\"), 30) + max(depth(), 2) + "
      "abs(0 - metric(\"time\")) + ratio(metric(\"time\"), 7);",
      "derive g = log(metric(\"time\") + 1) + sqrt(metric(\"time\")) + "
      "floor(share(\"time\") * 10) + ceil(share(\"time\") * 10);",
      "print min(3, 4); print max(3, 4); print ratio(1, 4); "
      "print abs(0 - 2.5); print log(1); print sqrt(9); "
      "print floor(1.9); print ceil(1.1);",
      // Let bindings, constant propagation, guarded div/mod.
      "let k = 3; derive h = metric(\"time\") % k;",
      "let a = 2; let b = a * 3; derive z = metric(\"time\") * b;",
      "print 1 / 0; print 5 % 0;",
      "let s = str(42); print s;",
      "let t = total(\"time\"); print t > 50 ? str(t) : \"low\";",
      // String builtins and concatenation.
      "print \"ab\" + \"cd\";",
      "print str(1.5); print str(7); print fmt(3.14159, 2);",
      "print contains(\"haystack\", \"ays\"); "
      "print startswith(\"abc\", \"ab\"); print endswith(\"abc\", \"bc\");",
      // Comparisons, both numeric and string, plus mixed ==/!=.
      "print 1 < 2; print 2 <= 2; print 3 > 4; print 4 >= 4; "
      "print 1 == 1; print 1 != 2;",
      "print \"a\" < \"b\"; print \"b\" <= \"a\"; print \"a\" == \"a\"; "
      "print \"a\" != \"b\"; print \"z\" > \"a\"; print \"z\" >= \"z\";",
      "print 1 == \"1\"; print \"x\" != 2;",
      // Logic, ternaries, unary operators.
      "print true || false; print false && true; print !false;",
      "print 1 < 2 ? \"yes\" : \"no\";",
      "print 10 - -3; print -(2 + 3);",
      // Statement plumbing: keep/prune of everything/nothing, return.
      "keep when true;",
      "prune when false;",
      "return total(\"time\") / 2; print \"unreachable\";",
      // Derived metrics visible to later statements through metric().
      "derive hot = exclusive(\"time\") * 2; keep when metric(\"hot\") > 30; "
      "print nodecount();",
  };
  for (const char *Src : Corpus)
    expectCompiledAgree(P, Src);
}

TEST(EvqlDifferential, RandomProfileSweep) {
  // A larger, multi-chunk profile so lanes cross the 2048-lane chunk
  // boundary and the keep/prune paths rewrite real topology.
  Profile P = test::makeRandomProfile(42, 3000, 14, 50);
  const char *Corpus[] = {
      "derive hot = exclusive(\"time\") + inclusive(\"time\") / "
      "(1 + depth());",
      "derive w = share(\"time\") > 0.0001 && !isleaf() ? nchildren() : 1;",
      "keep when depth() < 6 || share(\"time\") > 0.001;",
      "prune when isleaf() && metric(\"bytes\") == 0;",
      "keep when hasancestor(\"fn1\") || startswith(name(), \"fn2\");",
      "derive hot = metric(\"time\") * 3; prune when metric(\"hot\") < 10; "
      "print total(\"time\"); print nodecount();",
  };
  for (const char *Src : Corpus)
    expectCompiledAgree(P, Src);
}

TEST(EvqlDifferential, DiagnosticsMatchInterpreterExactly) {
  Profile P = test::makeFixedProfile();
  const char *Corpus[] = {
      // Node-context misuse (long and short forms).
      "print name();",
      "print file();",
      "print depth();",
      "print share(\"time\");",
      "print metric(\"time\");",
      "print parentname();",
      "print isleaf();",
      "print hasancestor(\"main\");",
      // Unknown things.
      "derive x = metric(\"missing\");",
      "keep when hasancestor(\"main\") && metric(\"missing\") > 0;",
      "print unknownfn(1);",
      "print nosuchvar;",
      // Type errors on the numeric path.
      "derive x = \"a\" * 2;",
      "print 1 + \"a\";",
      "print \"a\" - 1;",
      "derive x = name();",
      "keep when \"str\";",
      "let x = \"s\"; derive y = metric(\"time\") + x;",
      // Arity errors (checked before operand evaluation).
      "print min(1);",
      "print total();",
      "print fmt(1);",
      "print depth(1);",
      "print unknownfn(metric(\"missing\"));",
      // Line numbers survive multi-line programs.
      "print 1;\nprint metric(\"nope\");",
      "let a = 1;\nlet b = 2;\nderive x = a + b + name();",
  };
  for (const char *Src : Corpus) {
    SCOPED_TRACE(Src);
    Result<evql::QueryOutput> I = evql::runProgram(P, Src);
    ASSERT_FALSE(I.ok()) << "corpus entry unexpectedly succeeded";
    expectEnginesAgree(P, Src);
  }
}

TEST(EvqlDifferential, ShortCircuitSkipsUnevaluatedOperands) {
  Profile P = test::makeFixedProfile();
  // The interpreter never evaluates the right side when the left decides;
  // the VM compiles the right side under a lane mask whose error lanes
  // are all dead. Both must succeed.
  const char *Lazy[] = {
      "prune when false && metric(\"nope\") > 0;",
      "keep when true || nosuchvar > 0;",
      "print false && 1 / 0 > 0;",
      "keep when !isleaf() || metric(\"time\") > 0;",
  };
  for (const char *Src : Lazy) {
    SCOPED_TRACE(Src);
    Result<evql::QueryOutput> I = evql::runProgram(P, Src);
    EXPECT_TRUE(I.ok()) << I.error();
    expectEnginesAgree(P, Src);
  }

  // Dynamic masks: some lanes DO reach the failing operand, and the
  // winning error is the first failing node in id order.
  const char *Failing[] = {
      "keep when isleaf() || metric(\"nope\") > 0;",
      "prune when depth() < 2 && metric(\"nope\") > 0 || "
      "name() == \"memcpy\";",
  };
  for (const char *Src : Failing) {
    SCOPED_TRACE(Src);
    Result<evql::QueryOutput> I = evql::runProgram(P, Src);
    EXPECT_FALSE(I.ok());
    expectEnginesAgree(P, Src);
  }
}

TEST(EvqlFallback, MixedTypeTernaryFallsBackToInterpreter) {
  Profile P = test::makeFixedProfile();
  // A dynamically-typed ternary (number on one arm, string on the other)
  // has no typed register representation; the compiler must reject it and
  // runProgramAuto must fall back to the interpreter with identical
  // results.
  std::string Src = "keep when (isleaf() ? 1 : name()) != \"\";";
  Result<evql::Program> Prog = evql::parseProgram(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.error();
  EXPECT_EQ(evql::compileProgram(*Prog, AnalysisLimits()), nullptr);
  Result<evql::QueryOutput> I = evql::runProgram(P, Src);
  ASSERT_TRUE(I.ok()) << I.error();
  expectEnginesAgree(P, Src);

  // Constant conditions fold to the taken arm, so THIS mixed ternary
  // stays compilable — the fold mirrors the interpreter's laziness.
  std::string Folded = "print true ? 1 : \"s\";";
  Result<evql::Program> FoldedProg = evql::parseProgram(Folded);
  ASSERT_TRUE(FoldedProg.ok()) << FoldedProg.error();
  EXPECT_NE(evql::compileProgram(*FoldedProg, AnalysisLimits()), nullptr);
  expectEnginesAgree(P, Folded);
}

TEST(EvqlThreads, ByteIdenticalAcrossThreadCounts) {
  Profile P = test::makeRandomProfile(99, 3000, 14, 50);
  const std::string Ok =
      "derive hot = exclusive(\"time\") + inclusive(\"time\") / "
      "(1 + depth()) + min(share(\"time\") * 1000, nchildren() + 3);\n"
      "keep when depth() < 8 || share(\"time\") > 0.001;\n"
      "print total(\"time\"); print nodecount();";
  // An error whose failing lanes sit mid-profile: the winning diagnostic
  // must be the lowest failing node id regardless of chunk scheduling.
  const std::string Bad =
      "keep when depth() < 3 || metric(\"nope\") > 0;";

  Result<evql::Program> OkProg = evql::parseProgram(Ok);
  Result<evql::Program> BadProg = evql::parseProgram(Bad);
  ASSERT_TRUE(OkProg.ok() && BadProg.ok());
  auto OkC = evql::compileProgram(*OkProg, AnalysisLimits());
  auto BadC = evql::compileProgram(*BadProg, AnalysisLimits());
  ASSERT_NE(OkC, nullptr);
  ASSERT_NE(BadC, nullptr);

  unsigned Saved = ThreadPool::configuredThreads();
  std::string Fp0, Err0;
  for (unsigned Threads : {0u, 4u}) {
    ThreadPool::setSharedThreadCount(Threads);
    Result<evql::QueryOutput> V = evql::runCompiled(P, *OkC);
    ASSERT_TRUE(V.ok()) << V.error();
    Result<evql::QueryOutput> E = evql::runCompiled(P, *BadC);
    ASSERT_FALSE(E.ok());
    if (Threads == 0) {
      Fp0 = fingerprint(*V);
      Err0 = E.error();
    } else {
      EXPECT_EQ(fingerprint(*V), Fp0);
      EXPECT_EQ(E.error(), Err0);
    }
  }
  ThreadPool::setSharedThreadCount(Saved);

  // And the single-thread VM output matches the interpreter (transitively
  // pinning every thread count to the oracle).
  Result<evql::QueryOutput> I = evql::runProgram(P, Ok);
  ASSERT_TRUE(I.ok()) << I.error();
  EXPECT_EQ(fingerprint(*I), Fp0);
  Result<evql::QueryOutput> IE = evql::runProgram(P, Bad);
  ASSERT_FALSE(IE.ok());
  EXPECT_EQ(IE.error(), Err0);
}

TEST(EvqlRender, NumbersBeyondInt64PrintViaDouble) {
  Profile P = test::makeFixedProfile();
  // 1e19 overflows int64; the old static_cast was UB. Both engines now
  // route through formatDouble(V, 6).
  Result<evql::QueryOutput> R =
      evql::runProgram(P, "print 5000000000 * 2000000000;");
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R->Printed[0], "10000000000000000000.000000");
  expectCompiledAgree(P, "print 5000000000 * 2000000000;");
  expectCompiledAgree(P, "print 0 - 5000000000 * 2000000000;");
  expectCompiledAgree(P, "print str(5000000000 * 2000000000);");
  // In-range integral doubles keep the integer rendering.
  Result<evql::QueryOutput> Small = evql::runProgram(P, "print 4.0 * 25;");
  ASSERT_TRUE(Small.ok());
  EXPECT_EQ(Small->Printed[0], "100");
}

TEST(EvqlRender, FmtClampsHostileDigitCounts) {
  Profile P = test::makeFixedProfile();
  // A digit count beyond int range would be UB in the double->int
  // conversion; renderFormatted clamps it for both engines.
  expectCompiledAgree(P, "print fmt(3.5, 2000000000000);");
  expectCompiledAgree(P, "print fmt(3.5, 0 - 2000000000000);");
  expectCompiledAgree(P, "print fmt(1.0 / 3, 3);");
}

TEST(EvqlDepth, GuardedDepthColumn) {
  Profile P = test::makeFixedProfile();
  std::vector<uint32_t> D = depthColumn(P);
  ASSERT_EQ(D.size(), P.nodeCount());
  EXPECT_EQ(D[0], 0u); // Root depth is 0.
  for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
    uint32_t Parent = P.node(Id).Parent;
    EXPECT_EQ(D[Id], D[Parent] + 1);
  }

  // Crafted parent columns never index out of bounds: a self-parent, a
  // forward reference, and an invalid parent on a non-root all map to 0.
  std::vector<uint32_t> Crafted = {InvalidNode, 0, 2, 5, InvalidNode, 3};
  std::vector<uint32_t> Depths = depthsFromParents(Crafted);
  ASSERT_EQ(Depths.size(), Crafted.size());
  EXPECT_EQ(Depths[0], 0u);
  EXPECT_EQ(Depths[1], 1u); // Normal child of root.
  EXPECT_EQ(Depths[2], 0u); // Self-parent guard.
  EXPECT_EQ(Depths[3], 0u); // Forward reference guard.
  EXPECT_EQ(Depths[4], 0u); // Invalid parent on a non-root.
  EXPECT_EQ(Depths[5], 1u); // Child of a guarded node.
}

TEST(EvqlLimits, NestingBoundIsACleanDiagnosticInBothEngines) {
  Profile P = test::makeFixedProfile();
  auto Parens = [](size_t Depth) {
    std::string Src = "print ";
    Src.append(Depth, '(');
    Src += "1";
    Src.append(Depth, ')');
    Src += ";";
    return Src;
  };
  auto Chain = [](size_t Ops) {
    // A left-leaning spine of Ops binary adds: AST depth Ops + 1.
    // (Parentheses unwrap in the parser and add no AST depth.)
    std::string Src = "print 1";
    for (size_t I = 0; I < Ops; ++I)
      Src += " + 1";
    Src += ";";
    return Src;
  };

  // 300 nested operators: parses fine, but both engines refuse at the
  // analysis bound with the same message and line.
  std::string Deep = Chain(300);
  Result<evql::QueryOutput> I = evql::runProgram(P, Deep);
  ASSERT_FALSE(I.ok());
  EXPECT_NE(I.error().find("expression nesting exceeds the analysis limit "
                           "of 256 at line 1"),
            std::string::npos)
      << I.error();
  expectEnginesAgree(P, Deep);

  // 600 nested parens: the parser itself refuses; both entry points
  // surface the identical parse error.
  expectEnginesAgree(P, Parens(600));

  // Custom limits thread through compileProgram the same as runProgram.
  AnalysisLimits Tight;
  Tight.MaxExprDepth = 4;
  expectEnginesAgree(P, Chain(2), Tight);
  expectEnginesAgree(P, "print 1 + 2 * (3 + (4 - (5 + 6)));", Tight);
}

TEST(EvqlCache, ProgramCacheLruAndCounters) {
  evql::ProgramCache C(2);
  EXPECT_EQ(C.capacity(), 2u);
  auto Mk = [] {
    return std::make_shared<const evql::CompiledProgram>();
  };
  EXPECT_EQ(C.lookup("k1"), nullptr);
  EXPECT_EQ(C.misses(), 1u);
  C.insert("k1", Mk());
  C.insert("k2", Mk());
  EXPECT_EQ(C.size(), 2u);
  EXPECT_NE(C.lookup("k1"), nullptr); // Refreshes k1 to the front.
  EXPECT_EQ(C.hits(), 1u);
  C.insert("k3", Mk()); // Evicts k2, the least recently used.
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(C.lookup("k2"), nullptr);
  EXPECT_NE(C.lookup("k1"), nullptr);
  EXPECT_NE(C.lookup("k3"), nullptr);
  // Re-inserting an existing key refreshes in place, no growth.
  C.insert("k3", Mk());
  EXPECT_EQ(C.size(), 2u);

  // Capacity 0 disables the cache.
  evql::ProgramCache Off(0);
  Off.insert("k", Mk());
  EXPECT_EQ(Off.size(), 0u);
  EXPECT_EQ(Off.lookup("k"), nullptr);
}

TEST(EvqlCache, KeyEmbedsSourceProfileAndGeneration) {
  std::string A = evql::programCacheKey("print 1;", 7, 3);
  EXPECT_NE(A, evql::programCacheKey("print 2;", 7, 3));
  EXPECT_NE(A, evql::programCacheKey("print 1;", 8, 3));
  EXPECT_NE(A, evql::programCacheKey("print 1;", 7, 4));
  EXPECT_EQ(A, evql::programCacheKey("print 1;", 7, 3));
}

TEST(EvqlCache, PvpQueryHitsWarmAndInvalidatesOnAppend) {
  MockIde Ide;
  std::vector<std::string> Stages = test::growthStageBytes(2);
  Result<int64_t> Id = Ide.openProfile("live", Stages[0]);
  ASSERT_TRUE(Id.ok()) << Id.error();

  auto Stat = [&](const char *Key) {
    Result<json::Value> S = Ide.call("pvp/stats", json::Object());
    EXPECT_TRUE(S.ok());
    const json::Value *V = S->asObject().find(Key);
    return V ? static_cast<int64_t>(V->numberOr(-1)) : -1;
  };
  auto Query = [&] {
    json::Object Params;
    Params.set("profile", *Id);
    Params.set("program", "derive x = 2 * exclusive(\"time\");"
                          "print total(\"time\");");
    Result<json::Value> R = Ide.call("pvp/query", std::move(Params));
    ASSERT_TRUE(R.ok()) << R.error();
  };

  EXPECT_GT(Stat("programCacheCapacity"), 0);
  int64_t Hits0 = Stat("programCacheHits");
  int64_t Misses0 = Stat("programCacheMisses");

  // Cold: compile, then insert under the post-query generation.
  Query();
  EXPECT_EQ(Stat("programCacheHits"), Hits0);
  EXPECT_EQ(Stat("programCacheMisses"), Misses0 + 1);

  // Warm: the identical source at the current generation hits.
  Query();
  EXPECT_EQ(Stat("programCacheHits"), Hits0 + 1);
  EXPECT_EQ(Stat("programCacheMisses"), Misses0 + 1);
  int64_t Size1 = Stat("programCacheSize");

  // pvp/append bumps the profile generation, so the cached program's key
  // stops matching: the next identical query is a miss (recompile), and
  // the one after that hits again.
  json::Object AP;
  AP.set("profile", *Id);
  AP.set("dataBase64", base64Encode(test::sectionBytes(Stages, 0)));
  Result<json::Value> Appended = Ide.call("pvp/append", std::move(AP));
  ASSERT_TRUE(Appended.ok()) << Appended.error();

  Query();
  EXPECT_EQ(Stat("programCacheHits"), Hits0 + 1);
  EXPECT_EQ(Stat("programCacheMisses"), Misses0 + 2);
  Query();
  EXPECT_EQ(Stat("programCacheHits"), Hits0 + 2);
  EXPECT_GE(Stat("programCacheSize"), Size1);
}

TEST(EvqlCache, QueryReplyByteIdenticalColdAndWarm) {
  MockIde Ide;
  Result<int64_t> Id =
      Ide.openProfile("fixed", writeEvProf(test::makeFixedProfile()));
  ASSERT_TRUE(Id.ok()) << Id.error();
  auto Query = [&] {
    json::Object Params;
    Params.set("profile", *Id);
    Params.set("program",
               "derive hot = exclusive(\"time\") + depth();"
               "keep when share(\"time\") > 0.05;"
               "print total(\"time\"); print nodecount();");
    return Ide.call("pvp/query", std::move(Params));
  };
  Result<json::Value> Cold = Query();
  ASSERT_TRUE(Cold.ok()) << Cold.error();
  Result<json::Value> Warm = Query();
  ASSERT_TRUE(Warm.ok()) << Warm.error();
  // The reply contains a fresh derived-profile id; everything else —
  // printed lines and derived names — must match bytewise.
  for (const char *Key : {"printed", "derived"}) {
    const json::Value *C = Cold->asObject().find(Key);
    const json::Value *W = Warm->asObject().find(Key);
    ASSERT_NE(C, nullptr) << Key;
    ASSERT_NE(W, nullptr) << Key;
    EXPECT_EQ(C->dump(), W->dump()) << Key;
  }
}

} // namespace
} // namespace ev
