//===- render/Color.cpp - Color semantics for views -------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "render/Color.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ev {

std::string toHexColor(Rgb Color) {
  char Buffer[8];
  std::snprintf(Buffer, sizeof(Buffer), "#%02x%02x%02x", Color.R, Color.G,
                Color.B);
  return Buffer;
}

namespace {

uint64_t fnv1a(std::string_view Text) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Text) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace

Rgb colorForFrame(const Profile &P, const Frame &F) {
  std::string_view Group = P.text(F.Loc.Module);
  if (Group.empty())
    Group = P.text(F.Loc.File);
  uint64_t H = fnv1a(Group);
  uint64_t H2 = fnv1a(P.text(F.Name));

  // Classic flame palette: red..orange..yellow band keyed by the group
  // hash; small per-function jitter for adjacency contrast.
  double Hue = static_cast<double>(H % 48);            // 0..47 degrees
  double Jitter = static_cast<double>(H2 % 10) - 5.0;  // +-5 degrees
  double Angle = std::clamp(Hue + Jitter, 0.0, 55.0);  // red..yellow

  double Darkness = F.Loc.hasSourceMapping() ? 1.0 : 0.62;
  double R = 205.0 + 50.0 * (Angle / 55.0);
  double G = 80.0 + 140.0 * (Angle / 55.0);
  double B = 40.0;
  Rgb Out;
  Out.R = static_cast<uint8_t>(std::clamp(R * Darkness, 0.0, 255.0));
  Out.G = static_cast<uint8_t>(std::clamp(G * Darkness, 0.0, 255.0));
  Out.B = static_cast<uint8_t>(std::clamp(B * Darkness, 0.0, 255.0));
  return Out;
}

Rgb searchHighlightColor() { return {0xB0, 0x00, 0xD8}; }

Rgb diffColor(DiffTag Tag, double Magnitude) {
  Magnitude = std::clamp(Magnitude, 0.0, 1.0);
  uint8_t Strength = static_cast<uint8_t>(90 + 165 * Magnitude);
  switch (Tag) {
  case DiffTag::Added:
  case DiffTag::Increased:
    return {Strength, 60, 60}; // Regression: red family.
  case DiffTag::Deleted:
  case DiffTag::Decreased:
    return {60, 90, Strength}; // Improvement: blue family.
  case DiffTag::Common:
    return {150, 150, 150};
  }
  return {150, 150, 150};
}

} // namespace ev
