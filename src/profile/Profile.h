//===- profile/Profile.h - Generic profile representation -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EasyView's generic profile representation (paper Fig. 2): all monitoring
/// points are organized into a compact calling context tree (CCT) produced
/// by merging common call-path prefixes. Each CCT node carries a context
/// (frame with source-code attribution) and a list of exclusive metric
/// values. The representation additionally supports:
///
///  - data objects as contexts (data-centric profilers such as DrCCTProf,
///    ScaAnalyzer, MemProf): FrameKind::DataObject;
///  - multiple metrics per monitoring point;
///  - multiple contexts bound to one metric (reuse pairs, redundancy
///    pairs, data races, false sharing): ContextGroup.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_PROFILE_PROFILE_H
#define EASYVIEW_PROFILE_PROFILE_H

#include "support/Result.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ev {

/// Kinds of profiling contexts (paper §IV-A "profiling contexts" cover the
/// whole program down to instructions, plus data objects).
enum class FrameKind : uint8_t {
  Root,        ///< Program/thread entry; exactly one per profile.
  Function,    ///< A function frame on the call stack.
  Loop,        ///< A source loop within a function.
  BasicBlock,  ///< A basic block (fine-grained profilers).
  Instruction, ///< A single instruction address.
  DataObject,  ///< A heap/static data object (data-centric analysis).
  Thread,      ///< A thread context grouping node.
};

/// \returns a stable lowercase name for \p Kind ("function", ...).
std::string_view frameKindName(FrameKind Kind);

/// Source-code attribution of a context (paper §IV-A "code mapping").
struct SourceLocation {
  StringId File = 0;   ///< Source file path (interned), 0 when unknown.
  uint32_t Line = 0;   ///< 1-based line; 0 when unknown.
  StringId Module = 0; ///< Load module (binary / shared library).
  uint64_t Address = 0; ///< Instruction pointer, 0 when unknown.

  bool operator==(const SourceLocation &O) const = default;

  /// \returns true when a source line mapping is available. The renderers
  /// use this for the "darkness" color semantics (paper §VI-B).
  bool hasSourceMapping() const { return File != 0 && Line != 0; }
};

/// A deduplicated context descriptor shared by CCT nodes.
struct Frame {
  FrameKind Kind = FrameKind::Function;
  StringId Name = 0; ///< Function or data-object name (interned).
  SourceLocation Loc;

  bool operator==(const Frame &O) const = default;
};

/// Index of a Frame in Profile::frames().
using FrameId = uint32_t;
/// Index of a CCTNode in Profile::nodes().
using NodeId = uint32_t;
/// Index of a MetricDescriptor in Profile::metrics().
using MetricId = uint32_t;

inline constexpr NodeId InvalidNode = std::numeric_limits<NodeId>::max();

/// How values of a metric combine when profiles or nodes merge.
enum class MetricAggregation : uint8_t {
  Sum, ///< e.g. cycles, allocated bytes.
  Min,
  Max,
  Last, ///< e.g. a gauge such as active memory in a snapshot.
};

/// Describes one metric column (paper §IV-A "metrics").
struct MetricDescriptor {
  std::string Name; ///< e.g. "cpu-time", "alloc-bytes".
  std::string Unit; ///< e.g. "nanoseconds", "bytes", "count".
  MetricAggregation Aggregation = MetricAggregation::Sum;

  bool operator==(const MetricDescriptor &O) const = default;
};

/// Sparse (metric, exclusive value) pair attached to a CCT node.
struct MetricValue {
  MetricId Metric = 0;
  double Value = 0.0;

  bool operator==(const MetricValue &O) const = default;
};

/// One calling-context-tree node. Children keep insertion order; the
/// analysis passes sort as needed.
struct CCTNode {
  NodeId Parent = InvalidNode;
  FrameId FrameRef = 0;
  std::vector<NodeId> Children;
  /// Exclusive metric values recorded directly at this context.
  std::vector<MetricValue> Metrics;

  /// \returns the exclusive value of \p Metric, 0 when absent.
  double metricOr(MetricId Metric, double Fallback = 0.0) const {
    for (const MetricValue &MV : Metrics)
      if (MV.Metric == Metric)
        return MV.Value;
    return Fallback;
  }

  /// Adds \p Delta to the exclusive value of \p Metric.
  void addMetric(MetricId Metric, double Delta);
};

/// Binds one metric value to several contexts at once. This is how the
/// representation models reuse pairs (use + reuse contexts), redundancy
/// pairs, data races, and false sharing (paper §IV-A last paragraph);
/// Fig. 7's correlated flame graphs render these groups.
struct ContextGroup {
  StringId Kind = 0; ///< e.g. "reuse", "redundancy", "race" (interned).
  std::vector<NodeId> Contexts; ///< Ordered roles, e.g. {alloc, use, reuse}.
  MetricId Metric = 0;
  double Value = 0.0;
};

/// The profile: string table + metric schema + frame table + CCT + groups.
///
/// Profiles are built with ProfileBuilder, loaded from .evprof bytes
/// (proto/EvProf.h), or converted from foreign formats (src/convert/).
class Profile {
public:
  Profile();

  /// Human-readable label (file name, "thread 3", "run A", ...).
  const std::string &name() const { return Label; }
  void setName(std::string Name) { Label = std::move(Name); }

  //===--------------------------------------------------------------------===
  // String table
  //===--------------------------------------------------------------------===

  StringInterner &strings() { return Strings; }
  const StringInterner &strings() const { return Strings; }
  std::string_view text(StringId Id) const { return Strings.text(Id); }

  //===--------------------------------------------------------------------===
  // Metric schema
  //===--------------------------------------------------------------------===

  const std::vector<MetricDescriptor> &metrics() const { return MetricTable; }

  /// Registers a metric; returns the existing id when a metric of the same
  /// name is already present.
  MetricId addMetric(std::string_view Name, std::string_view Unit,
                     MetricAggregation Aggregation = MetricAggregation::Sum);

  /// \returns the id of metric \p Name, or InvalidNode-like sentinel.
  static constexpr MetricId InvalidMetric =
      std::numeric_limits<MetricId>::max();
  MetricId findMetric(std::string_view Name) const;

  //===--------------------------------------------------------------------===
  // Frames
  //===--------------------------------------------------------------------===

  const std::vector<Frame> &frames() const { return FrameTable; }
  const Frame &frame(FrameId Id) const;

  /// Interns \p F, returning a dense FrameId.
  FrameId internFrame(const Frame &F);

  //===--------------------------------------------------------------------===
  // CCT
  //===--------------------------------------------------------------------===

  const std::vector<CCTNode> &nodes() const { return NodeTable; }
  std::vector<CCTNode> &nodes() { return NodeTable; }
  const CCTNode &node(NodeId Id) const;
  CCTNode &node(NodeId Id);
  size_t nodeCount() const { return NodeTable.size(); }

  /// The root node id (always 0; the root exists from construction).
  NodeId root() const { return 0; }

  /// Appends a fresh child of \p Parent referencing \p FrameRef.
  NodeId createNode(NodeId Parent, FrameId FrameRef);

  /// Pre-sizes the node and frame tables (loaders call this after a wire
  /// pre-scan so the decode loop never reallocates).
  void reserveTables(size_t Nodes, size_t Frames);

  /// Frame of the node (convenience).
  const Frame &frameOf(NodeId Id) const { return frame(node(Id).FrameRef); }
  /// Function/data-object name of the node.
  std::string_view nameOf(NodeId Id) const {
    return text(frameOf(Id).Name);
  }

  /// Reconstructs the root-to-node call path.
  std::vector<NodeId> pathTo(NodeId Id) const;

  /// Depth of a node (root = 0).
  unsigned depth(NodeId Id) const;

  //===--------------------------------------------------------------------===
  // Multi-context metric groups
  //===--------------------------------------------------------------------===

  const std::vector<ContextGroup> &groups() const { return Groups; }
  void addGroup(ContextGroup Group);

  //===--------------------------------------------------------------------===
  // Integrity & accounting
  //===--------------------------------------------------------------------===

  /// Structural validation used by tests and by the loaders: parent/child
  /// symmetry, acyclicity, in-range frame/metric/string references.
  /// \returns true on success; otherwise an error naming the first problem.
  Result<bool> verify() const;

  /// Approximate in-memory footprint, used for response-time accounting.
  size_t approxMemoryBytes() const;

private:
  struct FrameHash {
    size_t operator()(const Frame &F) const {
      uint64_t H = static_cast<uint64_t>(F.Kind);
      auto Mix = [&H](uint64_t V) {
        H ^= V + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
      };
      Mix(F.Name);
      Mix(F.Loc.File);
      Mix(F.Loc.Line);
      Mix(F.Loc.Module);
      Mix(F.Loc.Address);
      return static_cast<size_t>(H);
    }
  };

  std::string Label;
  StringInterner Strings;
  std::vector<MetricDescriptor> MetricTable;
  std::vector<Frame> FrameTable;
  std::unordered_map<Frame, FrameId, FrameHash> FrameIndex;
  std::vector<CCTNode> NodeTable;
  std::vector<ContextGroup> Groups;
};

} // namespace ev

#endif // EASYVIEW_PROFILE_PROFILE_H
