file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_diff.dir/bench_fig3_diff.cpp.o"
  "CMakeFiles/bench_fig3_diff.dir/bench_fig3_diff.cpp.o.d"
  "bench_fig3_diff"
  "bench_fig3_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
