//===- convert/ScaleneConverter.cpp - Scalene JSON converter --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts Scalene's JSON output into the generic representation. Scalene
/// is a line-granular Python profiler: the document maps file names to
/// per-line records with Python/native CPU percentages and memory figures.
/// The resulting tree is file -> function -> line, with four metrics:
/// cpu-python, cpu-native (both in percent points), alloc-bytes, and
/// memcpy-bytes.
///
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "profile/ProfileBuilder.h"
#include "support/Json.h"

namespace ev {
namespace convert {

Result<Profile> fromScalene(std::string_view Json) {
  Result<json::Value> Doc = json::parse(Json);
  if (!Doc)
    return makeError(Doc.error());
  if (!Doc->isObject())
    return makeError("scalene: document must be an object");
  const json::Object &Root = Doc->asObject();
  const json::Value *FilesV = Root.find("files");
  if (!FilesV || !FilesV->isObject())
    return makeError("scalene: missing files object");

  ProfileBuilder B("scalene profile");
  MetricId CpuPython = B.addMetric("cpu-python", "percent");
  MetricId CpuNative = B.addMetric("cpu-native", "percent");
  MetricId AllocBytes = B.addMetric("alloc-bytes", "bytes");
  MetricId MemcpyBytes = B.addMetric("memcpy-bytes", "bytes");

  size_t LinesSeen = 0;
  for (const auto &[FileName, FileV] : FilesV->asObject()) {
    if (!FileV.isObject())
      continue;
    const json::Object &File = FileV.asObject();
    const json::Value *LinesV = File.find("lines");
    if (!LinesV || !LinesV->isArray())
      continue;

    FrameId FileFrame = B.functionFrame(FileName, FileName, 0, "python");
    for (const json::Value &LineV : LinesV->asArray()) {
      if (!LineV.isObject())
        continue;
      const json::Object &L = LineV.asObject();
      uint32_t LineNo =
          L.find("lineno")
              ? static_cast<uint32_t>(std::max(0.0,
                                               L.find("lineno")->numberOr(0)))
              : 0;
      double CpuPy = 0.0, CpuC = 0.0, Alloc = 0.0, Memcpy = 0.0;
      if (const json::Value *V = L.find("n_cpu_percent_python"))
        CpuPy = V->numberOr(0.0);
      if (const json::Value *V = L.find("n_cpu_percent_c"))
        CpuC = V->numberOr(0.0);
      if (const json::Value *V = L.find("n_malloc_mb"))
        Alloc = V->numberOr(0.0) * 1024.0 * 1024.0;
      if (const json::Value *V = L.find("n_copy_mb"))
        Memcpy = V->numberOr(0.0) * 1024.0 * 1024.0;
      if (CpuPy == 0.0 && CpuC == 0.0 && Alloc == 0.0 && Memcpy == 0.0)
        continue;

      std::string_view FnName =
          L.find("function") ? L.find("function")->stringOr("<module>")
                             : "<module>";
      FrameId FnFrame = B.functionFrame(FnName, FileName, 0, "python");
      std::string LineName = "line " + std::to_string(LineNo);
      FrameId LineFrame =
          B.frame(FrameKind::Instruction, LineName, FileName, LineNo,
                  "python");
      const FrameId Path[] = {FileFrame, FnFrame, LineFrame};
      NodeId Leaf = B.pushPath(Path);
      if (CpuPy != 0.0)
        B.addValue(Leaf, CpuPython, CpuPy);
      if (CpuC != 0.0)
        B.addValue(Leaf, CpuNative, CpuC);
      if (Alloc != 0.0)
        B.addValue(Leaf, AllocBytes, Alloc);
      if (Memcpy != 0.0)
        B.addValue(Leaf, MemcpyBytes, Memcpy);
      ++LinesSeen;
    }
  }
  if (LinesSeen == 0)
    return makeError("scalene: no profiled lines with nonzero cost");
  return B.take();
}

} // namespace convert
} // namespace ev
