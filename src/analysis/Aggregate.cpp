//===- analysis/Aggregate.cpp - Multi-profile aggregation -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Aggregate.h"

#include "profile/Columnar.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <cassert>
#include <cmath>
#include <string_view>

namespace ev {

std::vector<double>
AggregatedProfile::perProfileExclusive(NodeId Node, MetricId Metric) const {
  auto It = KeyIndex.find(sampleKey(Node, Metric));
  if (It == KeyIndex.end())
    return {};
  const double *Row = Matrix.data() + size_t(It->second) * ProfileCount;
  return std::vector<double>(Row, Row + ProfileCount);
}

void AggregatedProfile::ensureInclusive() const {
  if (InclusiveReady)
    return;
  InclusiveColumns.assign(InputMetricCount * ProfileCount,
                          std::vector<double>(Merged.nodeCount(), 0.0));
  for (size_t R = 0; R < KeyOrder.size(); ++R) {
    uint64_t Key = KeyOrder[R];
    NodeId Node = static_cast<NodeId>(Key >> 16);
    MetricId Metric = static_cast<MetricId>(Key & 0xFFFF);
    if (Metric >= InputMetricCount)
      continue; // Derived columns do not have per-profile samples.
    for (size_t Prof = 0; Prof < ProfileCount; ++Prof)
      InclusiveColumns[Metric * ProfileCount + Prof][Node] +=
          Matrix[R * ProfileCount + Prof];
  }
  // Bottom-up accumulation; node ids are parents-first. Each (metric,
  // profile) column sweeps independently, so columns distribute across
  // workers with bit-identical results.
  ThreadPool::shared().parallelFor(InclusiveColumns.size(), [&](size_t C) {
    std::vector<double> &Column = InclusiveColumns[C];
    for (NodeId Id = static_cast<NodeId>(Merged.nodeCount()); Id > 1;) {
      --Id;
      Column[Merged.node(Id).Parent] += Column[Id];
    }
  });
  InclusiveReady = true;
}

std::vector<double>
AggregatedProfile::perProfileInclusive(NodeId Node, MetricId Metric) const {
  assert(Metric < InputMetricCount && "derived columns have no histogram");
  ensureInclusive();
  std::vector<double> Out(ProfileCount, 0.0);
  for (size_t Prof = 0; Prof < ProfileCount; ++Prof)
    Out[Prof] = InclusiveColumns[Metric * ProfileCount + Prof][Node];
  return Out;
}

/// Private-member access for the shared merge implementation below. The
/// implementation is a template (instantiated once for AoS inputs, once
/// for columnar inputs), so it cannot itself be named in a friend
/// declaration; this little struct can.
struct AggregateAccess {
  static Profile &merged(AggregatedProfile &A) { return A.Merged; }
  static size_t &profileCount(AggregatedProfile &A) { return A.ProfileCount; }
  static size_t &inputMetricCount(AggregatedProfile &A) {
    return A.InputMetricCount;
  }
  static std::unordered_map<uint64_t, uint32_t> &
  keyIndex(AggregatedProfile &A) {
    return A.KeyIndex;
  }
  static std::vector<uint64_t> &keyOrder(AggregatedProfile &A) {
    return A.KeyOrder;
  }
  static std::vector<double> &matrix(AggregatedProfile &A) {
    return A.Matrix;
  }
};

namespace {

/// Textual identity of a frame, resolved out of the owning profile's string
/// table so the merge loop never chases StringIds.
struct CanonFrame {
  FrameKind Kind;
  std::string_view Name;
  std::string_view File;
  std::string_view Module;
  uint32_t Line;
};

/// Everything about one input that can be computed without touching the
/// merged profile.
struct ProfilePrep {
  std::vector<MetricId> MetricMap;
  std::vector<CanonFrame> Frames;
};

/// Uniform read-only view of one AoS input. The merge template touches
/// inputs only through this interface, so the columnar twin below is
/// guaranteed to replay the identical algorithm.
struct AosInput {
  const Profile *P;

  size_t nodeCount() const { return P->nodeCount(); }
  NodeId parentOf(NodeId Id) const { return P->node(Id).Parent; }
  FrameId frameRefOf(NodeId Id) const { return P->node(Id).FrameRef; }
  size_t frameCount() const { return P->frames().size(); }
  size_t metricCount() const { return P->metrics().size(); }
  std::string_view metricName(MetricId I) const {
    return P->metrics()[I].Name;
  }
  std::string_view metricUnit(MetricId I) const {
    return P->metrics()[I].Unit;
  }
  MetricAggregation metricAgg(MetricId I) const {
    return P->metrics()[I].Aggregation;
  }
  CanonFrame canonFrame(FrameId F) const {
    const Frame &Fr = P->frames()[F];
    return {Fr.Kind, P->text(Fr.Name), P->text(Fr.Loc.File),
            P->text(Fr.Loc.Module), Fr.Loc.Line};
  }
  template <typename Fn> void forEachValue(NodeId Id, Fn &&Visit) const {
    for (const MetricValue &MV : P->node(Id).Metrics)
      Visit(MV.Metric, MV.Value);
  }
};

/// Uniform view of one columnar input: the tree walk reads the flat
/// parent/frame columns and the value visit sweeps the metric CSR — no
/// per-node objects anywhere. String texts resolve through the store-wide
/// table (views are stable; SharedStringTable reads are lock-cheap and
/// only taken once per distinct frame/metric, never per node).
struct ColumnarInput {
  const ColumnarProfile *C;
  std::span<const uint32_t> Parents, FrameRefs, MetOff, MetIds;
  std::span<const double> MetVals;
  std::span<const uint32_t> StrGlobal;

  explicit ColumnarInput(const ColumnarProfile &CP)
      : C(&CP), Parents(CP.parents()), FrameRefs(CP.frameRefs()),
        MetOff(CP.metricOffsets()), MetIds(CP.metricIds()),
        MetVals(CP.metricValues()), StrGlobal(CP.stringGlobal()) {}

  size_t nodeCount() const { return C->nodeCount(); }
  NodeId parentOf(NodeId Id) const { return Parents[Id]; }
  FrameId frameRefOf(NodeId Id) const { return FrameRefs[Id]; }
  size_t frameCount() const { return C->frameCount(); }
  size_t metricCount() const { return C->metricCount(); }
  std::string_view metricName(MetricId I) const {
    return C->strings().text(C->metricNameIds()[I]);
  }
  std::string_view metricUnit(MetricId I) const {
    return C->strings().text(C->metricUnitIds()[I]);
  }
  MetricAggregation metricAgg(MetricId I) const {
    return static_cast<MetricAggregation>(C->metricAggs()[I]);
  }
  CanonFrame canonFrame(FrameId F) const {
    const SharedStringTable &S = C->strings();
    return {static_cast<FrameKind>(C->frameKinds()[F]),
            S.text(StrGlobal[C->frameNames()[F]]),
            S.text(StrGlobal[C->frameFiles()[F]]),
            S.text(StrGlobal[C->frameModules()[F]]), C->frameLines()[F]};
  }
  template <typename Fn> void forEachValue(NodeId Id, Fn &&Visit) const {
    for (uint32_t V = MetOff[Id], End = MetOff[Id + 1]; V < End; ++V)
      Visit(MetIds[V], MetVals[V]);
  }
};

/// The merge algorithm, shared verbatim by both input representations.
/// Every ordering decision (metric declaration order, frame first-touch
/// interning, node-order key discovery, KeyOrder attach) depends only on
/// the Input interface, which is why the two public overloads produce
/// byte-identical merged profiles.
template <typename Input>
AggregatedProfile aggregateImpl(const std::vector<Input> &Inputs,
                                const AggregateOptions &Options,
                                const CancelToken &Cancel) {
  assert(!Inputs.empty() && "aggregate requires at least one profile");
  AggregatedProfile Agg;
  AggregateAccess::profileCount(Agg) = Inputs.size();
  const Input &First = Inputs[0];
  size_t InputMetricCount = First.metricCount();
  AggregateAccess::inputMetricCount(Agg) = InputMetricCount;
  assert(InputMetricCount < 0xFFFF && "metric id space exhausted");
  std::unordered_map<uint64_t, uint32_t> &KeyIndex =
      AggregateAccess::keyIndex(Agg);
  std::vector<uint64_t> &KeyOrder = AggregateAccess::keyOrder(Agg);
  std::vector<double> &Matrix = AggregateAccess::matrix(Agg);

  Profile &Merged = AggregateAccess::merged(Agg);
  Merged.setName("aggregate of " + std::to_string(Inputs.size()) +
                 " profiles");

  // Column layout: first the input metrics (holding the per-node SUM when
  // WithSum, otherwise zeros), then the derived statistics.
  std::vector<MetricId> SumIds(InputMetricCount);
  std::vector<MetricId> MinIds, MaxIds, MeanIds, StddevIds;
  for (MetricId I = 0; I < InputMetricCount; ++I)
    SumIds[I] = Merged.addMetric(First.metricName(I), First.metricUnit(I),
                                 First.metricAgg(I));
  for (MetricId I = 0; I < InputMetricCount; ++I) {
    std::string Name(First.metricName(I));
    std::string_view Unit = First.metricUnit(I);
    if (Options.WithMin)
      MinIds.push_back(
          Merged.addMetric(Name + ".min", Unit, MetricAggregation::Min));
    if (Options.WithMax)
      MaxIds.push_back(
          Merged.addMetric(Name + ".max", Unit, MetricAggregation::Max));
    if (Options.WithMean)
      MeanIds.push_back(
          Merged.addMetric(Name + ".mean", Unit, MetricAggregation::Sum));
    if (Options.WithStddev)
      StddevIds.push_back(
          Merged.addMetric(Name + ".stddev", Unit, MetricAggregation::Sum));
  }

  // Phase 1 (parallel): canonicalize every input independently — resolve
  // each frame to its textual identity and map each metric schema onto the
  // first profile's columns. Reads only the inputs, so profiles fan out
  // across workers.
  std::vector<ProfilePrep> Preps =
      ThreadPool::shared().parallelMap<ProfilePrep>(
          Inputs.size(), [&](size_t ProfIdx) {
            const Input &P = Inputs[ProfIdx];
            ProfilePrep Prep;
            Prep.MetricMap.assign(P.metricCount(), Profile::InvalidMetric);
            for (MetricId I = 0; I < P.metricCount(); ++I) {
              std::string_view Name = P.metricName(I);
              for (MetricId T = 0; T < InputMetricCount; ++T) {
                if (First.metricName(T) == Name) {
                  Prep.MetricMap[I] = T;
                  break;
                }
              }
            }
            Prep.Frames.reserve(P.frameCount());
            for (FrameId F = 0; F < P.frameCount(); ++F)
              Prep.Frames.push_back(P.canonFrame(F));
            return Prep;
          });

  // Phase 2 (sequential, ordered): merge every input tree into the unified
  // tree, profile by profile and node by node, so the merged node ids are
  // identical for every thread count. Children are matched by textual frame
  // identity under the same merged parent.
  std::unordered_map<uint64_t, NodeId> ChildIndex;
  auto ChildFor = [&](NodeId Parent, FrameId F) {
    uint64_t Key = (static_cast<uint64_t>(Parent) << 32) | F;
    auto It = ChildIndex.find(Key);
    if (It != ChildIndex.end())
      return It->second;
    NodeId Id = Merged.createNode(Parent, F);
    ChildIndex.emplace(Key, Id);
    return Id;
  };

  std::vector<std::vector<NodeId>> OutNodes(Inputs.size());
  for (size_t ProfIdx = 0; ProfIdx < Inputs.size(); ++ProfIdx) {
    const Input &P = Inputs[ProfIdx];
    const ProfilePrep &Prep = Preps[ProfIdx];
    std::vector<NodeId> &OutNode = OutNodes[ProfIdx];
    OutNode.assign(P.nodeCount(), InvalidNode);
    OutNode[0] = Merged.root();
    std::vector<FrameId> FrameMap(P.frameCount(), 0);
    std::vector<bool> FrameMapped(P.frameCount(), false);
    auto MapFrame = [&](FrameId F) {
      if (FrameMapped[F])
        return FrameMap[F];
      const CanonFrame &Canon = Prep.Frames[F];
      Frame Copy;
      Copy.Kind = Canon.Kind;
      Copy.Name = Merged.strings().intern(Canon.Name);
      Copy.Loc.File = Merged.strings().intern(Canon.File);
      Copy.Loc.Line = Canon.Line;
      Copy.Loc.Module = Merged.strings().intern(Canon.Module);
      // Addresses are run-specific (ASLR): identity is textual only.
      Copy.Loc.Address = 0;
      FrameMap[F] = Merged.internFrame(Copy);
      FrameMapped[F] = true;
      return FrameMap[F];
    };

    for (NodeId Id = 1; Id < P.nodeCount(); ++Id) {
      if ((Id & 8191) == 0)
        Cancel.checkpoint();
      OutNode[Id] = ChildFor(OutNode[P.parentOf(Id)], MapFrame(P.frameRefOf(Id)));
    }
  }

  // Phase 3a (sequential): discover the (node, metric) key set in profile
  // then node order, assigning each key a stable dense row.
  for (size_t ProfIdx = 0; ProfIdx < Inputs.size(); ++ProfIdx) {
    const Input &P = Inputs[ProfIdx];
    const std::vector<MetricId> &MetricMap = Preps[ProfIdx].MetricMap;
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
      if ((Id & 8191) == 0)
        Cancel.checkpoint();
      P.forEachValue(Id, [&](MetricId M, double) {
        if (M >= MetricMap.size() || MetricMap[M] == Profile::InvalidMetric)
          return;
        uint64_t Key =
            AggregatedProfile::sampleKey(OutNodes[ProfIdx][Id], MetricMap[M]);
        if (KeyIndex.emplace(Key, static_cast<uint32_t>(KeyOrder.size()))
                .second)
          KeyOrder.push_back(Key);
      });
    }
  }

  // Phase 3b (parallel): accumulate samples into the dense matrix. Each
  // profile writes only its own column of every row, so profiles proceed
  // concurrently without synchronization, and the per-profile accumulation
  // order (node order) is the same in every mode.
  size_t N = Inputs.size();
  Matrix.assign(KeyOrder.size() * N, 0.0);
  ThreadPool::shared().parallelFor(Inputs.size(), [&](size_t ProfIdx) {
    const Input &P = Inputs[ProfIdx];
    const std::vector<MetricId> &MetricMap = Preps[ProfIdx].MetricMap;
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
      P.forEachValue(Id, [&](MetricId M, double Value) {
        if (M >= MetricMap.size() || MetricMap[M] == Profile::InvalidMetric)
          return;
        uint64_t Key =
            AggregatedProfile::sampleKey(OutNodes[ProfIdx][Id], MetricMap[M]);
        Matrix[size_t(KeyIndex.find(Key)->second) * N + ProfIdx] += Value;
      });
    }
  });

  // Phase 4 (parallel math, sequential attach): the per-row statistics are
  // pure functions of the row, so rows fan out across workers; attaching
  // them to the merged nodes follows KeyOrder so the metric lists come out
  // identical for every thread count (and deterministic across runs, which
  // the old hash-order iteration was not).
  struct RowStats {
    double Sum, Min, Max, Mean, Stddev;
  };
  std::vector<RowStats> Stats(KeyOrder.size());
  ThreadPool::shared().parallelFor(KeyOrder.size(), [&](size_t R) {
    const double *Row = Matrix.data() + R * N;
    double Sum = 0.0, Min = Row[0], Max = Row[0];
    for (size_t I = 0; I < N; ++I) {
      Sum += Row[I];
      Min = std::min(Min, Row[I]);
      Max = std::max(Max, Row[I]);
    }
    double Mean = Sum / static_cast<double>(N);
    double Var = 0.0;
    for (size_t I = 0; I < N; ++I)
      Var += (Row[I] - Mean) * (Row[I] - Mean);
    Stats[R] = {Sum, Min, Max, Mean, std::sqrt(Var / static_cast<double>(N))};
  });
  for (size_t R = 0; R < KeyOrder.size(); ++R) {
    uint64_t Key = KeyOrder[R];
    NodeId Node = static_cast<NodeId>(Key >> 16);
    MetricId Metric = static_cast<MetricId>(Key & 0xFFFF);
    const RowStats &S = Stats[R];
    if (Options.WithSum && S.Sum != 0.0)
      Merged.node(Node).addMetric(SumIds[Metric], S.Sum);
    if (Options.WithMin && S.Min != 0.0)
      Merged.node(Node).addMetric(MinIds[Metric], S.Min);
    if (Options.WithMax && S.Max != 0.0)
      Merged.node(Node).addMetric(MaxIds[Metric], S.Max);
    if (Options.WithMean && S.Mean != 0.0)
      Merged.node(Node).addMetric(MeanIds[Metric], S.Mean);
    if (Options.WithStddev && S.Stddev != 0.0)
      Merged.node(Node).addMetric(StddevIds[Metric], S.Stddev);
  }
  return Agg;
}

} // namespace

AggregatedProfile aggregate(std::span<const Profile *const> Profiles,
                            const AggregateOptions &Options,
                            const CancelToken &Cancel) {
  trace::Span Span("analysis/aggregate", "analysis");
  std::vector<AosInput> Inputs;
  Inputs.reserve(Profiles.size());
  for (const Profile *P : Profiles)
    Inputs.push_back(AosInput{P});
  return aggregateImpl(Inputs, Options, Cancel);
}

AggregatedProfile aggregate(std::span<const ColumnarProfile *const> Profiles,
                            const AggregateOptions &Options,
                            const CancelToken &Cancel) {
  trace::Span Span("analysis/aggregateColumnar", "analysis");
  std::vector<ColumnarInput> Inputs;
  Inputs.reserve(Profiles.size());
  for (const ColumnarProfile *C : Profiles)
    Inputs.emplace_back(*C);
  return aggregateImpl(Inputs, Options, Cancel);
}

} // namespace ev
