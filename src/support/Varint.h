//===- support/Varint.h - LEB128/zigzag integer coding --------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Protocol-Buffer-compatible base-128 varint and zigzag encoding. This is
/// the byte-level substrate for both the .evprof container format and the
/// pprof profile.proto reader/writer.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_SUPPORT_VARINT_H
#define EASYVIEW_SUPPORT_VARINT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace ev {

/// Appends \p Value to \p Out as a base-128 varint (little-endian groups of
/// seven bits, high bit set on continuation bytes).
void appendVarint(std::string &Out, uint64_t Value);

/// Zigzag-maps a signed value so small magnitudes encode small.
inline uint64_t zigzagEncode(int64_t Value) {
  return (static_cast<uint64_t>(Value) << 1) ^
         static_cast<uint64_t>(Value >> 63);
}

/// Inverse of zigzagEncode.
inline int64_t zigzagDecode(uint64_t Value) {
  return static_cast<int64_t>(Value >> 1) ^ -static_cast<int64_t>(Value & 1);
}

/// Appends a signed value using zigzag + varint.
void appendSignedVarint(std::string &Out, int64_t Value);

/// Incremental varint reader over a byte buffer.
///
/// Reads are bounds-checked; a malformed or truncated varint turns the
/// cursor into the failed state, which the caller observes via failed().
class VarintReader {
public:
  VarintReader(const char *Data, size_t Size)
      : Data(reinterpret_cast<const uint8_t *>(Data)), Size(Size) {}
  explicit VarintReader(const std::string &Buffer)
      : VarintReader(Buffer.data(), Buffer.size()) {}

  /// Reads the next varint. On malformed input sets the failed flag and
  /// returns 0.
  uint64_t readVarint();

  /// Reads a zigzag-encoded signed varint.
  int64_t readSignedVarint() { return zigzagDecode(readVarint()); }

  /// \returns true once any read ran past the buffer or saw >10 bytes.
  bool failed() const { return Failed; }

  /// \returns true when the cursor consumed the entire buffer.
  bool atEnd() const { return Pos >= Size; }

  size_t position() const { return Pos; }
  size_t size() const { return Size; }

  /// Advances the cursor by \p N bytes; fails when out of range.
  void skip(size_t N);

  /// \returns a pointer to the current byte, valid for remaining() bytes.
  const uint8_t *current() const { return Data + Pos; }
  size_t remaining() const { return Size - Pos; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace ev

#endif // EASYVIEW_SUPPORT_VARINT_H
