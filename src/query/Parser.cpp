//===- query/Parser.cpp - EVQL parser ---------------------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "query/Parser.h"

namespace ev {
namespace evql {

namespace {

/// Hard cap on expression nesting. Recursive descent means parser stack
/// frames scale with nesting depth; hostile input ("(((((...") must error
/// out, never overflow the stack.
constexpr unsigned MaxParseDepth = 500;

class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  Result<Program> parseProgram() {
    Program Prog;
    while (!lookingAt(TokenKind::EndOfInput)) {
      Result<Stmt> S = parseStatement();
      if (!S)
        return makeError(S.error());
      Prog.Statements.push_back(std::move(*S));
    }
    return Prog;
  }

  RecoveredProgram parseProgramRecover() {
    RecoveredProgram Out;
    while (!lookingAt(TokenKind::EndOfInput)) {
      Result<Stmt> S = parseStatement();
      if (!S) {
        Out.Errors.push_back(LastError);
        synchronize();
        continue;
      }
      Out.Prog.Statements.push_back(std::move(*S));
    }
    return Out;
  }

  Result<ExprPtr> parseSingleExpression() {
    Result<ExprPtr> E = parseExpr();
    if (!E)
      return E;
    if (!lookingAt(TokenKind::EndOfInput))
      return fail("trailing tokens after expression");
    return E;
  }

private:
  const Token &peek() const { return Tokens[Pos]; }
  const Token &advance() { return Tokens[Pos++]; }
  bool lookingAt(TokenKind Kind) const { return peek().Kind == Kind; }

  bool consume(TokenKind Kind) {
    if (!lookingAt(Kind))
      return false;
    ++Pos;
    return true;
  }

  static bool isStatementKeyword(TokenKind Kind) {
    switch (Kind) {
    case TokenKind::KwLet:
    case TokenKind::KwDerive:
    case TokenKind::KwPrune:
    case TokenKind::KwKeep:
    case TokenKind::KwPrint:
    case TokenKind::KwReturn:
      return true;
    default:
      return false;
    }
  }

  /// Panic-mode recovery: skip to just past the next ';', or stop early at
  /// a token that can only start a statement, so the next parseStatement()
  /// attempt starts on a plausible boundary.
  void synchronize() {
    while (!lookingAt(TokenKind::EndOfInput)) {
      if (consume(TokenKind::Semicolon))
        return;
      if (isStatementKeyword(peek().Kind))
        return;
      advance();
    }
  }

  Error fail(std::string Message) {
    LastError.Message = Message;
    LastError.Line = peek().Line;
    LastError.Column = peek().Column;
    return makeError(Message + " at line " + std::to_string(peek().Line) +
                     ":" + std::to_string(peek().Column));
  }

  Result<bool> expect(TokenKind Kind) {
    if (consume(Kind))
      return true;
    return fail("expected " + std::string(tokenKindName(Kind)) + ", found " +
                std::string(tokenKindName(peek().Kind)));
  }

  Result<Stmt> parseStatement() {
    Stmt S;
    S.Line = peek().Line;
    S.Column = peek().Column;
    switch (peek().Kind) {
    case TokenKind::KwLet:
    case TokenKind::KwDerive: {
      S.TheKind = peek().Kind == TokenKind::KwLet ? Stmt::Kind::Let
                                                  : Stmt::Kind::Derive;
      advance();
      if (!lookingAt(TokenKind::Identifier))
        return fail("expected name after 'let'/'derive'");
      S.Name = advance().Text;
      if (Result<bool> R = expect(TokenKind::Assign); !R)
        return makeError(R.error());
      Result<ExprPtr> E = parseExpr();
      if (!E)
        return makeError(E.error());
      S.Value = E.take();
      break;
    }
    case TokenKind::KwPrune:
    case TokenKind::KwKeep: {
      S.TheKind = peek().Kind == TokenKind::KwPrune ? Stmt::Kind::Prune
                                                    : Stmt::Kind::Keep;
      advance();
      if (Result<bool> R = expect(TokenKind::KwWhen); !R)
        return makeError(R.error());
      Result<ExprPtr> E = parseExpr();
      if (!E)
        return makeError(E.error());
      S.Value = E.take();
      break;
    }
    case TokenKind::KwPrint:
    case TokenKind::KwReturn: {
      S.TheKind = peek().Kind == TokenKind::KwPrint ? Stmt::Kind::Print
                                                    : Stmt::Kind::Return;
      advance();
      Result<ExprPtr> E = parseExpr();
      if (!E)
        return makeError(E.error());
      S.Value = E.take();
      break;
    }
    default:
      return fail("expected a statement ('let', 'derive', 'prune', 'keep', "
                  "'print', or 'return')");
    }
    if (Result<bool> R = expect(TokenKind::Semicolon); !R)
      return makeError(R.error());
    return S;
  }

  Result<ExprPtr> parseExpr() {
    if (Depth >= MaxParseDepth)
      return fail("expression nesting too deep");
    ++Depth;
    Result<ExprPtr> E = parseTernary();
    --Depth;
    return E;
  }

  Result<ExprPtr> parseTernary() {
    Result<ExprPtr> Cond = parseOr();
    if (!Cond)
      return Cond;
    if (!consume(TokenKind::Question))
      return Cond;
    Result<ExprPtr> Then = parseExpr();
    if (!Then)
      return Then;
    if (Result<bool> R = expect(TokenKind::Colon); !R)
      return makeError(R.error());
    Result<ExprPtr> Else = parseExpr();
    if (!Else)
      return Else;
    auto E = std::make_unique<Expr>();
    E->TheKind = Expr::Kind::Ternary;
    E->Line = (*Cond)->Line;
    E->Column = (*Cond)->Column;
    E->Operands.push_back(Cond.take());
    E->Operands.push_back(Then.take());
    E->Operands.push_back(Else.take());
    return E;
  }

  template <typename NextFn>
  Result<ExprPtr> parseLeftAssoc(NextFn Next,
                                 std::initializer_list<TokenKind> Ops) {
    Result<ExprPtr> Lhs = Next();
    if (!Lhs)
      return Lhs;
    while (true) {
      TokenKind Matched = TokenKind::EndOfInput;
      for (TokenKind Op : Ops)
        if (lookingAt(Op)) {
          Matched = Op;
          break;
        }
      if (Matched == TokenKind::EndOfInput)
        return Lhs;
      advance();
      Result<ExprPtr> Rhs = Next();
      if (!Rhs)
        return Rhs;
      auto E = std::make_unique<Expr>();
      E->TheKind = Expr::Kind::Binary;
      E->Op = Matched;
      E->Line = (*Lhs)->Line;
      E->Column = (*Lhs)->Column;
      E->Operands.push_back(Lhs.take());
      E->Operands.push_back(Rhs.take());
      Lhs = std::move(E);
    }
  }

  Result<ExprPtr> parseOr() {
    return parseLeftAssoc([this] { return parseAnd(); },
                          {TokenKind::PipePipe});
  }
  Result<ExprPtr> parseAnd() {
    return parseLeftAssoc([this] { return parseEquality(); },
                          {TokenKind::AmpAmp});
  }
  Result<ExprPtr> parseEquality() {
    return parseLeftAssoc([this] { return parseRelational(); },
                          {TokenKind::EqualEqual, TokenKind::BangEqual});
  }
  Result<ExprPtr> parseRelational() {
    return parseLeftAssoc([this] { return parseAdditive(); },
                          {TokenKind::Less, TokenKind::LessEqual,
                           TokenKind::Greater, TokenKind::GreaterEqual});
  }
  Result<ExprPtr> parseAdditive() {
    return parseLeftAssoc([this] { return parseMultiplicative(); },
                          {TokenKind::Plus, TokenKind::Minus});
  }
  Result<ExprPtr> parseMultiplicative() {
    return parseLeftAssoc([this] { return parseUnary(); },
                          {TokenKind::Star, TokenKind::Slash,
                           TokenKind::Percent});
  }

  Result<ExprPtr> parseUnary() {
    if (lookingAt(TokenKind::Minus) || lookingAt(TokenKind::Bang)) {
      if (Depth >= MaxParseDepth)
        return fail("expression nesting too deep");
      ++Depth;
      size_t OpLine = peek().Line;
      size_t OpColumn = peek().Column;
      TokenKind Op = advance().Kind;
      Result<ExprPtr> Operand = parseUnary();
      --Depth;
      if (!Operand)
        return Operand;
      auto E = std::make_unique<Expr>();
      E->TheKind = Expr::Kind::Unary;
      E->Op = Op;
      E->Line = OpLine;
      E->Column = OpColumn;
      E->Operands.push_back(Operand.take());
      return E;
    }
    return parsePrimary();
  }

  Result<ExprPtr> parsePrimary() {
    auto E = std::make_unique<Expr>();
    E->Line = peek().Line;
    E->Column = peek().Column;
    switch (peek().Kind) {
    case TokenKind::Number:
      E->TheKind = Expr::Kind::NumberLit;
      E->Number = advance().Number;
      return E;
    case TokenKind::String:
      E->TheKind = Expr::Kind::StringLit;
      E->Text = advance().Text;
      return E;
    case TokenKind::KwTrue:
    case TokenKind::KwFalse:
      E->TheKind = Expr::Kind::BoolLit;
      E->BoolValue = advance().Kind == TokenKind::KwTrue;
      return E;
    case TokenKind::LParen: {
      advance();
      Result<ExprPtr> Inner = parseExpr();
      if (!Inner)
        return Inner;
      if (Result<bool> R = expect(TokenKind::RParen); !R)
        return makeError(R.error());
      return Inner;
    }
    case TokenKind::Identifier: {
      E->Text = advance().Text;
      if (!consume(TokenKind::LParen)) {
        E->TheKind = Expr::Kind::Ident;
        return E;
      }
      E->TheKind = Expr::Kind::Call;
      if (consume(TokenKind::RParen))
        return E;
      while (true) {
        Result<ExprPtr> Arg = parseExpr();
        if (!Arg)
          return Arg;
        E->Operands.push_back(Arg.take());
        if (consume(TokenKind::Comma))
          continue;
        if (Result<bool> R = expect(TokenKind::RParen); !R)
          return makeError(R.error());
        return E;
      }
    }
    default:
      return fail("expected an expression, found " +
                  std::string(tokenKindName(peek().Kind)));
    }
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  unsigned Depth = 0;
  SyntaxError LastError;
};

} // namespace

Result<Program> parseProgram(std::string_view Source) {
  Result<std::vector<Token>> Tokens = lex(Source);
  if (!Tokens)
    return makeError(Tokens.error());
  return Parser(Tokens.take()).parseProgram();
}

RecoveredProgram parseProgramRecover(std::string_view Source) {
  Result<std::vector<Token>> Tokens = lex(Source);
  if (!Tokens) {
    // Lexical failures are not statement-recoverable: report the one error
    // with its position parsed back out of the message when possible.
    RecoveredProgram Out;
    SyntaxError E;
    E.Message = Tokens.error();
    Out.Errors.push_back(std::move(E));
    return Out;
  }
  return Parser(Tokens.take()).parseProgramRecover();
}

Result<ExprPtr> parseExpression(std::string_view Source) {
  Result<std::vector<Token>> Tokens = lex(Source);
  if (!Tokens)
    return makeError(Tokens.error());
  return Parser(Tokens.take()).parseSingleExpression();
}

} // namespace evql
} // namespace ev
