//===- bench/bench_ablation.cpp - Design-choice ablations -----------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the design choices DESIGN.md §4 calls out — the mechanisms
/// behind EasyView's Fig. 5 advantage:
///
///  1. string interning vs per-frame std::string keys;
///  2. lazy flame layout (min-width culling) vs full layout;
///  3. prefix-merged CCT construction (hashed child index) vs per-sample
///     linear child scans;
///  4. varint wire format vs fixed-width serialization.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "profile/ProfileBuilder.h"
#include "proto/EvProf.h"
#include "render/FlameLayout.h"
#include "support/Rng.h"
#include "workload/SyntheticProfile.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>

using namespace ev;

namespace {

Profile &testProfile() {
  static Profile P = [] {
    workload::SyntheticOptions Opt;
    Opt.TargetBytes = 8 << 20;
    return workload::generateSyntheticProfile(Opt);
  }();
  return P;
}

//===----------------------------------------------------------------------===
// Ablation 1: interning vs string keys when re-keying every frame.
//===----------------------------------------------------------------------===

void internedFrameKeys(benchmark::State &State) {
  Profile &P = testProfile();
  for (auto _ : State) {
    // Interned pipeline: group exclusive values by FrameRef (an int).
    std::vector<double> ByFrame(P.frames().size(), 0.0);
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
      if (!P.node(Id).Metrics.empty())
        ByFrame[P.node(Id).FrameRef] += P.node(Id).Metrics[0].Value;
    benchmark::DoNotOptimize(ByFrame.data());
  }
}
BENCHMARK(internedFrameKeys)->Unit(benchmark::kMillisecond);

void stringFrameKeys(benchmark::State &State) {
  Profile &P = testProfile();
  for (auto _ : State) {
    // Baseline pipeline: group by the frame's display string.
    std::map<std::string, double> ByName;
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
      if (!P.node(Id).Metrics.empty())
        ByName[std::string(P.nameOf(Id))] += P.node(Id).Metrics[0].Value;
    benchmark::DoNotOptimize(&ByName);
  }
}
BENCHMARK(stringFrameKeys)->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===
// Ablation 2: min-width culling vs full layout.
//===----------------------------------------------------------------------===

void layoutWithCulling(benchmark::State &State) {
  Profile &P = testProfile();
  size_t Rects = 0;
  for (auto _ : State) {
    FlameGraph G(P, 0); // Default: 1/4096 min width.
    Rects = G.rects().size();
    benchmark::DoNotOptimize(Rects);
  }
  State.counters["rects"] = static_cast<double>(Rects);
}
BENCHMARK(layoutWithCulling)->Unit(benchmark::kMillisecond);

void layoutFull(benchmark::State &State) {
  Profile &P = testProfile();
  FlameLayoutOptions Opt;
  Opt.MinWidth = 0.0; // Materialize every subpixel rectangle.
  size_t Rects = 0;
  for (auto _ : State) {
    FlameGraph G(P, 0, Opt);
    Rects = G.rects().size();
    benchmark::DoNotOptimize(Rects);
  }
  State.counters["rects"] = static_cast<double>(Rects);
}
BENCHMARK(layoutFull)->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===
// Ablation 3: hashed child index vs linear child scans during CCT build.
//===----------------------------------------------------------------------===

struct PathSet {
  std::vector<std::vector<FrameId>> Paths;
  Profile Skeleton; // Carries the interned frames.
};

PathSet &pathSet() {
  // Sampled-profile shape: a bounded set of code paths (templates), many
  // samples each, and high fanout near the root — the regime where the
  // hashed child index pays off over linear child-list scans.
  static PathSet S = [] {
    PathSet Out;
    Rng R(5);
    ProfileBuilder B("paths");
    (void)B.addMetric("m", "count");
    const size_t PoolSize = 2000;
    std::vector<FrameId> Pool;
    for (size_t I = 0; I < PoolSize; ++I)
      Pool.push_back(B.functionFrame("fn" + std::to_string(I)));
    std::vector<std::vector<FrameId>> Templates;
    for (int T = 0; T < 4000; ++T) {
      std::vector<FrameId> Path;
      unsigned Depth = static_cast<unsigned>(R.range(8, 20));
      for (unsigned D = 0; D < Depth; ++D)
        Path.push_back(Pool[R.below(Pool.size())]);
      Templates.push_back(std::move(Path));
    }
    for (int P = 0; P < 100000; ++P)
      Out.Paths.push_back(Templates[R.below(Templates.size())]);
    Out.Skeleton = B.take();
    return Out;
  }();
  return S;
}

void cctBuildHashedIndex(benchmark::State &State) {
  PathSet &S = pathSet();
  for (auto _ : State) {
    ProfileBuilder B("hashed");
    MetricId M = B.addMetric("m", "count");
    // Re-intern the frame pool (same for both variants).
    std::vector<FrameId> Pool;
    for (int I = 0; I < 2000; ++I)
      Pool.push_back(B.functionFrame("fn" + std::to_string(I)));
    for (const auto &Path : S.Paths)
      B.addSample(Path, M, 1.0);
    Profile P = B.take();
    benchmark::DoNotOptimize(P.nodeCount());
  }
}
BENCHMARK(cctBuildHashedIndex)->Unit(benchmark::kMillisecond);

void cctBuildLinearScan(benchmark::State &State) {
  PathSet &S = pathSet();
  for (auto _ : State) {
    // Naive insertion: scan the parent's child list per step.
    Profile P;
    MetricId M = P.addMetric("m", "count");
    std::vector<FrameId> Pool;
    for (int I = 0; I < 2000; ++I) {
      Frame F;
      F.Name = P.strings().intern("fn" + std::to_string(I));
      Pool.push_back(P.internFrame(F));
    }
    for (const auto &Path : S.Paths) {
      NodeId Cur = P.root();
      for (FrameId F : Path) {
        NodeId Next = InvalidNode;
        for (NodeId Child : P.node(Cur).Children)
          if (P.node(Child).FrameRef == F)
            Next = Child;
        Cur = Next == InvalidNode ? P.createNode(Cur, F) : Next;
      }
      P.node(Cur).addMetric(M, 1.0);
    }
    benchmark::DoNotOptimize(P.nodeCount());
  }
}
BENCHMARK(cctBuildLinearScan)->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===
// Ablation 4: varint wire format vs fixed-width serialization.
//===----------------------------------------------------------------------===

void serializeVarint(benchmark::State &State) {
  Profile &P = testProfile();
  size_t Bytes = 0;
  for (auto _ : State) {
    std::string Out = writeEvProf(P);
    Bytes = Out.size();
    benchmark::DoNotOptimize(Out.data());
  }
  State.counters["bytes"] = static_cast<double>(Bytes);
}
BENCHMARK(serializeVarint)->Unit(benchmark::kMillisecond);

void serializeFixedWidth(benchmark::State &State) {
  Profile &P = testProfile();
  size_t Bytes = 0;
  for (auto _ : State) {
    // Fixed-width strawman: 8 bytes per integer field, no varints.
    std::string Out;
    Out.reserve(P.nodeCount() * 24);
    auto Put64 = [&Out](uint64_t V) {
      for (int I = 0; I < 8; ++I)
        Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
    };
    for (NodeId Id = 0; Id < P.nodeCount(); ++Id) {
      const CCTNode &Node = P.node(Id);
      Put64(Node.Parent);
      Put64(Node.FrameRef);
      Put64(Node.Metrics.size());
      for (const MetricValue &MV : Node.Metrics) {
        Put64(MV.Metric);
        uint64_t Bits;
        static_assert(sizeof(Bits) == sizeof(MV.Value));
        std::memcpy(&Bits, &MV.Value, sizeof(Bits));
        Put64(Bits);
      }
    }
    Bytes = Out.size();
    benchmark::DoNotOptimize(Out.data());
  }
  State.counters["bytes"] = static_cast<double>(Bytes);
}
BENCHMARK(serializeFixedWidth)->Unit(benchmark::kMillisecond);

void printHeader() {
  bench::row("Ablations of DESIGN.md Sec4 (mechanisms behind Fig. 5):");
  bench::row("1. interned vs string frame keys  2. culled vs full layout");
  bench::row("3. hashed vs linear CCT build     4. varint vs fixed-width");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printHeader();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
