//===- examples/memory_leak_hunt.cpp - The Fig. 4 cloud case study --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's §VII-C1 workflow: PProf-style heap snapshots of
/// a gRPC client are aggregated into one tree; per-context histograms of
/// active memory over time expose the two leaking allocation sites
/// (transport.newBufWriter, bufio.NewReaderSize) while the heavy-but-
/// healthy passthrough context shows reclamation at the end of the run.
///
//===----------------------------------------------------------------------===//

#include "analysis/Aggregate.h"
#include "analysis/LeakDetector.h"
#include "render/Histogram.h"
#include "support/Strings.h"
#include "workload/GrpcLeakWorkload.h"

#include <cstdio>

using namespace ev;

int main() {
  // Capture a memory snapshot every 0.1 s during the benchmark run.
  workload::GrpcLeakWorkload W = workload::generateGrpcLeakWorkload();
  std::printf("captured %zu heap snapshots\n", W.Snapshots.size());

  // Aggregate all snapshots into a unified tree (paper §V-A(c)).
  std::vector<const Profile *> Inputs;
  for (const Profile &P : W.Snapshots)
    Inputs.push_back(&P);
  AggregateOptions Opt;
  Opt.WithMax = true;
  AggregatedProfile Agg = aggregate(Inputs, Opt);
  const Profile &Tree = Agg.merged();
  std::printf("aggregate tree: %zu contexts\n\n", Tree.nodeCount());

  // Rank leak suspects: contexts whose active bytes keep rising and are
  // never reclaimed.
  std::vector<LeakSuspect> Suspects = findLeakSuspects(Agg, 0);
  std::printf("=== leak suspects (ranked) ===\n");
  for (const LeakSuspect &S : Suspects) {
    const Frame &F = Tree.frameOf(S.Node);
    std::printf("%-28s score=%.2f final/peak=%.2f peak=%s\n",
                std::string(Tree.nameOf(S.Node)).c_str(), S.Score,
                S.FinalOverPeak,
                formatBytes(S.PeakBytes).c_str());
    if (F.Loc.hasSourceMapping())
      std::printf("    code link -> %s:%u\n",
                  std::string(Tree.text(F.Loc.File)).c_str(), F.Loc.Line);
    HistogramOptions H;
    H.Unit = "bytes";
    H.Height = 6;
    H.MaxBars = 60;
    std::printf("%s\n",
                renderHistogramAscii(Agg.perProfileInclusive(S.Node, 0), H)
                    .c_str());
  }

  // Contrast: the healthy passthrough context reclaims its memory.
  for (NodeId Id = 0; Id < Tree.nodeCount(); ++Id) {
    if (Tree.nameOf(Id) != "codec.passthrough")
      continue;
    std::printf("=== healthy context: codec.passthrough ===\n");
    HistogramOptions H;
    H.Unit = "bytes";
    H.Height = 6;
    H.MaxBars = 60;
    std::printf("%s\n",
                renderHistogramAscii(Agg.perProfileInclusive(Id, 0), H)
                    .c_str());
  }

  // Score against the generator's ground truth.
  size_t Found = 0;
  for (const std::string &Leak : W.LeakingFunctions)
    for (const LeakSuspect &S : Suspects)
      if (Tree.nameOf(S.Node) == Leak)
        ++Found;
  std::printf("detector found %zu of %zu true leaks, %zu suspects total\n",
              Found, W.LeakingFunctions.size(), Suspects.size());
  return Found == W.LeakingFunctions.size() ? 0 : 1;
}
