//===- tests/store_test.cpp - Out-of-core columnar store tests ------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The out-of-core columnar store (docs/PERF.md "Out-of-core columnar
/// store"): mmap helpers and their failure paths, the SoA segment
/// build/spill/map/materialize round trip, cross-profile string dedup, the
/// LRU budget policy, spill/fault behavior of a budgeted ProfileStore, the
/// byte-identity of columnar aggregation against the AoS path (including
/// across thread counts), and the pvp/stats memory attribution. Every
/// suite name starts with "Store" so the easyview_store ctest entry (also
/// run under both sanitizer presets) selects exactly this file.
///
//===----------------------------------------------------------------------===//

#include "analysis/Aggregate.h"
#include "analysis/FleetAggregate.h"
#include "ide/JsonRpc.h"
#include "ide/PvpServer.h"
#include "profile/Columnar.h"
#include "profile/ProfileStore.h"
#include "profile/StoreBudget.h"
#include "proto/EvProf.h"
#include "support/FileIo.h"
#include "support/ThreadPool.h"
#include "tool/CliDriver.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>

using namespace ev;

namespace {

/// Fresh per-test scratch directory under /tmp.
std::string testDir() {
  const ::testing::TestInfo *Info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string Dir = std::string("/tmp/evstore_test_") +
                    Info->test_suite_name() + "_" + Info->name();
  std::string Cmd = "rm -rf " + Dir + " && mkdir -p " + Dir;
  EXPECT_EQ(std::system(Cmd.c_str()), 0);
  return Dir;
}

} // namespace

//===----------------------------------------------------------------------===
// FileIo: mmap and preallocation helpers (and their failure paths).
//===----------------------------------------------------------------------===

TEST(StoreFileIo, MapMissingFileFails) {
  Result<MappedFile> M = MappedFile::map("/nonexistent/dir/nope.evcol");
  EXPECT_FALSE(M.ok());
  EXPECT_FALSE(M.error().empty());
}

TEST(StoreFileIo, MapZeroLengthFileIsValidAndEmpty) {
  std::string Path = testDir() + "/empty";
  ASSERT_TRUE(writeFile(Path, "").ok());
  Result<MappedFile> M = MappedFile::map(Path);
  ASSERT_TRUE(M.ok()) << M.error();
  EXPECT_TRUE(M->valid());
  EXPECT_EQ(M->size(), 0u);
  EXPECT_TRUE(M->bytes().empty());
}

TEST(StoreFileIo, MapRejectsSizeMismatchAsTruncated) {
  std::string Path = testDir() + "/short";
  ASSERT_TRUE(writeFile(Path, "0123456789").ok());
  Result<MappedFile> M = MappedFile::map(Path, /*ExpectedBytes=*/20);
  ASSERT_FALSE(M.ok());
  EXPECT_NE(M.error().find("truncated"), std::string::npos) << M.error();
  // The right size maps fine.
  Result<MappedFile> Ok = MappedFile::map(Path, 10);
  ASSERT_TRUE(Ok.ok()) << Ok.error();
  EXPECT_EQ(Ok->bytes(), "0123456789");
}

TEST(StoreFileIo, PreallocateGrowsAndNeverShrinks) {
  std::string Path = testDir() + "/prealloc";
  ASSERT_TRUE(preallocateFile(Path, 4096).ok());
  Result<std::string> Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());
  EXPECT_EQ(Bytes->size(), 4096u);
  // A smaller reservation must not truncate an existing extent.
  ASSERT_TRUE(preallocateFile(Path, 100).ok());
  Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());
  EXPECT_EQ(Bytes->size(), 4096u);
  EXPECT_FALSE(preallocateFile("/nonexistent/dir/prealloc", 16).ok());
}

//===----------------------------------------------------------------------===
// StoreBudget: the LRU accounting policy in isolation.
//===----------------------------------------------------------------------===

TEST(StoreBudgetPolicy, TracksChargesAndEvictionOrder) {
  StoreBudget B;
  B.setLimit(100);
  EXPECT_EQ(B.limit(), 100u);
  B.charge(1, 50);
  B.charge(2, 40);
  B.charge(3, 30);
  EXPECT_EQ(B.chargedBytes(), 120u);
  EXPECT_TRUE(B.overLimit());
  EXPECT_EQ(B.coldestFirst(), (std::vector<int64_t>{1, 2, 3}));
  // A touch promotes to most-recently-used.
  B.touch(1);
  EXPECT_EQ(B.coldestFirst(), (std::vector<int64_t>{2, 3, 1}));
  EXPECT_EQ(B.release(2), 40u);
  EXPECT_EQ(B.chargedBytes(), 80u);
  EXPECT_FALSE(B.overLimit());
  EXPECT_EQ(B.trackedCount(), 2u);
}

TEST(StoreBudgetPolicy, RechargeUpdatesCostWithoutPromoting) {
  StoreBudget B;
  B.setLimit(100);
  B.charge(1, 60);
  B.charge(2, 60);
  // Eviction shrinks the coldest entry's cost; that must NOT move it to
  // the warm end, or the evictor would churn through its own victims.
  B.recharge(1, 10);
  EXPECT_EQ(B.chargeOf(1), 10u);
  EXPECT_EQ(B.coldestFirst(), (std::vector<int64_t>{1, 2}));
  // charge() on an existing id, by contrast, is a use and promotes.
  B.charge(1, 20);
  EXPECT_EQ(B.coldestFirst(), (std::vector<int64_t>{2, 1}));
  EXPECT_EQ(B.chargedBytes(), 80u);
}

TEST(StoreBudgetPolicy, ZeroLimitNeverReportsOverLimit) {
  StoreBudget B;
  B.charge(1, 1u << 30);
  EXPECT_FALSE(B.overLimit());
}

//===----------------------------------------------------------------------===
// ColumnarProfile: build / spill / map / materialize round trips.
//===----------------------------------------------------------------------===

TEST(StoreColumnar, MaterializeIsByteIdentical) {
  SharedStringTable Shared;
  for (uint64_t Seed : {0u, 1u, 2u}) {
    Profile P = Seed == 0 ? test::makeFixedProfile()
                          : test::makeRandomProfile(Seed);
    std::string Ref = writeEvProf(P);
    ColumnarProfile C = ColumnarProfile::build(P, Shared);
    EXPECT_FALSE(C.isMapped());
    EXPECT_GT(C.residentBytes(), 0u);
    EXPECT_EQ(writeEvProf(C.materialize()), Ref) << "seed " << Seed;
  }
}

TEST(StoreColumnar, SpillMapRoundTripIsByteIdentical) {
  std::string Dir = testDir();
  SharedStringTable Shared;
  Profile P = test::makeRandomProfile(11);
  std::string Ref = writeEvProf(P);
  ColumnarProfile C = ColumnarProfile::build(P, Shared);

  std::string Path = Dir + "/seg.evcol";
  Result<uint64_t> Written = C.spillTo(Path);
  ASSERT_TRUE(Written.ok()) << Written.error();
  EXPECT_GT(*Written, 0u);

  Result<ColumnarProfile> Mapped = ColumnarProfile::mapFrom(Path, Shared);
  ASSERT_TRUE(Mapped.ok()) << Mapped.error();
  EXPECT_TRUE(Mapped->isMapped());
  EXPECT_EQ(writeEvProf(Mapped->materialize()), Ref);
}

TEST(StoreColumnar, MapRejectsTruncatedAndGarbageSegments) {
  std::string Dir = testDir();
  SharedStringTable Shared;
  Profile P = test::makeFixedProfile();
  ColumnarProfile C = ColumnarProfile::build(P, Shared);
  std::string Path = Dir + "/seg.evcol";
  ASSERT_TRUE(C.spillTo(Path).ok());

  Result<std::string> Bytes = readFile(Path);
  ASSERT_TRUE(Bytes.ok());

  // Truncated: the header promises more bytes than the file holds.
  std::string Truncated = Dir + "/truncated.evcol";
  ASSERT_TRUE(
      writeFile(Truncated, std::string_view(*Bytes).substr(0, 4100)).ok());
  EXPECT_FALSE(ColumnarProfile::mapFrom(Truncated, Shared).ok());

  // Wrong magic: not a segment at all.
  std::string Garbage = Dir + "/garbage.evcol";
  std::string Mangled = *Bytes;
  Mangled[0] = 'X';
  ASSERT_TRUE(writeFile(Garbage, Mangled).ok());
  EXPECT_FALSE(ColumnarProfile::mapFrom(Garbage, Shared).ok());

  // A valid file still maps after the rejections (the table was not
  // poisoned by the failed attempts).
  EXPECT_TRUE(ColumnarProfile::mapFrom(Path, Shared).ok());
}

TEST(StoreColumnar, CrossProfileStringDedupDoesNotGrowTable) {
  SharedStringTable Shared;
  Profile A = test::makeRandomProfile(5);
  ColumnarProfile CA = ColumnarProfile::build(A, Shared);
  size_t Count = Shared.size();
  size_t Payload = Shared.payloadBytes();
  EXPECT_GT(Payload, 0u);
  // A second profile with the same cohort of strings (same generator, same
  // seed) must intern nothing new: every name resolves to the shared ids.
  Profile B = test::makeRandomProfile(5);
  ColumnarProfile CB = ColumnarProfile::build(B, Shared);
  EXPECT_EQ(Shared.size(), Count);
  EXPECT_EQ(Shared.payloadBytes(), Payload);
}

//===----------------------------------------------------------------------===
// ProfileStore under a byte budget: spill, fault, and accounting.
//===----------------------------------------------------------------------===

TEST(StoreBudgeted, UnbudgetedStoreStaysPureAos) {
  ProfileStore Store;
  Store.add(test::makeFixedProfile());
  StoreStats S = Store.stats();
  EXPECT_EQ(S.Profiles, 1u);
  EXPECT_EQ(S.BudgetBytes, 0u);
  EXPECT_EQ(S.ColumnarBytes, 0u);
  EXPECT_GT(S.AosBytes, 0u);
  EXPECT_EQ(S.ResidentBytes, S.AosBytes);
  EXPECT_EQ(S.Spills, 0u);
}

TEST(StoreBudgeted, SetBudgetRequiresSpillDir) {
  ProfileStore Store;
  EXPECT_FALSE(Store.setBudget(1024, "").ok());
  // Disabling (0 bytes) needs no directory.
  EXPECT_TRUE(Store.setBudget(0, "").ok());
}

TEST(StoreBudgeted, GetAfterSpillIsByteIdentical) {
  std::string Dir = testDir();
  ProfileStore Store;
  std::vector<std::string> Refs;
  std::vector<int64_t> Ids;
  for (uint64_t Seed : {21u, 22u, 23u}) {
    Profile P = test::makeRandomProfile(Seed);
    Refs.push_back(writeEvProf(P));
    Ids.push_back(Store.add(std::move(P)));
  }
  // A 1-byte budget can keep nothing resident: everything spills.
  ASSERT_TRUE(Store.setBudget(1, Dir).ok());
  StoreStats S = Store.stats();
  EXPECT_GE(S.Spills, 3u);
  EXPECT_GE(S.SpilledBytes, 3 * 4096u);
  EXPECT_FALSE(listDirectory(Dir)->empty());

  // Faulting each profile back (mmap + rematerialize) reproduces the
  // original bytes exactly — spilling is lossless.
  for (size_t I = 0; I < Ids.size(); ++I) {
    std::shared_ptr<const Profile> P = Store.get(Ids[I]);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(writeEvProf(*P), Refs[I]) << "profile " << I;
  }
  EXPECT_GE(Store.stats().Faults, 3u);
}

TEST(StoreBudgeted, SweepStaysUnderBudgetWithFaults) {
  std::string Dir = testDir();
  ProfileStore Store;
  std::vector<int64_t> Ids;
  for (uint64_t Seed = 0; Seed < 12; ++Seed)
    Ids.push_back(Store.add(test::makeRandomProfile(Seed + 100)));
  uint64_t Unbudgeted = Store.stats().ResidentBytes;
  // A third of the working set: the sweep below cannot fit everything, so
  // cold profiles must spill and fault back as the scan revisits them.
  uint64_t Budget = Unbudgeted / 3;
  ASSERT_TRUE(Store.setBudget(Budget, Dir).ok());

  for (int Round = 0; Round < 2; ++Round)
    for (int64_t Id : Ids) {
      ASSERT_NE(Store.columnar(Id), nullptr);
      EXPECT_LE(Store.stats().ResidentBytes, Budget);
    }
  StoreStats S = Store.stats();
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_GT(S.Faults, 0u);
  EXPECT_GT(S.Spills, 0u);
  EXPECT_EQ(S.SpillFailures, 0u);
  // Shared strings are deduplicated across the cohort and excluded from
  // the budgeted resident bytes.
  EXPECT_GT(S.SharedStringBytes, 0u);
}

TEST(StoreBudgeted, DropAndDestructionRemoveSpillFiles) {
  std::string Dir = testDir();
  {
    ProfileStore Store;
    int64_t A = Store.add(test::makeRandomProfile(31));
    Store.add(test::makeRandomProfile(32));
    ASSERT_TRUE(Store.setBudget(1, Dir).ok());
    Result<std::vector<std::string>> Files = listDirectory(Dir);
    ASSERT_TRUE(Files.ok());
    EXPECT_EQ(Files->size(), 2u);
    EXPECT_TRUE(Store.drop(A));
    Files = listDirectory(Dir);
    ASSERT_TRUE(Files.ok());
    EXPECT_EQ(Files->size(), 1u);
  }
  // The destructor cleans up whatever was still spilled.
  Result<std::vector<std::string>> Files = listDirectory(Dir);
  ASSERT_TRUE(Files.ok());
  EXPECT_TRUE(Files->empty());
}

//===----------------------------------------------------------------------===
// Aggregation straight from columns: byte-identical to the AoS path.
//===----------------------------------------------------------------------===

namespace {

/// Builds AoS profiles for \p Seeds plus their columnar twins over one
/// shared string table.
struct AggFixture {
  std::vector<Profile> Aos;
  std::deque<ColumnarProfile> Cols; // deque: stable addresses while growing.
  SharedStringTable Shared;
  std::vector<const Profile *> AosPtrs;
  std::vector<const ColumnarProfile *> ColPtrs;

  explicit AggFixture(std::initializer_list<uint64_t> Seeds) {
    for (uint64_t Seed : Seeds)
      Aos.push_back(test::makeRandomProfile(Seed));
    for (const Profile &P : Aos) {
      Cols.push_back(ColumnarProfile::build(P, Shared));
      AosPtrs.push_back(&P);
      ColPtrs.push_back(&Cols.back());
    }
  }
};

} // namespace

TEST(StoreAggregate, ColumnarMatchesAosByteForByte) {
  AggFixture F({41, 42, 43, 44});
  AggregateOptions Opt;
  Opt.WithMin = Opt.WithMax = Opt.WithMean = Opt.WithStddev = true;
  AggregatedProfile A = aggregate(F.AosPtrs, Opt);
  AggregatedProfile C = aggregate(F.ColPtrs, Opt);
  EXPECT_EQ(writeEvProf(A.merged()), writeEvProf(C.merged()));
  ASSERT_EQ(A.profileCount(), C.profileCount());
  ASSERT_EQ(A.inputMetricCount(), C.inputMetricCount());
  // The per-profile matrices behind the histogram view agree too.
  for (NodeId N = 0; N < A.merged().nodeCount(); ++N)
    for (MetricId M = 0; M < A.inputMetricCount(); ++M) {
      EXPECT_EQ(A.perProfileExclusive(N, M), C.perProfileExclusive(N, M));
      EXPECT_EQ(A.perProfileInclusive(N, M), C.perProfileInclusive(N, M));
    }
}

TEST(StoreAggregate, ColumnarIsByteIdenticalAcrossThreadCounts) {
  AggFixture F({51, 52, 53});
  AggregateOptions Opt;
  Opt.WithMin = Opt.WithMax = Opt.WithMean = true;
  // EV_THREADS=0 (inline sequential) vs 4 workers: the thread-count
  // byte-identity contract extends to the columnar read path.
  ThreadPool::setSharedThreadCount(0);
  std::string Sequential = writeEvProf(aggregate(F.ColPtrs, Opt).merged());
  ThreadPool::setSharedThreadCount(4);
  std::string Parallel = writeEvProf(aggregate(F.ColPtrs, Opt).merged());
  ThreadPool::setSharedThreadCount(ThreadPool::configuredThreads());
  EXPECT_EQ(Sequential, Parallel);
}

TEST(StoreCohort, ColumnarAddMatchesAosStatistics) {
  AggFixture F({61, 62, 63});
  CohortAccumulator FromAos, FromCols;
  for (const Profile *P : F.AosPtrs)
    FromAos.add(*P);
  for (const ColumnarProfile *C : F.ColPtrs)
    FromCols.add(*C);

  ASSERT_EQ(FromAos.profileCount(), FromCols.profileCount());
  ASSERT_EQ(writeEvProf(FromAos.shape()), writeEvProf(FromCols.shape()));
  for (NodeId N = 0; N < FromAos.shape().nodeCount(); ++N)
    for (MetricId M = 0; M < FromAos.shape().metrics().size(); ++M) {
      CohortNodeStats A = FromAos.stats(N, M);
      CohortNodeStats B = FromCols.stats(N, M);
      EXPECT_EQ(A.Profiles, B.Profiles);
      EXPECT_EQ(A.Present, B.Present);
      EXPECT_EQ(A.Sum, B.Sum);
      EXPECT_EQ(A.Mean, B.Mean);
      EXPECT_EQ(A.Stddev, B.Stddev);
      EXPECT_EQ(A.Min, B.Min);
      EXPECT_EQ(A.Max, B.Max);
    }
  for (MetricId M = 0; M < FromAos.shape().metrics().size(); ++M)
    EXPECT_EQ(FromAos.inclusiveSumColumn(M), FromCols.inclusiveSumColumn(M));
}

//===----------------------------------------------------------------------===
// pvp/stats: cache memory and store memory attributed separately, and a
// budgeted session aggregates a cohort while staying under budget.
//===----------------------------------------------------------------------===

namespace {

json::Object statsOf(PvpServer &Server) {
  json::Value Resp =
      Server.handleMessage(rpc::makeRequest(99, "pvp/stats", json::Object()));
  const json::Value *R = Resp.asObject().find("result");
  EXPECT_NE(R, nullptr);
  return R->asObject();
}

} // namespace

TEST(StorePvp, StatsSeparateCacheBytesFromStoreBytes) {
  PvpServer Server;
  int64_t Id = Server.addProfile(test::makeFixedProfile());
  json::Object S = statsOf(Server);
  ASSERT_NE(S.find("cacheBytes"), nullptr);
  ASSERT_NE(S.find("storeResidentBytes"), nullptr);
  EXPECT_EQ(S.find("cacheBytes")->asInt(), 0);
  EXPECT_GT(S.find("storeResidentBytes")->asInt(), 0);
  EXPECT_EQ(S.find("storeBudgetBytes")->asInt(), 0);

  // A memoized view shows up as cache memory, not store memory.
  json::Object Params;
  Params.set("profile", Id);
  Server.handleMessage(rpc::makeRequest(1, "pvp/flame", std::move(Params)));
  json::Object After = statsOf(Server);
  EXPECT_GT(After.find("cacheBytes")->asInt(), 0);
  EXPECT_EQ(After.find("storeResidentBytes")->asInt(),
            S.find("storeResidentBytes")->asInt());
}

TEST(StorePvp, BudgetedSessionAggregatesCohortUnderBudget) {
  // Ten snapshots of the same workload (identical shape, so the merged
  // tree is the size of ONE profile and fits the budget even while pinned
  // as the freshly derived result; the ten inputs together are ~3x the
  // budget and must spill).
  std::vector<Profile> Cohort;
  for (int I = 0; I < 10; ++I)
    Cohort.push_back(test::makeRandomProfile(200, /*Paths=*/60));

  auto RunAggregate = [](PvpServer &Server,
                         const std::vector<Profile> &Cohort) {
    json::Array Ids;
    for (const Profile &P : Cohort)
      Ids.push_back(Server.addProfile(P));
    json::Object Params;
    Params.set("profiles", std::move(Ids));
    json::Value Resp = Server.handleMessage(
        rpc::makeRequest(1, "pvp/aggregate", std::move(Params)));
    const json::Value *R = Resp.asObject().find("result");
    EXPECT_NE(R, nullptr) << Resp.dump();
    return R ? R->asObject().find("nodes")->asInt() : -1;
  };

  PvpServer Plain;
  int64_t PlainNodes = RunAggregate(Plain, Cohort);

  ProfileStore Probe;
  for (const Profile &P : Cohort)
    Probe.add(P);
  uint64_t Budget = Probe.stats().ResidentBytes / 3;

  ServerLimits Limits;
  Limits.StoreBudgetBytes = Budget;
  Limits.SpillDir = testDir();
  PvpServer Budgeted(Limits);
  EXPECT_EQ(RunAggregate(Budgeted, Cohort), PlainNodes);

  json::Object S = statsOf(Budgeted);
  EXPECT_EQ(static_cast<uint64_t>(S.find("storeBudgetBytes")->asInt()),
            Budget);
  EXPECT_LE(S.find("storeResidentBytes")->asInt(),
            S.find("storeBudgetBytes")->asInt());
  EXPECT_GT(S.find("storeSpills")->asInt(), 0);
  EXPECT_EQ(S.find("storeResidentBytes")->asInt(),
            S.find("storeAosBytes")->asInt() +
                S.find("storeColumnarBytes")->asInt());
}

TEST(StoreTool, EvtoolStoreStatsReportsBudgetedMemory) {
  std::string Dir = testDir();
  std::string Spill = Dir + "/spill";
  ASSERT_EQ(std::system(("mkdir -p " + Spill).c_str()), 0);
  for (uint64_t Seed : {71u, 72u, 73u})
    ASSERT_TRUE(writeFile(Dir + "/p" + std::to_string(Seed) + ".evprof",
                          writeEvProf(test::makeRandomProfile(Seed)))
                    .ok());

  auto Run = [](std::vector<std::string> Args, std::string &Out,
                std::string &Err) { return tool::runEvTool(Args, Out, Err); };
  std::string Out, Err;
  // --stats is mandatory; a budget without a spill dir is a usage error.
  EXPECT_EQ(Run({"store", Dir}, Out, Err), tool::ExitUsageError);
  EXPECT_EQ(Run({"store", "--stats", Dir, "--budget", "4096"}, Out, Err),
            tool::ExitUsageError);

  Out.clear();
  Err.clear();
  ASSERT_EQ(Run({"store", "--stats", Dir, "--budget", "8192", "--spill-dir",
                 Spill},
                Out, Err),
            0)
      << Err;
  EXPECT_NE(Out.find("profiles:       3"), std::string::npos) << Out;
  EXPECT_NE(Out.find("budget:         8.0 KB"), std::string::npos) << Out;
  EXPECT_NE(Out.find("shared strings:"), std::string::npos);
  EXPECT_EQ(Out.find("spilled:        0 B"), std::string::npos)
      << "three profiles under an 8 KB budget must spill:\n"
      << Out;
  // The store's destructor removed its segments on exit.
  Result<std::vector<std::string>> Left = listDirectory(Spill);
  ASSERT_TRUE(Left.ok());
  EXPECT_TRUE(Left->empty());

  Out.clear();
  Err.clear();
  EXPECT_EQ(Run({"store", "--stats", Dir + "/pnope.evprof"}, Out, Err),
            tool::ExitDataError);
}

TEST(StorePvp, BudgetedRegressionsStreamColumnarCohorts) {
  std::vector<Profile> Base, Test;
  for (uint64_t Seed = 0; Seed < 6; ++Seed) {
    Base.push_back(test::makeRandomProfile(Seed + 300, /*Paths=*/60));
    Test.push_back(test::makeRandomProfile(Seed + 300, /*Paths=*/60));
  }

  auto Run = [](PvpServer &Server, const std::vector<Profile> &Base,
                const std::vector<Profile> &Test) {
    json::Array BaseIds, TestIds;
    for (const Profile &P : Base)
      BaseIds.push_back(Server.addProfile(P));
    for (const Profile &P : Test)
      TestIds.push_back(Server.addProfile(P));
    json::Object Params;
    Params.set("base", std::move(BaseIds));
    Params.set("test", std::move(TestIds));
    json::Value Resp = Server.handleMessage(
        rpc::makeRequest(1, "pvp/regressions", std::move(Params)));
    const json::Value *R = Resp.asObject().find("result");
    EXPECT_NE(R, nullptr) << Resp.dump();
    return R ? R->dump() : std::string();
  };

  PvpServer Plain;
  std::string Expected = Run(Plain, Base, Test);

  ProfileStore Probe;
  for (const Profile &P : Base)
    Probe.add(P);
  ServerLimits Limits;
  Limits.StoreBudgetBytes = Probe.stats().ResidentBytes / 2;
  Limits.SpillDir = testDir();
  PvpServer Budgeted(Limits);
  // Streaming the cohorts from columnar segments must not change a single
  // byte of the findings.
  EXPECT_EQ(Run(Budgeted, Base, Test), Expected);
  json::Object S = statsOf(Budgeted);
  EXPECT_LE(S.find("storeResidentBytes")->asInt(),
            S.find("storeBudgetBytes")->asInt());
}
