//===- ide/ViewDelta.cpp - Compact node/metric deltas between views -------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ide/ViewDelta.h"

#include "support/ProtoWire.h"

#include <cstring>
#include <map>
#include <set>
#include <vector>

namespace ev {

namespace {

// Outer ViewDelta message fields.
enum : uint32_t {
  FVersion = 1,      // varint, currently 1
  FFromGen = 2,      // varint
  FToGen = 3,        // varint
  FRowsKey = 4,      // bytes
  FFull = 5,         // bytes: full-reply JSON; presence means fallback
  FRowField = 6,     // repeated bytes: row key schema, in key order
  FRemoved = 7,      // packed varints: node ids dropped from the view
  FRowPatch = 8,     // repeated bytes (RowPatch)
  FOrder = 9,        // packed varints: node ids of the final rows array
  FScalarPatch = 10, // repeated bytes (ScalarPatch)
  FColPatch = 11,    // repeated bytes (ColumnPatch)
};

// ColumnPatch fields: a whole row field replaced in one packed column.
// When most rows change the same double-backed field (an appended section
// renormalizes every flame rect's x/width), per-row FieldPatches pay a
// tag + key + envelope per row; a column pays exactly 8 bytes per row of
// the final order. Values align 1:1 with FOrder.
enum : uint32_t {
  FColKey = 1, // varint: index into the row key schema
  FColDbl = 2, // bytes: packed little-endian fixed64 doubles, |FOrder| of them
};

// RowPatch fields.
enum : uint32_t {
  FPatchNode = 1,  // varint
  FPatchField = 2, // repeated bytes (FieldPatch)
};

// FieldPatch fields: the key index plus exactly one value alternative.
// Int-backed and double-backed JSON numbers serialize differently
// (support/Json.cpp dumps IntValue vs NumberValue), so the patch keeps
// them distinct: ints as zigzag varints, doubles as raw fixed64 bits.
enum : uint32_t {
  FFieldKey = 1,  // varint: index into the row key schema
  FFieldInt = 2,  // sint64
  FFieldDbl = 3,  // fixed64
  FFieldStr = 4,  // bytes
  FFieldBool = 5, // varint 0/1
  FFieldNull = 6, // varint 1
};

// ScalarPatch fields.
enum : uint32_t {
  FScalarKey = 1,  // bytes
  FScalarJson = 2, // bytes: compact JSON of the new value
};

constexpr uint64_t DeltaVersion = 1;

/// Dump-based equality: two values are "unchanged" exactly when they
/// serialize to the same bytes, which is the identity the codec promises.
bool sameDump(const json::Value &A, const json::Value &B) {
  return A.dump() == B.dump();
}

/// A field value the patch encoding supports: flat scalars only. Nested
/// arrays/objects inside a row force the full-reply fallback.
bool encodableField(const json::Value &V) {
  switch (V.kind()) {
  case json::Kind::Null:
  case json::Kind::Bool:
  case json::Kind::Number:
  case json::Kind::String:
    return true;
  default:
    return false;
  }
}

void writeFieldPatch(ProtoWriter &Row, size_t KeyIndex,
                     const json::Value &V) {
  ProtoWriter F;
  F.writeVarint(FFieldKey, KeyIndex);
  switch (V.kind()) {
  case json::Kind::Null:
    F.writeVarint(FFieldNull, 1);
    break;
  case json::Kind::Bool:
    F.writeVarint(FFieldBool, V.asBool() ? 1 : 0);
    break;
  case json::Kind::Number:
    if (V.isInteger())
      F.writeSignedVarint(FFieldInt, V.asInt());
    else
      F.writeDouble(FFieldDbl, V.asNumber());
    break;
  case json::Kind::String:
    F.writeBytes(FFieldStr, V.asString());
    break;
  default:
    break; // Excluded by encodableField.
  }
  Row.writeBytes(FPatchField, F.buffer());
}

/// Top-level key sequence of an object reply, in order.
std::vector<std::string_view> keySequence(const json::Object &O) {
  std::vector<std::string_view> Keys;
  Keys.reserve(O.size());
  for (const auto &Member : O)
    Keys.push_back(Member.first);
  return Keys;
}

/// Validates one rows array against the shared schema (establishing it
/// from the first row seen) and indexes rows by their unique integer
/// "node" key. \returns false when the array does not fit the uniform
/// table shape the patch encoding needs.
bool indexRows(const json::Array &Rows, std::vector<std::string> &Schema,
               bool &SchemaSet,
               std::map<uint64_t, const json::Object *> &ById,
               std::vector<uint64_t> &Ids) {
  for (const json::Value &RowV : Rows) {
    if (!RowV.isObject())
      return false;
    const json::Object &Row = RowV.asObject();
    if (!SchemaSet) {
      for (const auto &Member : Row)
        Schema.push_back(Member.first);
      SchemaSet = true;
    }
    if (Row.size() != Schema.size())
      return false;
    size_t I = 0;
    for (const auto &Member : Row) {
      if (Member.first != Schema[I++])
        return false;
      if (!encodableField(Member.second))
        return false;
    }
    const json::Value *Node = Row.find("node");
    int64_t Id = 0;
    if (!Node || !Node->getInteger(Id) || Id < 0)
      return false;
    if (!ById.emplace(static_cast<uint64_t>(Id), &Row).second)
      return false; // Duplicate node id: not a keyed table.
    Ids.push_back(static_cast<uint64_t>(Id));
  }
  return true;
}

} // namespace

std::string encodeViewDelta(const json::Value &Base, const json::Value &Next,
                            std::string_view RowsKey, uint64_t FromGen,
                            uint64_t ToGen, ViewDeltaStats *Stats) {
  ViewDeltaStats Local;
  ProtoWriter W;
  W.writeVarint(FVersion, DeltaVersion);
  W.writeVarint(FFromGen, FromGen);
  W.writeVarint(FToGen, ToGen);
  W.writeBytes(FRowsKey, RowsKey);

  auto Fallback = [&]() -> std::string {
    Local.FullFallback = true;
    W.writeBytes(FFull, Next.dump());
    if (Stats)
      *Stats = Local;
    return W.takeBuffer();
  };

  if (!Base.isObject() || !Next.isObject())
    return Fallback();
  const json::Object &BaseObj = Base.asObject();
  const json::Object &NextObj = Next.asObject();
  // The delta only patches values in place, never reshapes the reply: a
  // changed key sequence (params changed what the view reports) falls
  // back to the full reply.
  if (keySequence(BaseObj) != keySequence(NextObj))
    return Fallback();

  const json::Value *BaseRows = BaseObj.find(RowsKey);
  const json::Value *NextRows = NextObj.find(RowsKey);
  if (!BaseRows || !NextRows || !BaseRows->isArray() || !NextRows->isArray())
    return Fallback();

  std::vector<std::string> Schema;
  bool SchemaSet = false;
  std::map<uint64_t, const json::Object *> BaseById, NextById;
  std::vector<uint64_t> BaseIds, NextIds;
  // The next view establishes the schema (new rows must be fully
  // expressible in it); the base must match it exactly.
  if (!indexRows(NextRows->asArray(), Schema, SchemaSet, NextById, NextIds) ||
      !indexRows(BaseRows->asArray(), Schema, SchemaSet, BaseById, BaseIds))
    return Fallback();

  for (const std::string &Key : Schema)
    W.writeBytes(FRowField, Key);

  // Column candidates: a field every next row backs with a double, where
  // at least half the rows changed it. Such fields (flame's normalized
  // x/width after any append) dominate per-row patches; packing them as
  // one fixed64 column costs 8 bytes per row with no per-row envelope.
  // Unchanged rows re-encode their identical bits, so applying stays
  // byte-exact.
  std::vector<bool> InColumn(Schema.size(), false);
  for (size_t I = 0; I < Schema.size() && !NextIds.empty(); ++I) {
    if (Schema[I] == "node")
      continue;
    bool AllDouble = true;
    size_t Changed = 0;
    for (uint64_t Id : NextIds) {
      const json::Value *V = NextById[Id]->find(Schema[I]);
      if (!V || !V->isNumber() || V->isInteger()) {
        AllDouble = false;
        break;
      }
      auto BaseIt = BaseById.find(Id);
      const json::Value *Old =
          BaseIt == BaseById.end() ? nullptr : BaseIt->second->find(Schema[I]);
      if (!Old || !sameDump(*Old, *V))
        ++Changed;
    }
    if (AllDouble && Changed > 0 && Changed * 2 >= NextIds.size())
      InColumn[I] = true;
  }

  for (uint64_t Id : NextIds) {
    const json::Object &Row = *NextById[Id];
    auto BaseIt = BaseById.find(Id);
    ProtoWriter RowW;
    RowW.writeVarint(FPatchNode, Id);
    if (BaseIt == BaseById.end()) {
      // New row: carry every field not already covered by a column, in
      // schema order.
      size_t I = 0;
      for (const auto &Member : Row) {
        if (!InColumn[I])
          writeFieldPatch(RowW, I, Member.second);
        ++I;
      }
      ++Local.RowsAdded;
      W.writeBytes(FRowPatch, RowW.buffer());
      continue;
    }
    const json::Object &BaseRow = *BaseIt->second;
    size_t Patched = 0, I = 0;
    for (const auto &Member : Row) {
      const json::Value *Old = BaseRow.find(Member.first);
      if (!InColumn[I] && (!Old || !sameDump(*Old, Member.second))) {
        writeFieldPatch(RowW, I, Member.second);
        ++Patched;
      }
      ++I;
    }
    if (Patched) {
      ++Local.RowsPatched;
      W.writeBytes(FRowPatch, RowW.buffer());
    }
  }

  std::vector<uint64_t> Removed;
  for (uint64_t Id : BaseIds)
    if (!NextById.count(Id))
      Removed.push_back(Id);
  Local.RowsRemoved = Removed.size();
  if (!Removed.empty())
    W.writePackedVarints(FRemoved, Removed.data(), Removed.size());
  if (!NextIds.empty())
    W.writePackedVarints(FOrder, NextIds.data(), NextIds.size());

  for (size_t I = 0; I < Schema.size(); ++I) {
    if (!InColumn[I])
      continue;
    std::string Packed;
    Packed.reserve(NextIds.size() * 8);
    for (uint64_t Id : NextIds) {
      double V = NextById[Id]->find(Schema[I])->asNumber();
      uint64_t Bits;
      static_assert(sizeof(Bits) == sizeof(V));
      std::memcpy(&Bits, &V, sizeof(Bits));
      for (unsigned B = 0; B < 8; ++B)
        Packed.push_back(static_cast<char>((Bits >> (8 * B)) & 0xFF));
    }
    ProtoWriter C;
    C.writeVarint(FColKey, I);
    C.writeBytes(FColDbl, Packed);
    W.writeBytes(FColPatch, C.buffer());
    ++Local.ColumnsPatched;
  }

  for (const auto &Member : NextObj) {
    if (Member.first == RowsKey)
      continue;
    const json::Value *Old = BaseObj.find(Member.first);
    if (Old && sameDump(*Old, Member.second))
      continue;
    ProtoWriter S;
    S.writeBytes(FScalarKey, Member.first);
    S.writeBytes(FScalarJson, Member.second.dump());
    W.writeBytes(FScalarPatch, S.buffer());
    ++Local.ScalarsPatched;
  }

  if (Stats)
    *Stats = Local;
  return W.takeBuffer();
}

namespace {

/// One packed column: a schema field replaced across every ordered row.
struct DecodedColumn {
  uint64_t Key = 0;
  std::vector<double> Values; ///< One per FOrder entry, same order.
};

/// Everything decoded from the outer message in one pass.
struct DecodedDelta {
  uint64_t Version = 0;
  uint64_t FromGen = 0;
  uint64_t ToGen = 0;
  std::string RowsKey;
  bool HasFull = false;
  std::string Full;
  std::vector<std::string> Schema;
  std::vector<uint64_t> Removed;
  std::vector<std::string> RowPatches;
  std::vector<uint64_t> Order;
  std::vector<std::pair<std::string, std::string>> Scalars;
  std::vector<DecodedColumn> Columns;
};

Result<bool> readPacked(std::string_view Bytes, std::vector<uint64_t> &Out) {
  VarintReader VR(Bytes.data(), Bytes.size());
  while (!VR.atEnd() && !VR.failed())
    Out.push_back(VR.readVarint());
  if (VR.failed())
    return makeError("malformed packed id list in view delta");
  return true;
}

Result<DecodedDelta> decodeDelta(std::string_view Delta) {
  DecodedDelta D;
  ProtoReader R(Delta);
  while (R.next()) {
    switch (R.fieldNumber()) {
    case FVersion:
      D.Version = R.varint();
      break;
    case FFromGen:
      D.FromGen = R.varint();
      break;
    case FToGen:
      D.ToGen = R.varint();
      break;
    case FRowsKey:
      D.RowsKey = std::string(R.bytes());
      break;
    case FFull:
      D.HasFull = true;
      D.Full = std::string(R.bytes());
      break;
    case FRowField:
      D.Schema.push_back(std::string(R.bytes()));
      break;
    case FRemoved:
      if (Result<bool> P = readPacked(R.bytes(), D.Removed); !P)
        return makeError(P.error());
      break;
    case FRowPatch:
      D.RowPatches.push_back(std::string(R.bytes()));
      break;
    case FOrder:
      if (Result<bool> P = readPacked(R.bytes(), D.Order); !P)
        return makeError(P.error());
      break;
    case FScalarPatch: {
      std::string Key, Json;
      ProtoReader S(R.bytes());
      while (S.next()) {
        switch (S.fieldNumber()) {
        case FScalarKey:
          Key = std::string(S.bytes());
          break;
        case FScalarJson:
          Json = std::string(S.bytes());
          break;
        default:
          S.skip();
        }
      }
      if (S.failed())
        return makeError("malformed scalar patch in view delta");
      D.Scalars.emplace_back(std::move(Key), std::move(Json));
      break;
    }
    case FColPatch: {
      DecodedColumn Col;
      ProtoReader C(R.bytes());
      while (C.next()) {
        switch (C.fieldNumber()) {
        case FColKey:
          Col.Key = C.varint();
          break;
        case FColDbl: {
          std::string_view Packed = C.bytes();
          if (Packed.size() % 8 != 0)
            return makeError("misaligned column patch in view delta");
          Col.Values.reserve(Packed.size() / 8);
          for (size_t Off = 0; Off < Packed.size(); Off += 8) {
            uint64_t Bits = 0;
            for (unsigned B = 0; B < 8; ++B)
              Bits |= static_cast<uint64_t>(
                          static_cast<uint8_t>(Packed[Off + B]))
                      << (8 * B);
            double V;
            std::memcpy(&V, &Bits, sizeof(V));
            Col.Values.push_back(V);
          }
          break;
        }
        default:
          C.skip();
        }
      }
      if (C.failed())
        return makeError("malformed column patch in view delta");
      D.Columns.push_back(std::move(Col));
      break;
    }
    default:
      R.skip();
    }
  }
  if (R.failed())
    return makeError("malformed view delta message");
  if (D.Version != DeltaVersion)
    return makeError("unsupported view delta version " +
                     std::to_string(D.Version));
  return D;
}

struct DecodedFieldPatch {
  uint64_t Key = 0;
  json::Value V;
};

Result<bool> decodeRowPatch(std::string_view Bytes, uint64_t &NodeId,
                            std::vector<DecodedFieldPatch> &Fields) {
  ProtoReader R(Bytes);
  while (R.next()) {
    switch (R.fieldNumber()) {
    case FPatchNode:
      NodeId = R.varint();
      break;
    case FPatchField: {
      DecodedFieldPatch F;
      bool HasValue = false;
      ProtoReader FR(R.bytes());
      while (FR.next()) {
        switch (FR.fieldNumber()) {
        case FFieldKey:
          F.Key = FR.varint();
          break;
        case FFieldInt:
          F.V = json::Value(FR.signedVarint());
          HasValue = true;
          break;
        case FFieldDbl:
          F.V = json::Value(FR.fixedDouble());
          HasValue = true;
          break;
        case FFieldStr:
          F.V = json::Value(std::string(FR.bytes()));
          HasValue = true;
          break;
        case FFieldBool:
          F.V = json::Value(FR.varint() != 0);
          HasValue = true;
          break;
        case FFieldNull:
          FR.varint();
          F.V = json::Value(nullptr);
          HasValue = true;
          break;
        default:
          FR.skip();
        }
      }
      if (FR.failed() || !HasValue)
        return makeError("malformed field patch in view delta");
      Fields.push_back(std::move(F));
      break;
    }
    default:
      R.skip();
    }
  }
  if (R.failed())
    return makeError("malformed row patch in view delta");
  return true;
}

} // namespace

Result<json::Value> applyViewDelta(const json::Value &Base,
                                   std::string_view Delta) {
  Result<DecodedDelta> Decoded = decodeDelta(Delta);
  if (!Decoded)
    return makeError(Decoded.error());
  const DecodedDelta &D = *Decoded;

  if (D.HasFull) {
    Result<json::Value> Full = json::parse(D.Full);
    if (!Full)
      return makeError("view delta full payload: " + Full.error());
    return *Full;
  }

  if (!Base.isObject())
    return makeError("view delta base is not an object");
  // json::Value copies are shallow (shared Object/Array backing), so the
  // base must be deep-copied before mutation — otherwise applying a delta
  // would corrupt the caller's retained copy of the acked view. A
  // dump/parse round trip is byte-stable (support/Json.cpp serializes
  // shortest-round-trip doubles) and gives uniquely owned nodes.
  Result<json::Value> CopyR = json::parse(Base.dump());
  if (!CopyR)
    return makeError("view delta base round-trip: " + CopyR.error());
  json::Value Copy = *CopyR;
  json::Object &Obj = Copy.asObject();

  json::Value *RowsV = Obj.find(D.RowsKey);
  if (!RowsV || !RowsV->isArray())
    return makeError("view delta base has no '" + D.RowsKey + "' rows");

  std::map<uint64_t, json::Value> ById;
  for (json::Value &RowV : RowsV->asArray()) {
    if (!RowV.isObject())
      return makeError("view delta base row is not an object");
    const json::Value *Node = RowV.asObject().find("node");
    int64_t Id = 0;
    if (!Node || !Node->getInteger(Id) || Id < 0)
      return makeError("view delta base row has no integer node id");
    if (!ById.emplace(static_cast<uint64_t>(Id), RowV).second)
      return makeError("view delta base has duplicate node ids");
  }

  for (uint64_t Id : D.Removed)
    if (!ById.erase(Id))
      return makeError("view delta removes unknown node " +
                       std::to_string(Id));

  // Column values address rows by final position; new rows need them at
  // construction time to reproduce the schema's key order exactly.
  std::map<uint64_t, size_t> PosOf;
  for (size_t P = 0; P < D.Order.size(); ++P)
    PosOf.emplace(D.Order[P], P);
  for (const DecodedColumn &Col : D.Columns) {
    if (Col.Key >= D.Schema.size())
      return makeError("view delta column key out of range");
    if (Col.Values.size() != D.Order.size())
      return makeError("view delta column does not cover the row order");
  }

  for (const std::string &PatchBytes : D.RowPatches) {
    uint64_t NodeId = 0;
    std::vector<DecodedFieldPatch> Fields;
    if (Result<bool> P = decodeRowPatch(PatchBytes, NodeId, Fields); !P)
      return makeError(P.error());
    auto It = ById.find(NodeId);
    if (It == ById.end()) {
      // New row: merge field patches and column values in schema order,
      // so insertion order reproduces the uniform key sequence.
      std::map<uint64_t, const json::Value *> ByKey;
      for (const DecodedFieldPatch &F : Fields) {
        if (F.Key >= D.Schema.size())
          return makeError("view delta field key out of range");
        ByKey[F.Key] = &F.V;
      }
      auto Pos = PosOf.find(NodeId);
      json::Object Row;
      for (size_t I = 0; I < D.Schema.size(); ++I) {
        if (auto KV = ByKey.find(I); KV != ByKey.end()) {
          Row.set(D.Schema[I], *KV->second);
          continue;
        }
        if (Pos != PosOf.end())
          for (const DecodedColumn &Col : D.Columns)
            if (Col.Key == I)
              Row.set(D.Schema[I], json::Value(Col.Values[Pos->second]));
      }
      ById.emplace(NodeId, json::Value(std::move(Row)));
      continue;
    }
    json::Object &Row = It->second.asObject();
    for (const DecodedFieldPatch &F : Fields) {
      if (F.Key >= D.Schema.size())
        return makeError("view delta field key out of range");
      Row.set(D.Schema[F.Key], F.V);
    }
  }

  json::Array NewRows;
  NewRows.reserve(D.Order.size());
  for (uint64_t Id : D.Order) {
    auto It = ById.find(Id);
    if (It == ById.end())
      return makeError("view delta orders unknown node " +
                       std::to_string(Id));
    NewRows.push_back(It->second);
  }
  // Columns replace their field across every ordered row (set() keeps an
  // existing key's position, so the key sequence is untouched; new rows
  // already hold the same value from construction).
  for (const DecodedColumn &Col : D.Columns)
    for (size_t P = 0; P < NewRows.size(); ++P)
      NewRows[P].asObject().set(D.Schema[Col.Key],
                                json::Value(Col.Values[P]));
  Obj.set(D.RowsKey, json::Value(std::move(NewRows)));

  for (const auto &[Key, Json] : D.Scalars) {
    Result<json::Value> V = json::parse(Json);
    if (!V)
      return makeError("view delta scalar '" + Key + "': " + V.error());
    Obj.set(Key, *V);
  }

  return Copy;
}

Result<std::pair<uint64_t, uint64_t>>
peekViewDeltaGenerations(std::string_view Delta) {
  uint64_t From = 0, To = 0;
  ProtoReader R(Delta);
  while (R.next()) {
    switch (R.fieldNumber()) {
    case FFromGen:
      From = R.varint();
      break;
    case FToGen:
      To = R.varint();
      break;
    default:
      R.skip();
    }
  }
  if (R.failed())
    return makeError("malformed view delta message");
  return std::make_pair(From, To);
}

} // namespace ev
