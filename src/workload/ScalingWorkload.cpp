//===- workload/ScalingWorkload.cpp - Memory-scaling case study -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workload/ScalingWorkload.h"

#include "profile/ProfileBuilder.h"
#include "support/Rng.h"

namespace ev {
namespace workload {

namespace {

Profile buildAtScale(unsigned Procs, uint64_t Seed) {
  Rng R(Seed + Procs);
  ProfileBuilder B("mpi-app @" + std::to_string(Procs) + " procs");
  MetricId Mem = B.addMetric("mem-bytes", "bytes");
  const char *Bin = "mpi_app";
  const char *Src = "solver.cc";

  auto Noise = [&R] { return 1.0 + 0.02 * R.normal(); };
  const double MB = 1024.0 * 1024.0;

  // Well-scaling: the local domain partition is divided by P, so the
  // per-process share is constant.
  {
    std::vector<FrameId> Path = {
        B.functionFrame("main", Src, 30, Bin),
        B.functionFrame("Domain::allocate", Src, 120, Bin),
        B.functionFrame("Field::resize", Src, 410, Bin)};
    B.addSample(Path, Mem, 96.0 * MB * Noise());
  }
  {
    std::vector<FrameId> Path = {
        B.functionFrame("main", Src, 30, Bin),
        B.functionFrame("Solver::setup", Src, 210, Bin),
        B.functionFrame("SparseMatrix::reserve", Src, 520, Bin)};
    B.addSample(Path, Mem, 64.0 * MB * Noise());
  }
  // Non-scalable #1: an all-to-all communication buffer sized O(P) per
  // process.
  {
    std::vector<FrameId> Path = {
        B.functionFrame("main", Src, 30, Bin),
        B.functionFrame("Exchange::init", Src, 300, Bin),
        B.functionFrame("alltoall_buffer", Src, 340, Bin)};
    B.addSample(Path, Mem, 1.5 * MB * Procs * Noise());
  }
  // Non-scalable #2: a per-rank metadata table, small but O(P).
  {
    std::vector<FrameId> Path = {
        B.functionFrame("main", Src, 30, Bin),
        B.functionFrame("Exchange::init", Src, 300, Bin),
        B.functionFrame("rank_table", Src, 355, Bin)};
    B.addSample(Path, Mem, 0.02 * MB * Procs * Noise());
  }
  // Constant runtime overhead.
  {
    std::vector<FrameId> Path = {
        B.functionFrame("main", Src, 30, Bin),
        B.functionFrame("mpi_runtime_init", "", 0, "libmpi.so")};
    B.addSample(Path, Mem, 24.0 * MB * Noise());
  }
  return B.take();
}

} // namespace

ScalingWorkload generateScalingWorkload(const ScalingOptions &Options) {
  ScalingWorkload Out;
  Out.Small = buildAtScale(Options.SmallProcs, Options.Seed);
  Out.Large = buildAtScale(Options.LargeProcs, Options.Seed);
  Out.NonScalable = {"alltoall_buffer", "rank_table"};
  Out.Scalable = {"Field::resize", "SparseMatrix::reserve",
                  "mpi_runtime_init"};
  return Out;
}

} // namespace workload
} // namespace ev
