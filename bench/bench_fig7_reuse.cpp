//===- bench/bench_fig7_reuse.cpp - Paper Fig. 7 --------------------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 7: the correlated three-pane flame-graph view over
/// DrCCTProf reuse tuples in LULESH — allocations, then the uses of the
/// selected allocation, then the reuses following the selected use. Times
/// the view construction and pane filtering.
///
//===----------------------------------------------------------------------===//

#include "BenchHelpers.h"

#include "render/CorrelatedView.h"
#include "workload/ReuseWorkload.h"

#include <benchmark/benchmark.h>

using namespace ev;

namespace {

void buildCorrelatedView(benchmark::State &State) {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  for (auto _ : State) {
    CorrelatedView View(W.P, "reuse");
    benchmark::DoNotOptimize(View.activeGroupCount());
  }
}
BENCHMARK(buildCorrelatedView)->Unit(benchmark::kMicrosecond);

void selectAndRefilter(benchmark::State &State) {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  CorrelatedView View(W.P, "reuse");
  NodeId Hot = View.paneContexts(0).front().first;
  for (auto _ : State) {
    View.clearFrom(0);
    bool Ok = View.select(0, Hot);
    benchmark::DoNotOptimize(Ok);
  }
}
BENCHMARK(selectAndRefilter)->Unit(benchmark::kMicrosecond);

void panesProfileBuild(benchmark::State &State) {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  CorrelatedView View(W.P, "reuse");
  for (auto _ : State) {
    Profile Pane = View.paneProfile(0);
    benchmark::DoNotOptimize(Pane.nodeCount());
  }
}
BENCHMARK(panesProfileBuild)->Unit(benchmark::kMicrosecond);

void printFigure() {
  workload::ReuseWorkload W = workload::generateReuseWorkload();
  CorrelatedView View(W.P, "reuse");
  bench::row("Fig7: correlated allocation/use/reuse panes (%zu tuples)",
             W.P.groups().size());

  auto Pane0 = View.paneContexts(0);
  bench::row("pane 0 (allocations): %zu contexts, hottest = %s", Pane0.size(),
             std::string(W.P.nameOf(Pane0.front().first)).c_str());
  View.select(0, Pane0.front().first);
  auto Pane1 = View.paneContexts(1);
  bench::row("pane 1 (uses of %s): hottest = %s", W.HotArray.c_str(),
             std::string(W.P.nameOf(Pane1.front().first)).c_str());
  View.select(1, Pane1.front().first);
  auto Pane2 = View.paneContexts(2);
  bench::row("pane 2 (reuses): hottest = %s (expected: %s)",
             std::string(W.P.nameOf(Pane2.front().first)).c_str(),
             W.HotFunction.c_str());
  std::fputs(View.renderText().c_str(), stdout);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  printFigure();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
