//===- workload/ReuseWorkload.cpp - Fig. 7 use-reuse case study -----------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workload/ReuseWorkload.h"

#include "profile/ProfileBuilder.h"
#include "support/Rng.h"

namespace ev {
namespace workload {

ReuseWorkload generateReuseWorkload(const ReuseOptions &Options) {
  Rng R(Options.Seed);
  ProfileBuilder B("LULESH (drcctprof reuse)");
  MetricId AllocBytes = B.addMetric("alloc-bytes", "bytes");
  MetricId Accesses = B.addMetric("mem-accesses", "count");

  const char *Bin = "lulesh2.0";
  const char *Src = "lulesh.cc";

  auto Fn = [&](const char *Name, uint32_t Line) {
    return B.functionFrame(Name, Src, Line, Bin);
  };

  // Common call-path spines.
  FrameId Main = Fn("main", 2650);
  FrameId Leap = Fn("LagrangeLeapFrog", 2594);
  FrameId Nodal = Fn("LagrangeNodal", 1055);
  FrameId Force = Fn("CalcForceForNodes", 1013);
  FrameId VolumeForce = Fn("CalcVolumeForceForElems", 970);
  FrameId Hourglass = Fn("CalcHourglassControlForElems", 860);
  FrameId FBHourglass = Fn("CalcFBHourglassForceForElems", 640);
  FrameId Elements = Fn("LagrangeElements", 1900);
  FrameId Kinematics = Fn("CalcKinematicsForElems", 1550);

  struct ArraySpec {
    const char *Name;
    uint32_t Line;
    double Bytes;
  };
  // Arrays allocated inside CalcHourglassControlForElems (the pattern the
  // paper optimizes: allocated, written by one loop, re-read by the next).
  const ArraySpec Arrays[] = {
      {"dvdx[]", 868, 8.0 * 64000}, {"dvdy[]", 869, 8.0 * 64000},
      {"dvdz[]", 870, 8.0 * 64000}, {"x8n[]", 871, 8.0 * 512000},
      {"y8n[]", 872, 8.0 * 512000}, {"z8n[]", 873, 8.0 * 512000},
      {"determ[]", 874, 8.0 * 64000},
  };

  ReuseWorkload Out;
  Out.HotFunction = "CalcFBHourglassForceForElems";

  std::vector<NodeId> AllocContexts;
  double HottestValue = -1.0;
  for (const ArraySpec &A : Arrays) {
    // Allocation context: data object in its allocation call path.
    std::vector<FrameId> AllocPath = {
        Main,      Leap, Nodal, Force, VolumeForce, Hourglass,
        B.dataFrame(A.Name, Src, A.Line)};
    NodeId Alloc = B.addSample(AllocPath, AllocBytes, A.Bytes);
    AllocContexts.push_back(Alloc);

    // Use context: the loop in CalcHourglassControlForElems writing the
    // array.
    std::vector<FrameId> UsePath = {Main,        Leap,      Nodal, Force,
                                    VolumeForce, Hourglass,
                                    Fn("CollectDomainNodesToElemNodes",
                                       778)};
    double UseCount = A.Bytes / 8.0 * (3.0 + R.uniform());
    NodeId Use = B.addSample(UsePath, Accesses, UseCount);

    // Reuse context: the consuming loop in CalcFBHourglassForceForElems.
    std::vector<FrameId> ReusePath = {Main,        Leap,      Nodal, Force,
                                      VolumeForce, Hourglass, FBHourglass};
    double ReuseCount = A.Bytes / 8.0 * (5.0 + R.uniform());
    NodeId Reuse = B.addSample(ReusePath, Accesses, ReuseCount);

    const NodeId Contexts[] = {Alloc, Use, Reuse};
    B.addGroup("reuse", Contexts, Accesses, ReuseCount);
    if (ReuseCount > HottestValue) {
      HottestValue = ReuseCount;
      Out.HotArray = A.Name;
    }
  }

  // A smaller, unrelated reuse pair in the kinematics phase so the view
  // has contrast.
  {
    std::vector<FrameId> AllocPath = {Main, Leap, Elements, Kinematics,
                                      B.dataFrame("vnew[]", Src, 1552)};
    NodeId Alloc = B.addSample(AllocPath, AllocBytes, 8.0 * 64000);
    std::vector<FrameId> UsePath = {Main, Leap, Elements, Kinematics,
                                    Fn("CalcElemVolume", 460)};
    NodeId Use = B.addSample(UsePath, Accesses, 64000.0);
    std::vector<FrameId> ReusePath = {Main, Leap, Elements,
                                      Fn("UpdateVolumesForElems", 1840)};
    NodeId Reuse = B.addSample(ReusePath, Accesses, 64000.0);
    const NodeId Contexts[] = {Alloc, Use, Reuse};
    B.addGroup("reuse", Contexts, Accesses, 64000.0);
  }

  Out.P = B.take();
  return Out;
}

} // namespace workload
} // namespace ev
