file(REMOVE_RECURSE
  "CMakeFiles/diff_profiles.dir/diff_profiles.cpp.o"
  "CMakeFiles/diff_profiles.dir/diff_profiles.cpp.o.d"
  "diff_profiles"
  "diff_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diff_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
