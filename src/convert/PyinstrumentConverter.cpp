//===- convert/PyinstrumentConverter.cpp - pyinstrument JSON --------------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts pyinstrument's JSON renderer output into the generic
/// representation. pyinstrument emits a recursive frame tree where each
/// frame's "time" is INCLUSIVE seconds; the converter derives exclusive
/// time as time minus the children's time (clamped at zero against
/// rounding).
///
//===----------------------------------------------------------------------===//

#include "convert/Converters.h"

#include "profile/ProfileBuilder.h"
#include "support/Json.h"

#include <algorithm>

namespace ev {
namespace convert {

namespace {

struct ConvertState {
  ProfileBuilder B{"pyinstrument profile"};
  MetricId WallTime = 0;
};

Result<bool> walkFrame(ConvertState &S, const json::Object &Frame,
                       std::vector<FrameId> &Path) {
  std::string_view Name =
      Frame.find("function") ? Frame.find("function")->stringOr("<module>")
                             : "<module>";
  std::string_view File =
      Frame.find("file_path") ? Frame.find("file_path")->stringOr("") : "";
  uint32_t Line =
      Frame.find("line_no")
          ? static_cast<uint32_t>(
                std::max(0.0, Frame.find("line_no")->numberOr(0.0)))
          : 0;
  double Inclusive =
      Frame.find("time") ? Frame.find("time")->numberOr(0.0) : 0.0;

  Path.push_back(S.B.functionFrame(Name, File, Line, "python"));

  double ChildTime = 0.0;
  if (const json::Value *ChildrenV = Frame.find("children");
      ChildrenV && ChildrenV->isArray()) {
    for (const json::Value &ChildV : ChildrenV->asArray()) {
      if (!ChildV.isObject())
        return makeError("pyinstrument: child frames must be objects");
      const json::Object &Child = ChildV.asObject();
      if (const json::Value *T = Child.find("time"))
        ChildTime += T->numberOr(0.0);
      Result<bool> R = walkFrame(S, Child, Path);
      if (!R)
        return R;
    }
  }

  double Self = std::max(0.0, Inclusive - ChildTime);
  if (Self > 0.0)
    S.B.addSample(Path, S.WallTime, Self * 1e9); // seconds -> ns
  Path.pop_back();
  return true;
}

} // namespace

Result<Profile> fromPyinstrument(std::string_view Json) {
  Result<json::Value> Doc = json::parse(Json);
  if (!Doc)
    return makeError(Doc.error());
  if (!Doc->isObject())
    return makeError("pyinstrument: document must be an object");
  const json::Object &Root = Doc->asObject();
  const json::Value *RootFrame = Root.find("root_frame");
  if (!RootFrame || !RootFrame->isObject())
    return makeError("pyinstrument: missing root_frame");

  ConvertState S;
  S.WallTime = S.B.addMetric("wall-time", "nanoseconds");
  std::vector<FrameId> Path;
  Result<bool> R = walkFrame(S, RootFrame->asObject(), Path);
  if (!R)
    return makeError(R.error());
  return S.B.take();
}

} // namespace convert
} // namespace ev
