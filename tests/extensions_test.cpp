//===- tests/extensions_test.cpp - TAU, annotations, scaling tests --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diff.h"
#include "analysis/MetricEngine.h"
#include "convert/Converters.h"
#include "query/Interpreter.h"
#include "render/CodeAnnotations.h"
#include "workload/ScalingWorkload.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace ev;

//===----------------------------------------------------------------------===
// TAU converter
//===----------------------------------------------------------------------===

namespace {

const char *TauProfile =
    "4 templated_functions_MULTI_TIME\n"
    "# Name Calls Subrs Excl Incl ProfileCalls #\n"
    "\".TAU application\" 1 1 1000 29000 0 GROUP=\"TAU_DEFAULT\"\n"
    "\"main()\" 1 2 2000 28000 0 GROUP=\"TAU_USER\"\n"
    "\"main() => work()\" 4 0 20000 20000 0 GROUP=\"TAU_CALLPATH\"\n"
    "\"main() => io()\" 2 0 6000 6000 0 GROUP=\"TAU_CALLPATH\"\n"
    "0 aggregates\n";

NodeId findByName(const Profile &P, std::string_view Name) {
  for (NodeId Id = 0; Id < P.nodeCount(); ++Id)
    if (P.nameOf(Id) == Name)
      return Id;
  return InvalidNode;
}

} // namespace

TEST(Tau, ParsesCallpathProfile) {
  Result<Profile> P = convert::fromTau(TauProfile);
  ASSERT_TRUE(P.ok()) << P.error();
  EXPECT_TRUE(P->verify().ok());
  MetricId Time = P->findMetric("time");
  ASSERT_NE(Time, Profile::InvalidMetric);
  // 1000 + 2000 + 20000 + 6000 usec in ns.
  EXPECT_DOUBLE_EQ(metricTotal(*P, Time), 29000e3);
  // ".TAU application" maps onto ROOT, so its 1000 usec sits at the root.
  EXPECT_DOUBLE_EQ(P->node(P->root()).metricOr(Time), 1000e3);
}

TEST(Tau, CallPathsBecomeTree) {
  Result<Profile> P = convert::fromTau(TauProfile);
  ASSERT_TRUE(P.ok());
  NodeId Work = findByName(*P, "work()");
  ASSERT_NE(Work, InvalidNode);
  EXPECT_EQ(P->nameOf(P->node(Work).Parent), "main()");
  MetricId Calls = P->findMetric("calls");
  EXPECT_DOUBLE_EQ(P->node(Work).metricOr(Calls), 4.0);
}

TEST(Tau, Detection) {
  EXPECT_EQ(convert::detectFormat(TauProfile), convert::Format::Tau);
  Result<Profile> P = convert::load(TauProfile, "profile.0.0.0");
  ASSERT_TRUE(P.ok()) << P.error();
}

TEST(Tau, RejectsMalformed) {
  EXPECT_FALSE(convert::fromTau("").ok());
  EXPECT_FALSE(convert::fromTau("not a tau profile").ok());
  EXPECT_FALSE(
      convert::fromTau("2 templated_functions_MULTI_TIME\n"
                       "\"main()\" 1 2 2000 28000 0\n")
          .ok()); // Declares 2, provides 1.
  EXPECT_FALSE(convert::fromTau("1 templated_functions_MULTI_TIME\n"
                                "\"main()\" x y\n")
                   .ok());
}

//===----------------------------------------------------------------------===
// Code annotations
//===----------------------------------------------------------------------===

TEST(Annotations, CollectsPerLineTotals) {
  Profile P = test::makeFixedProfile();
  std::vector<LineAnnotation> A = annotateFile(P, "comp.cc");
  ASSERT_EQ(A.size(), 2u); // Lines 20 (compute) and 30 (kernel).
  EXPECT_EQ(A[0].Line, 20u);
  EXPECT_DOUBLE_EQ(A[0].Totals[0], 10.0);
  EXPECT_EQ(A[1].Line, 30u);
  EXPECT_DOUBLE_EQ(A[1].Totals[0], 40.0);
  // Hotness is relative to the hottest line of the file.
  EXPECT_DOUBLE_EQ(A[1].Hotness, 1.0);
  EXPECT_DOUBLE_EQ(A[0].Hotness, 0.25);
  EXPECT_NE(A[0].LensText.find("time"), std::string::npos);
  ASSERT_EQ(A[1].Contexts.size(), 1u);
  EXPECT_EQ(P.nameOf(A[1].Contexts[0]), "kernel");
}

TEST(Annotations, UnknownFileIsEmpty) {
  Profile P = test::makeFixedProfile();
  EXPECT_TRUE(annotateFile(P, "other.cc").empty());
  std::string Text = renderAnnotationsText(P, "other.cc");
  EXPECT_NE(Text.find("no profile data"), std::string::npos);
}

TEST(Annotations, HoverTextListsAllMetrics) {
  Profile P = test::makeRandomProfile(3);
  std::string Text = hoverText(P, 1);
  EXPECT_NE(Text.find("- time:"), std::string::npos);
  EXPECT_NE(Text.find("- bytes:"), std::string::npos);
  EXPECT_NE(Text.find("inclusive"), std::string::npos);
}

TEST(Annotations, RenderTextShowsHeatBars) {
  Profile P = test::makeFixedProfile();
  std::string Text = renderAnnotationsText(P, "comp.cc");
  EXPECT_NE(Text.find("line 30"), std::string::npos);
  EXPECT_NE(Text.find("**********"), std::string::npos); // Hottest line.
}

//===----------------------------------------------------------------------===
// Memory-scaling case study
//===----------------------------------------------------------------------===

TEST(Scaling, NonScalableContextsTrackProcessRatio) {
  workload::ScalingOptions Opt;
  workload::ScalingWorkload W = workload::generateScalingWorkload(Opt);
  DiffResult D = diffProfiles(W.Small, W.Large, 0);

  Result<evql::QueryOutput> Out = evql::runProgram(
      D.Merged, "derive scaling = ratio(inclusive(\"test mem-bytes\"), "
                "inclusive(\"base mem-bytes\"));");
  ASSERT_TRUE(Out.ok()) << Out.error();
  const Profile &R = Out->Result;
  MetricId Scaling = R.findMetric("scaling");
  double ProcRatio =
      static_cast<double>(Opt.LargeProcs) / Opt.SmallProcs;

  for (const std::string &Name : W.NonScalable) {
    NodeId Id = findByName(R, Name);
    ASSERT_NE(Id, InvalidNode) << Name;
    EXPECT_NEAR(R.node(Id).metricOr(Scaling), ProcRatio, ProcRatio * 0.2)
        << Name;
  }
  for (const std::string &Name : W.Scalable) {
    NodeId Id = findByName(R, Name);
    ASSERT_NE(Id, InvalidNode) << Name;
    EXPECT_NEAR(R.node(Id).metricOr(Scaling), 1.0, 0.25) << Name;
  }
}

TEST(Scaling, DeterministicBySeed) {
  workload::ScalingWorkload A = workload::generateScalingWorkload({});
  workload::ScalingWorkload B = workload::generateScalingWorkload({});
  EXPECT_DOUBLE_EQ(metricTotal(A.Small, 0), metricTotal(B.Small, 0));
  EXPECT_DOUBLE_EQ(metricTotal(A.Large, 0), metricTotal(B.Large, 0));
}

//===----------------------------------------------------------------------===
// New EVQL builtins
//===----------------------------------------------------------------------===

TEST(EvqlBuiltins, ShareIsleafParentnameHasancestor) {
  Profile P = test::makeFixedProfile();
  Result<evql::QueryOutput> Out = evql::runProgram(
      P, "derive s = share(\"time\");\n"
         "derive leafy = isleaf() ? 1 : 0;\n"
         "derive under = hasancestor(\"compute\") ? 1 : 0;\n"
         "derive pmain = parentname() == \"main\" ? 1 : 0;\n");
  ASSERT_TRUE(Out.ok()) << Out.error();
  const Profile &R = Out->Result;

  NodeId Kernel = findByName(R, "kernel");
  EXPECT_DOUBLE_EQ(R.node(Kernel).metricOr(R.findMetric("s")), 0.40);
  EXPECT_DOUBLE_EQ(R.node(Kernel).metricOr(R.findMetric("leafy")), 1.0);
  EXPECT_DOUBLE_EQ(R.node(Kernel).metricOr(R.findMetric("under")), 1.0);

  NodeId Compute = findByName(R, "compute");
  EXPECT_DOUBLE_EQ(R.node(Compute).metricOr(R.findMetric("leafy")), 0.0);
  EXPECT_DOUBLE_EQ(R.node(Compute).metricOr(R.findMetric("under")), 0.0);
  EXPECT_DOUBLE_EQ(R.node(Compute).metricOr(R.findMetric("pmain")), 1.0);
}

TEST(EvqlBuiltins, PruneSubtreeWithHasancestor) {
  Profile P = test::makeFixedProfile();
  Result<evql::QueryOutput> Out = evql::runProgram(
      P, "prune when hasancestor(\"compute\") || name() == \"compute\";");
  ASSERT_TRUE(Out.ok()) << Out.error();
  EXPECT_EQ(findByName(Out->Result, "kernel"), InvalidNode);
  EXPECT_EQ(findByName(Out->Result, "compute"), InvalidNode);
  EXPECT_NE(findByName(Out->Result, "parse"), InvalidNode);
  EXPECT_DOUBLE_EQ(metricTotal(Out->Result, 0), 100.0); // Conserved.
}
