//===- baseline/PprofFlameView.h - Default-pprof-style viewer baseline ----===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Baseline viewer for the response-time experiment (paper Fig. 5,
/// "default PProf"). It reproduces the pprof web UI's opening pipeline
/// faithfully at the algorithmic level, which is where its latency comes
/// from:
///
///  1. resolve every sample's stack to fully-qualified NAME STRINGS
///     (pprof's report generator works on symbolized strings, not interned
///     ids);
///  2. build the call graph: one node per function name in a string-keyed
///     map, one edge per adjacent pair, with per-edge weights (the
///     "graph" view pprof always constructs before any report);
///  3. build the flame view from a string-keyed nested trie, re-hashing
///     the full name at every level;
///  4. emit the complete DOT/flame text for the whole graph — pprof
///     renders everything up front rather than culling to the viewport.
///
/// No artificial sleeps: the slowdown relative to EasyView is purely the
/// published architectural difference (strings vs interning, full
/// materialization vs viewport culling).
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_BASELINE_PPROFFLAMEVIEW_H
#define EASYVIEW_BASELINE_PPROFFLAMEVIEW_H

#include "support/Result.h"

#include <cstddef>
#include <string>
#include <string_view>

namespace ev {
namespace baseline {

struct PprofViewResult {
  size_t GraphNodes = 0;
  size_t GraphEdges = 0;
  size_t FlameFrames = 0;
  size_t ReportBytes = 0; ///< Size of the fully materialized output.
};

/// Opens pprof bytes the way the default pprof visualizer does; \returns
/// summary statistics of the materialized report.
Result<PprofViewResult> openWithPprofView(std::string_view PprofBytes);

} // namespace baseline
} // namespace ev

#endif // EASYVIEW_BASELINE_PPROFFLAMEVIEW_H
