//===- bench/BenchHelpers.h - Shared helpers for the bench harness --------===//
//
// Part of the EasyView reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each bench binary regenerates one table or figure of the paper's
/// evaluation. Besides google-benchmark timings, every binary prints the
/// rows/series the paper reports (marked with "##"), so EXPERIMENTS.md can
/// quote them directly.
///
//===----------------------------------------------------------------------===//

#ifndef EASYVIEW_BENCH_BENCHHELPERS_H
#define EASYVIEW_BENCH_BENCHHELPERS_H

#include <cstdarg>
#include <cstdio>

namespace ev {
namespace bench {

/// Prints one figure/table row, prefixed for extraction.
inline void row(const char *Format, ...)
    __attribute__((format(printf, 1, 2)));

inline void row(const char *Format, ...) {
  std::fputs("## ", stdout);
  va_list Args;
  va_start(Args, Format);
  std::vprintf(Format, Args);
  va_end(Args);
  std::fputc('\n', stdout);
}

} // namespace bench
} // namespace ev

#endif // EASYVIEW_BENCH_BENCHHELPERS_H
